"""F2d — Figure 2(d): stretch CCDF on Abilene under 4 simultaneous failures."""

from _figure_helpers import assert_paper_shape, print_panel, run_panel


def test_bench_figure_2d_abilene_four_failures(benchmark):
    result = benchmark.pedantic(
        lambda: run_panel("2d", samples=60, seed=1), rounds=1, iterations=1
    )
    print_panel(result, "2d", "Abilene with 4 failures")
    assert_paper_shape(result)
    assert result.failures_per_scenario == 4
    # Multi-failure scenarios stretch more than single failures on average.
    assert result.mean_stretch("Packet Re-cycling") >= 1.0
