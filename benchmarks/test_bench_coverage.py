"""X3 — repair coverage: the Section 4.2/4.3 guarantees, measured.

The 1-bit protocol must cover every single link failure on 2-connected
topologies; the full protocol must cover every sampled non-disconnecting
multi-failure combination on the planar topologies.  LFA and no-protection
are included to show the coverage gap PR closes.
"""

from repro.baselines.lfa import LoopFreeAlternates
from repro.baselines.noprotection import NoProtection
from repro.core.coverage import coverage_report
from repro.core.scheme import PacketRecycling, SimplePacketRecycling
from repro.experiments.asciiplot import render_table
from repro.failures.sampling import sample_multi_link_failures
from repro.failures.scenarios import single_link_failures
from repro.topologies.abilene import abilene
from repro.topologies.geant import geant


def test_bench_single_and_multi_failure_coverage(benchmark):
    def run():
        reports = {}
        abilene_graph = abilene()
        geant_graph = geant()
        single = [s.failed_links for s in single_link_failures(abilene_graph)]
        multi = [
            s.failed_links
            for s in sample_multi_link_failures(geant_graph, failures=8, samples=15, seed=2)
        ]
        reports["Abilene / single / PR (1-bit)"] = coverage_report(
            SimplePacketRecycling(abilene_graph, embedding_seed=0), single
        )
        reports["Abilene / single / PR"] = coverage_report(
            PacketRecycling(abilene_graph, embedding_seed=0), single
        )
        reports["Abilene / single / LFA"] = coverage_report(LoopFreeAlternates(abilene_graph), single)
        reports["Abilene / single / none"] = coverage_report(NoProtection(abilene_graph), single)
        reports["Geant / 8 failures / PR"] = coverage_report(
            PacketRecycling(geant_graph, embedding_seed=0), multi
        )
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("=== Repair coverage (delivered / attempted among still-connected pairs) ===")
    rows = [
        [name, report.attempts, report.delivered, f"{100 * report.coverage:.2f}%", report.looped]
        for name, report in reports.items()
    ]
    print(render_table(["scenario / scheme", "attempts", "delivered", "coverage", "loops"], rows))

    assert reports["Abilene / single / PR (1-bit)"].full_coverage
    assert reports["Abilene / single / PR"].full_coverage
    assert reports["Geant / 8 failures / PR"].full_coverage
    assert reports["Abilene / single / LFA"].coverage < 1.0
    assert reports["Abilene / single / none"].coverage < reports["Abilene / single / LFA"].coverage
