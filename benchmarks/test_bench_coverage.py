"""X3 — repair coverage: the Section 4.2/4.3 guarantees, measured.

The 1-bit protocol must cover every single link failure on 2-connected
topologies; the full protocol must cover every sampled non-disconnecting
multi-failure combination on the planar topologies.  LFA and no-protection
are included to show the coverage gap PR closes.

The measurement runs through the campaign runner with ``coverage="full"``
(every still-connected ordered pair is attempted), so both campaigns share
one offline-stage artifact cache and the same parallel, resumable path as
the Figure 2 sweeps.
"""

from _figure_helpers import campaign_cache_dir

from repro.experiments.asciiplot import render_table
from repro.runner import CampaignSpec, ScenarioSpec, run_campaign


def test_bench_single_and_multi_failure_coverage(benchmark):
    def run():
        single_spec = CampaignSpec(
            topologies=("abilene",),
            schemes=("pr-1bit", "pr", "lfa", "noprotection"),
            scenarios=(ScenarioSpec(kind="single-link", non_disconnecting=False),),
            coverage="full",
            record_samples=False,
        )
        multi_spec = CampaignSpec(
            topologies=("geant",),
            schemes=("pr",),
            scenarios=(ScenarioSpec(kind="multi-link", failures=8, samples=15),),
            seed=2,
            coverage="full",
            record_samples=False,
        )
        reports = {}
        for spec in (single_spec, multi_spec):
            result = run_campaign(spec, workers=1, cache_dir=campaign_cache_dir())
            reports.update(result.coverage_reports())
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("=== Repair coverage (delivered / attempted among still-connected pairs) ===")
    rows = [
        [f"{topology} / {scheme}", report.attempts, report.delivered,
         f"{100 * report.coverage:.2f}%", report.looped]
        for (topology, scheme), report in reports.items()
    ]
    print(render_table(["topology / scheme", "attempts", "delivered", "coverage", "loops"], rows))

    assert reports[("abilene", "Packet Re-cycling (1-bit)")].full_coverage
    assert reports[("abilene", "Packet Re-cycling")].full_coverage
    assert reports[("geant", "Packet Re-cycling")].full_coverage
    assert reports[("abilene", "Loop-Free Alternates")].coverage < 1.0
    assert (
        reports[("abilene", "No protection")].coverage
        < reports[("abilene", "Loop-Free Alternates")].coverage
    )
