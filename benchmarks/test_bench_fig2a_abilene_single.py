"""F2a — Figure 2(a): stretch CCDF on Abilene under all single link failures."""

from _figure_helpers import assert_paper_shape, print_panel, run_panel


def test_bench_figure_2a_abilene_single_failures(benchmark):
    result = benchmark.pedantic(lambda: run_panel("2a"), rounds=1, iterations=1)
    print_panel(result, "2a", "Abilene with single failures")
    assert_paper_shape(result)
    # Every one of Abilene's 14 links is enumerated.
    assert result.scenarios == 14
