"""A3 — cost of the offline stage the paper delegates to a server.

PR's selling point is that all expensive work (the cellular embedding, the
cycle-following tables, the DD column) happens offline.  This benchmark
measures that cost for the three evaluation topologies so the "relatively
expensive computations offline" claim of Section 7 has a number attached,
and verifies the resulting embeddings are valid and strong (no self-paired
links) wherever the topology allows it.
"""

import pytest

from repro.core.scheme import PacketRecycling
from repro.embedding.genus import self_paired_edge_count
from repro.embedding.validation import validate_embedding
from repro.topologies.registry import by_name


@pytest.mark.parametrize("topology_name", ["abilene", "teleglobe", "geant"])
def test_bench_offline_precomputation(benchmark, topology_name):
    graph = by_name(topology_name)
    scheme = benchmark(lambda: PacketRecycling(graph, embedding_seed=0))

    validate_embedding(graph, scheme.embedding.rotation, scheme.embedding.faces)
    print()
    print(
        f"{topology_name}: faces={scheme.embedding.number_of_faces} "
        f"genus={scheme.embedding.genus} "
        f"self-paired links={self_paired_edge_count(scheme.embedding.rotation)} "
        f"header bits={scheme.header_overhead_bits()} "
        f"router memory entries={scheme.router_memory_entries()}"
    )
    assert self_paired_edge_count(scheme.embedding.rotation) == 0
    assert scheme.header_overhead_bits() <= 6
