"""F2b — Figure 2(b): stretch CCDF on Teleglobe under all single link failures."""

from _figure_helpers import assert_paper_shape, print_panel, run_panel


def test_bench_figure_2b_teleglobe_single_failures(benchmark):
    result = benchmark.pedantic(lambda: run_panel("2b"), rounds=1, iterations=1)
    print_panel(result, "2b", "Teleglobe with single failures")
    assert_paper_shape(result)
    assert result.scenarios == 40
