"""T1 — Table 1: the cycle following table at node D of the Figure 1 example.

Regenerates the table from the embedding and checks it cell-by-cell against
the paper; the benchmarked quantity is the offline table-construction time
for the whole example network.
"""

from repro.core.tables import CycleFollowingTables
from repro.topologies.example import example_fig1_embedding


def _dart(graph, tail, head):
    return graph.dart(graph.edge_ids_between(tail, head)[0], tail)


def test_bench_table1_cycle_following_table(benchmark):
    embedding = example_fig1_embedding()
    tables = benchmark(lambda: CycleFollowingTables(embedding))
    graph = embedding.graph
    table_at_d = tables.table_at("D")

    print()
    print("=== Table 1: Cycle following table at node D ===")
    print(table_at_d.render())

    expected = {
        ("B", "D"): (("D", "F"), ("D", "E")),
        ("E", "D"): (("D", "B"), ("D", "F")),
        ("F", "D"): (("D", "E"), ("D", "B")),
    }
    for (ingress_tail, ingress_head), (cycle_next, complementary_next) in expected.items():
        row = table_at_d.row_for_ingress(_dart(graph, ingress_tail, ingress_head))
        assert row.cycle_following == _dart(graph, *cycle_next)
        assert row.complementary == _dart(graph, *complementary_next)
