"""S1 — campaign runner wall-time: cold vs cached vs parallel vs resumed.

Anchors the perf trajectory of the campaign-runner subsystem on the
Abilene+GEANT grid: a cold campaign pays the offline stage (heuristic
cellular embedding) once per topology; a second invocation with the same
spec serves it from the content-addressed artifact cache and is observably
faster; a resumed run skips every completed cell outright; and a parallel
run produces byte-identical payloads to the serial one.
"""

import tempfile
import time
from pathlib import Path

from repro.experiments.asciiplot import render_table
from repro.runner import CampaignSpec, ScenarioSpec, run_campaign


def _spec() -> CampaignSpec:
    # The local-search embedding heuristic is the expensive offline stage a
    # production deployment would run per topology; the sweep workload is
    # kept small so the offline/online split is visible in the wall times.
    return CampaignSpec(
        topologies=("abilene", "geant"),
        schemes=("reconvergence", "fcp", "pr"),
        scenarios=(ScenarioSpec("multi-link", failures=4, samples=4),),
        embedding_method="local-search",
        embedding_iterations=1200,
        embedding_seed=0,
    )


def _payloads(result):
    return [{k: v for k, v in r.items() if k != "meta"} for r in result.records]


def test_bench_sweep_cold_vs_cached_vs_parallel(benchmark):
    def run():
        timings = {}
        with tempfile.TemporaryDirectory() as tmp:
            cache = Path(tmp) / "cache"
            results = Path(tmp) / "results.jsonl"
            spec = _spec()

            started = time.perf_counter()
            cold = run_campaign(spec, workers=1, cache_dir=cache, results=results)
            timings["cold"] = (time.perf_counter() - started, cold)

            started = time.perf_counter()
            warm = run_campaign(spec, workers=1, cache_dir=cache)
            timings["cached"] = (time.perf_counter() - started, warm)

            started = time.perf_counter()
            parallel = run_campaign(spec, workers=2, cache_dir=cache)
            timings["parallel (2 workers, warm)"] = (time.perf_counter() - started, parallel)

            started = time.perf_counter()
            resumed = run_campaign(
                spec, workers=1, cache_dir=cache, results=results, resume=True
            )
            timings["resumed"] = (time.perf_counter() - started, resumed)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("=== Campaign runner: Abilene+GEANT, 3 schemes, 4-link scenarios ===")
    rows = [
        [
            name,
            f"{wall:.2f}s",
            f"{result.offline_seconds():.2f}s",
            result.executed,
            result.skipped,
            result.cache_stats()["hits"],
            result.cache_stats()["misses"],
        ]
        for name, (wall, result) in timings.items()
    ]
    print(render_table(
        ["run", "wall", "offline stage", "executed", "reused", "cache hits", "misses"],
        rows,
    ))

    cold_wall, cold = timings["cold"]
    warm_wall, warm = timings["cached"]
    _, parallel = timings["parallel (2 workers, warm)"]
    resumed_wall, resumed = timings["resumed"]

    # The cold run computes (and persists) one embedding per topology: only
    # the PR cells consult the cache, and there is one per topology here.
    assert cold.cache_stats()["misses"] == 2
    # The cached run never recomputes the offline stage and is observably faster.
    assert warm.cache_stats()["misses"] == 0
    assert warm.offline_seconds() < cold.offline_seconds() / 5
    assert warm_wall < cold_wall
    # A resumed run skips every completed cell.
    assert resumed.executed == 0
    assert resumed.skipped == cold.executed
    assert resumed_wall < warm_wall
    # Results are bit-identical across all execution modes.
    assert _payloads(cold) == _payloads(warm) == _payloads(parallel) == _payloads(resumed)
