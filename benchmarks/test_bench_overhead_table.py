"""X1 — Section 6 overhead comparison (header bits / memory / computation).

The paper argues this comparison qualitatively; the benchmark produces the
concrete numbers for all three evaluation topologies and checks the claims:
PR needs 1 + O(log2 d) header bits (it fits in DSCP pool 2 on Abilene),
far fewer than FCP's worst case, and performs no on-line route computation.
"""

from repro.experiments.overhead import overhead_experiment
from repro.metrics.overhead import render_overhead_table


def test_bench_overhead_comparison(benchmark):
    results = benchmark.pedantic(
        lambda: overhead_experiment(["abilene", "teleglobe", "geant"]), rounds=1, iterations=1
    )
    print()
    for topology, rows in results.items():
        print(render_overhead_table(topology, rows))
        print()

    for topology, rows in results.items():
        by_name = {row.scheme: row for row in rows}
        pr = by_name["Packet Re-cycling"]
        fcp = by_name["Failure-Carrying Packets"]
        reconvergence = by_name["Re-convergence"]
        assert pr.header_bits < fcp.header_bits, topology
        assert pr.online_computation == 0, topology
        assert reconvergence.online_computation > 0, topology
        assert by_name["Packet Re-cycling (1-bit)"].header_bits == 1, topology

    # Abilene's DD field fits the 4 usable bits of DSCP pool 2 (1 PR + 3 DD).
    abilene_pr = {row.scheme: row for row in results["abilene"]}["Packet Re-cycling"]
    assert abilene_pr.header_bits <= 4
