"""N1 — node failures: the "or node failures" part of the paper's title.

A node failure is modelled as the simultaneous failure of all of the node's
links.  PR must recover every packet between pairs that do not involve the
failed router and that remain connected; re-convergence and FCP serve as the
stretch reference points, exactly as in Figure 2.
"""

from repro.baselines.fcp import FailureCarryingPackets
from repro.baselines.reconvergence import Reconvergence
from repro.core.scheme import PacketRecycling
from repro.experiments.asciiplot import render_table
from repro.experiments.nodefail import node_failure_experiment
from repro.topologies.abilene import abilene
from repro.topologies.geant import geant


def _run(graph):
    schemes = [
        Reconvergence(graph),
        FailureCarryingPackets(graph),
        PacketRecycling(graph, embedding_seed=0),
    ]
    return node_failure_experiment(graph, schemes)


def test_bench_single_node_failures(benchmark):
    results = benchmark.pedantic(
        lambda: {"abilene": _run(abilene()), "geant": _run(geant())}, rounds=1, iterations=1
    )

    print()
    for topology, result in results.items():
        print(f"=== Single node failures — {topology} "
              f"({result.scenarios} scenarios, {result.measured_pairs} affected pairs) ===")
        rows = []
        for name in result.scheme_names():
            summary = result.stretch_summary[name]
            rows.append(
                [name, f"{result.delivery_ratio[name]:.3f}", f"{summary['mean']:.2f}",
                 f"{summary['p90']:.2f}", f"{summary['max']:.2f}"]
            )
        print(render_table(["scheme", "delivery", "mean stretch", "p90", "max"], rows))
        print()

    for topology, result in results.items():
        assert result.delivery_ratio["Re-convergence"] == 1.0, topology
        assert result.delivery_ratio["Failure-Carrying Packets"] == 1.0, topology
        assert result.delivery_ratio["Packet Re-cycling"] == 1.0, topology
        assert (
            result.stretch_summary["Re-convergence"]["mean"]
            <= result.stretch_summary["Packet Re-cycling"]["mean"] + 1e-9
        ), topology
