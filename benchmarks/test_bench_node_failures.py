"""N1 — node failures: the "or node failures" part of the paper's title.

A node failure is modelled as the simultaneous failure of all of the node's
links.  PR must recover every packet between pairs that do not involve the
failed router and that remain connected; re-convergence and FCP serve as the
stretch reference points, exactly as in Figure 2.

The sweep runs as one multi-topology campaign through the runner (scenario
kind ``"node"``), sharing the session artifact cache with the other drivers.
"""

from _figure_helpers import campaign_cache_dir

from repro.experiments.asciiplot import render_table
from repro.runner import node_failure_campaign_spec, run_campaign


def test_bench_single_node_failures(benchmark):
    def run():
        spec = node_failure_campaign_spec(["abilene", "geant"])
        campaign = run_campaign(spec, workers=1, cache_dir=campaign_cache_dir())
        return {
            topology: campaign.stretch_result(topology)
            for topology in spec.topologies
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    for topology, result in results.items():
        print(f"=== Single node failures — {topology} "
              f"({result.scenarios} scenarios, {result.measured_pairs} affected pairs) ===")
        rows = []
        for name in result.scheme_names():
            summary = result.summary[name]
            rows.append(
                [name, f"{result.delivery_ratio[name]:.3f}", f"{summary['mean']:.2f}",
                 f"{summary['p90']:.2f}", f"{summary['max']:.2f}"]
            )
        print(render_table(["scheme", "delivery", "mean stretch", "p90", "max"], rows))
        print()

    for topology, result in results.items():
        assert result.delivery_ratio["Re-convergence"] == 1.0, topology
        assert result.delivery_ratio["Failure-Carrying Packets"] == 1.0, topology
        assert result.delivery_ratio["Packet Re-cycling"] == 1.0, topology
        assert (
            result.summary["Re-convergence"]["mean"]
            <= result.summary["Packet Re-cycling"]["mean"] + 1e-9
        ), topology
