"""Shared helpers for the benchmark suite.

Every benchmark regenerates one artefact of the paper (a Figure 2 panel,
Table 1, the overhead table, ...), prints the regenerated rows/series so they
can be compared against the paper at a glance, and asserts the qualitative
properties that must hold (scheme ordering, full delivery, value ranges).
"""

from __future__ import annotations

import atexit
import shutil
import tempfile
from typing import Dict

from repro.experiments.asciiplot import ccdf_rows, render_ccdf_plot, render_table
from repro.experiments.stretch import StretchExperimentResult
from repro.runner import figure2_campaign_spec, run_campaign, stretch_result_from_records

_CACHE_DIR = None


def campaign_cache_dir() -> str:
    """One artifact-cache directory shared by the whole benchmark session.

    Every driver that builds a Packet Re-cycling instance for the same
    topology reuses the offline-stage embedding through this cache; the
    directory is deleted when the session exits.
    """
    global _CACHE_DIR
    if _CACHE_DIR is None:
        _CACHE_DIR = tempfile.mkdtemp(prefix="repro-bench-cache-")
        atexit.register(shutil.rmtree, _CACHE_DIR, ignore_errors=True)
    return _CACHE_DIR


def run_panel(panel: str, samples: int = 60, seed: int = 1) -> StretchExperimentResult:
    """Regenerate one Figure 2 panel through the campaign runner.

    The panel becomes a one-topology campaign whose cells (one per scheme)
    share the session artifact cache, so the offline stage of each topology
    is computed once across the whole benchmark suite.
    """
    spec = figure2_campaign_spec(panel, samples=samples, seed=seed)
    result = run_campaign(spec, workers=1, cache_dir=campaign_cache_dir())
    return stretch_result_from_records(result.records)


def print_panel(result: StretchExperimentResult, panel: str, paper_caption: str) -> None:
    """Print the regenerated CCDF table and plot for one panel."""
    print()
    print(f"=== Figure {panel}: {paper_caption} ===")
    print(
        f"topology={result.topology}  failures/scenario={result.failures_per_scenario}  "
        f"scenarios={result.scenarios}  measured (source,dest) pairs={result.measured_pairs}"
    )
    headers = ["stretch x"] + sorted(result.ccdf)
    print(render_table(headers, ccdf_rows(result.ccdf)))
    print()
    print(render_ccdf_plot(result.ccdf, title=f"P(Stretch > x | path) — Figure {panel}"))
    print()
    summary_rows = []
    for name in result.scheme_names():
        summary = result.summary[name]
        summary_rows.append(
            [
                name,
                f"{result.delivery_ratio[name]:.3f}",
                f"{summary['mean']:.2f}",
                f"{summary['median']:.2f}",
                f"{summary['p90']:.2f}",
                f"{summary['max']:.2f}",
            ]
        )
    print(render_table(["scheme", "delivery", "mean", "median", "p90", "max"], summary_rows))


def assert_paper_shape(result: StretchExperimentResult, expect_full_pr_delivery: bool = True) -> None:
    """The qualitative claims of Figure 2 that must hold in the reproduction.

    * Re-convergence never stretches more than FCP, which never stretches
      more than PR (on average) — the ordering visible in every panel.
    * Both multi-failure-capable baselines deliver everything; PR delivers
      everything on the planar topologies (see EXPERIMENTS.md for the
      non-planar Teleglobe discussion).
    * All stretch values lie in the plotted range's lower end (>= 1).
    """
    reconvergence = result.mean_stretch("Re-convergence")
    fcp = result.mean_stretch("Failure-Carrying Packets")
    pr = result.mean_stretch("Packet Re-cycling")
    assert reconvergence <= fcp + 1e-9, "re-convergence must be the stretch lower bound"
    assert fcp <= pr + 1e-9, "PR trades stretch for simplicity; FCP must not exceed it"
    assert result.delivery_ratio["Re-convergence"] == 1.0
    assert result.delivery_ratio["Failure-Carrying Packets"] == 1.0
    if expect_full_pr_delivery:
        assert result.delivery_ratio["Packet Re-cycling"] == 1.0
    for samples in result.samples.values():
        assert all(s.stretch is None or s.stretch >= 1.0 - 1e-9 for s in samples)
