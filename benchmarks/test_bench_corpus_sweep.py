"""S2 — corpus-sharded campaign wall-time: zoo + synthetic topologies.

Anchors the perf trajectory of the topology-corpus subsystem: a single-link
campaign sharded across committed Topology Zoo snapshots and parameterized
synthetic instances, serial vs parallel, with the cross-topology summary
aggregation included in the measured work.  Parallel workers build their
topologies lazily (first cell that shards onto them) and must produce
byte-identical payloads to the serial run.
"""

import time

from repro.experiments.asciiplot import render_table
from repro.runner import CampaignSpec, ScenarioSpec, run_campaign


def _spec() -> CampaignSpec:
    return CampaignSpec(
        topologies=(
            "nsfnet1991",
            "switch2003",
            "garr1999",
            "fat-tree:k=4",
            "waxman:size=24,seed=7",
            "barabasi-albert:size=24,m=2,seed=3",
        ),
        schemes=("reconvergence", "fcp"),
        scenarios=(ScenarioSpec(kind="single-link"),),
    )


def _payloads(result):
    return [{k: v for k, v in r.items() if k != "meta"} for r in result.records]


def test_bench_corpus_sweep_serial_vs_parallel(benchmark):
    def run():
        timings = {}
        spec = _spec()

        started = time.perf_counter()
        serial = run_campaign(spec, workers=1)
        serial_rows = serial.topology_summary()
        timings["serial"] = (time.perf_counter() - started, serial)

        started = time.perf_counter()
        parallel = run_campaign(spec, workers=2)
        parallel.topology_summary()
        timings["parallel (2 workers)"] = (time.perf_counter() - started, parallel)
        return timings, serial_rows

    timings, serial_rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("=== Corpus sweep: 6 topologies (3 zoo + 3 synthetic), 2 schemes ===")
    print(render_table(
        ["run", "wall", "cells"],
        [
            [name, f"{wall:.2f}s", result.executed]
            for name, (wall, result) in timings.items()
        ],
    ))
    print()
    print(render_table(
        ["topology", "scheme", "scenarios", "delivery", "mean stretch",
         "max", "coverage"],
        serial_rows,
    ))

    _, serial = timings["serial"]
    _, parallel = timings["parallel (2 workers)"]
    spec = serial.spec
    # One cell per (topology, scheme); one summary row each.
    assert serial.executed == len(spec.topologies) * len(spec.schemes)
    assert len(serial_rows) == serial.executed
    # Sharding across workers must not change a single payload byte.
    assert _payloads(serial) == _payloads(parallel)
