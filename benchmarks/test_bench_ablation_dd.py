"""A2 — ablation: hop-count vs. weighted-cost distance discriminators.

Section 4.3 offers both functions; the trade-off is header bits (hop count
needs ~log2(d) bits, weighted cost needs log2(weighted diameter)) against any
difference in delivery or stretch.
"""

from repro.experiments.ablation import dd_kind_ablation
from repro.experiments.asciiplot import render_table
from repro.topologies.abilene import abilene
from repro.topologies.geant import geant


def test_bench_dd_kind_ablation(benchmark):
    def run():
        return {
            "abilene": dd_kind_ablation(abilene(), seed=0),
            "geant": dd_kind_ablation(geant(), seed=0),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for topology, rows in results.items():
        print(f"=== Distance discriminator ablation — {topology} (single failures) ===")
        table = [
            [
                row.configuration,
                row.header_bits,
                f"{row.delivery_ratio:.3f}",
                f"{row.mean_stretch:.2f}",
                f"{row.max_stretch:.2f}",
            ]
            for row in rows
        ]
        print(render_table(["configuration", "header bits", "delivery", "mean", "max"], table))
        print()

    for topology, rows in results.items():
        by_config = {row.configuration: row for row in rows}
        assert by_config["dd=hop-count"].delivery_ratio == 1.0, topology
        assert by_config["dd=weighted-cost"].delivery_ratio == 1.0, topology
        # Hop count is the cheaper encoding (the paper's log2(d) argument).
        assert (
            by_config["dd=hop-count"].header_bits <= by_config["dd=weighted-cost"].header_bits
        ), topology
