"""X4 — Section 7: link flapping and the hold-down counter-measure.

Prints, for hold-downs of increasing length, how many transitions the control
plane acts on, the time the link is advertised up while actually down (the
window that endangers cycle following), and the capacity sacrificed while a
healthy link is still held down.
"""

from repro.experiments.asciiplot import render_table
from repro.experiments.flapping import flapping_experiment


def test_bench_flapping_hold_down(benchmark):
    rows = benchmark.pedantic(
        lambda: flapping_experiment(
            mean_up_time=2.0, mean_down_time=0.5, horizon=600.0,
            hold_downs=[0.0, 0.5, 1.0, 2.0, 5.0, 10.0], seed=42,
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print("=== Link flapping: effect of the hold-down timer (600 s sample path) ===")
    table = [
        [
            f"{row.hold_down:g}",
            row.raw_transitions,
            row.acted_transitions,
            f"{row.advertised_up_while_down:.1f} s",
            f"{row.advertised_down_while_up:.1f} s",
        ]
        for row in rows
    ]
    print(render_table(
        ["hold-down (s)", "raw transitions", "acted on", "advertised up while down",
         "advertised down while up"],
        table,
    ))

    acted = [row.acted_transitions for row in rows]
    assert acted == sorted(acted, reverse=True)
    assert rows[-1].acted_transitions < rows[0].acted_transitions
    assert rows[0].advertised_up_while_down == 0.0
    assert rows[-1].advertised_down_while_up > rows[0].advertised_down_while_up
