"""F2f — Figure 2(f): stretch CCDF on Géant under 16 simultaneous failures."""

from _figure_helpers import assert_paper_shape, print_panel, run_panel


def test_bench_figure_2f_geant_sixteen_failures(benchmark):
    result = benchmark.pedantic(
        lambda: run_panel("2f", samples=20, seed=1), rounds=1, iterations=1
    )
    print_panel(result, "2f", "Geant with 16 failures")
    assert_paper_shape(result)
    assert result.failures_per_scenario == 16
