"""X2 — Section 1 motivation: packets lost during re-convergence vs. under PR.

Reproduces the "heavily loaded OC-192 link down for a second loses more than
a quarter of a million packets" argument with the discrete-event simulator
(scaled-down rate, extrapolated back to OC-192) and shows PR's counterfactual.
"""

from repro.experiments.convergence import convergence_loss_experiment
from repro.experiments.asciiplot import render_table
from repro.simulator.des import estimate_packets_lost
from repro.topologies.abilene import abilene


def test_bench_convergence_packet_loss(benchmark):
    graph = abilene()
    result = benchmark.pedantic(
        lambda: convergence_loss_experiment(
            graph, source="Seattle", destination="KansasCity", rate_pps=1000.0, duration=2.0
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print("=== Packets lost around one link failure (Abilene, Seattle -> KansasCity) ===")
    print(f"failed link: {result.failed_link[0]} -- {result.failed_link[1]}")
    print(f"re-convergence completes {result.convergence_time * 1000:.0f} ms after the failure")
    rows = []
    for name, report in result.reports.items():
        rows.append(
            [
                name,
                report.packets_sent,
                report.packets_dropped,
                f"{100 * report.loss_fraction:.2f}%",
                f"{result.extrapolated_losses[name]:,.0f}",
            ]
        )
    print(
        render_table(
            ["behaviour", "sent (sim)", "dropped (sim)", "loss", "extrapolated loss @ OC-192 (25% load)"],
            rows,
        )
    )
    paper_figure = estimate_packets_lost(9.95328e9, utilization=0.25, outage_seconds=1.0)
    print(f"paper's back-of-the-envelope (1 s outage): {paper_figure:,.0f} packets")

    assert paper_figure > 250_000
    assert result.loss_fraction("Packet Re-cycling") < result.loss_fraction("re-convergence")
    assert result.loss_fraction("re-convergence") < result.loss_fraction("no-protection")
