"""F2c — Figure 2(c): stretch CCDF on Géant under all single link failures."""

from _figure_helpers import assert_paper_shape, print_panel, run_panel


def test_bench_figure_2c_geant_single_failures(benchmark):
    result = benchmark.pedantic(lambda: run_panel("2c"), rounds=1, iterations=1)
    print_panel(result, "2c", "Geant with single failures")
    assert_paper_shape(result)
    assert result.scenarios == 54
