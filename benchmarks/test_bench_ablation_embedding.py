"""A1 — ablation: embedding quality (faces / genus) vs. path stretch.

Section 7 notes that heuristic embeddings of arbitrary networks come "at the
cost of increased stretch".  The ablation quantifies that trade-off by running
PR with the exact/heuristic/worst-case rotation systems on the same
single-failure workload.
"""

from repro.experiments.ablation import embedding_quality_ablation
from repro.experiments.asciiplot import render_table
from repro.topologies.abilene import abilene
from repro.topologies.teleglobe import teleglobe


def _print_rows(title, rows):
    print()
    print(f"=== {title} ===")
    table = [
        [
            row.configuration,
            row.faces,
            row.genus,
            f"{row.delivery_ratio:.3f}",
            f"{row.mean_stretch:.2f}",
            f"{row.p90_stretch:.2f}",
            f"{row.max_stretch:.2f}",
        ]
        for row in rows
    ]
    print(render_table(["configuration", "faces", "genus", "delivery", "mean", "p90", "max"], table))


def test_bench_embedding_quality_ablation(benchmark):
    def run():
        return {
            "abilene": embedding_quality_ablation(
                abilene(), methods=["auto", "greedy", "adjacency"], seed=0
            ),
            "teleglobe": embedding_quality_ablation(
                teleglobe(), methods=["auto", "adjacency"], seed=0
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    _print_rows("Embedding quality vs stretch — Abilene (single failures)", results["abilene"])
    _print_rows("Embedding quality vs stretch — Teleglobe (single failures)", results["teleglobe"])

    for topology, rows in results.items():
        by_config = {row.configuration: row for row in rows}
        auto = by_config["embedding=auto"]
        worst = by_config["embedding=adjacency"]
        assert auto.faces >= worst.faces, topology
        assert auto.mean_stretch <= worst.mean_stretch + 1e-9, topology
        assert auto.delivery_ratio >= worst.delivery_ratio, topology
    # On the planar topology the exact embedding delivers everything.
    assert {row.configuration: row for row in results["abilene"]}[
        "embedding=auto"
    ].delivery_ratio == 1.0
