"""F2e — Figure 2(e): stretch CCDF on Teleglobe under 10 simultaneous failures.

Teleglobe is the one non-planar topology of the evaluation; the embedding
heuristics find a genus-1 embedding with no self-paired links, which restores
full single-failure coverage, but a small fraction of 10-failure combinations
still defeats the decreasing-distance termination condition on the torus (the
paper's Section 5 argument implicitly relies on a spherical embedding — see
EXPERIMENTS.md).  The assertion therefore allows PR delivery slightly below
100 % on this panel while still requiring the stretch ordering of the figure.
"""

from _figure_helpers import assert_paper_shape, print_panel, run_panel


def test_bench_figure_2e_teleglobe_ten_failures(benchmark):
    result = benchmark.pedantic(
        lambda: run_panel("2e", samples=25, seed=1), rounds=1, iterations=1
    )
    print_panel(result, "2e", "Teleglobe with 10 failures")
    assert_paper_shape(result, expect_full_pr_delivery=False)
    assert result.failures_per_scenario == 10
    assert result.delivery_ratio["Packet Re-cycling"] >= 0.70
