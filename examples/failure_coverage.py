#!/usr/bin/env python3
"""Repair coverage study: which failures can each scheme actually recover from?

Compares Packet Re-cycling (full and 1-bit variants), Loop-Free Alternates and
plain shortest-path forwarding on a chosen topology under every single link
failure and under sampled multi-failure combinations.

Usage:
    python examples/failure_coverage.py [topology] [multi_failures] [samples]

Defaults: abilene, 3 simultaneous failures, 25 sampled scenarios.
"""

import sys

from repro.baselines.lfa import LoopFreeAlternates
from repro.baselines.noprotection import NoProtection
from repro.core.coverage import coverage_report
from repro.core.scheme import PacketRecycling, SimplePacketRecycling
from repro.experiments.asciiplot import render_table
from repro.failures.sampling import sample_multi_link_failures
from repro.failures.scenarios import single_link_failures
from repro.topologies.registry import by_name


def main() -> None:
    topology = sys.argv[1] if len(sys.argv) > 1 else "abilene"
    failures = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    samples = int(sys.argv[3]) if len(sys.argv) > 3 else 25

    graph = by_name(topology)
    print(f"Topology {graph.name}: {graph.number_of_nodes()} routers, "
          f"{graph.number_of_edges()} links")

    schemes = {
        "Packet Re-cycling": PacketRecycling(graph, embedding_seed=0),
        "Packet Re-cycling (1-bit)": SimplePacketRecycling(graph, embedding_seed=0),
        "Loop-Free Alternates": LoopFreeAlternates(graph),
        "No protection": NoProtection(graph),
    }

    single = [s.failed_links for s in single_link_failures(graph)]
    multi = [
        s.failed_links
        for s in sample_multi_link_failures(graph, failures=failures, samples=samples, seed=1)
    ]

    for label, scenarios in (("single link failures", single),
                             (f"{failures} simultaneous failures ({len(multi)} scenarios)", multi)):
        if not scenarios:
            print(f"\n[{label}] no non-disconnecting scenarios exist on this topology")
            continue
        print(f"\n=== Coverage under {label} ===")
        rows = []
        for name, scheme in schemes.items():
            report = coverage_report(scheme, scenarios)
            rows.append([name, report.attempts, report.delivered,
                         f"{100 * report.coverage:.2f}%", report.dropped, report.looped])
        print(render_table(
            ["scheme", "attempts", "delivered", "coverage", "dropped", "loops"], rows
        ))


if __name__ == "__main__":
    main()
