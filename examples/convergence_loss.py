#!/usr/bin/env python3
"""Packets lost around one link failure: re-convergence vs Packet Re-cycling.

Reproduces the paper's motivation with the discrete-event simulator: a flow
crosses a link that fails mid-simulation; under plain re-convergence every
packet forwarded onto the dead link until the routers re-converge is lost,
while PR reroutes them over the complementary cycle immediately after local
detection.  The measured loss fractions are extrapolated to an OC-192 link to
recover the paper's "more than a quarter of a million packets" figure.

Usage:
    python examples/convergence_loss.py [topology] [source] [destination]
"""

import sys

from repro.experiments.asciiplot import render_table
from repro.experiments.convergence import convergence_loss_experiment
from repro.simulator.des import estimate_packets_lost
from repro.topologies.registry import by_name


def main() -> None:
    topology = sys.argv[1] if len(sys.argv) > 1 else "abilene"
    source = sys.argv[2] if len(sys.argv) > 2 else "Seattle"
    destination = sys.argv[3] if len(sys.argv) > 3 else "KansasCity"

    graph = by_name(topology)
    print(f"Simulating a {source} -> {destination} flow on {graph.name}; the link in the "
          f"middle of its path fails 0.2 s into a 2 s simulation.")
    result = convergence_loss_experiment(
        graph, source=source, destination=destination, rate_pps=1000.0, duration=2.0
    )

    print(f"\nfailed link: {result.failed_link[0]} -- {result.failed_link[1]}")
    print(f"re-convergence completes {result.convergence_time * 1000:.0f} ms after the failure\n")

    rows = []
    for name, report in result.reports.items():
        rows.append([
            name,
            report.packets_sent,
            report.packets_dropped,
            f"{100 * report.loss_fraction:.2f}%",
            f"{1000 * report.mean_latency:.1f} ms",
            f"{result.extrapolated_losses[name]:,.0f}",
        ])
    print(render_table(
        ["behaviour", "sent", "dropped", "loss", "mean latency", "extrapolated @ OC-192, 25% load"],
        rows,
    ))

    paper = estimate_packets_lost(9.95328e9, utilization=0.25, outage_seconds=1.0)
    print(f"\npaper's back-of-the-envelope for a 1 s outage: {paper:,.0f} packets")


if __name__ == "__main__":
    main()
