#!/usr/bin/env python3
"""Regenerate a Figure 2 panel: stretch CCDF of PR vs FCP vs re-convergence.

Usage:
    python examples/stretch_study.py [panel] [samples]

``panel`` is one of 2a-2f (default 2a); ``samples`` is the number of random
multi-failure scenarios for the bottom-row panels (default 50).  Prints the
CCDF table, an ASCII rendering of the figure and per-scheme summaries, and
writes the raw series to ``figure_<panel>.csv`` in the working directory.
"""

import sys
from pathlib import Path

from repro.experiments import figure2_panel, render_ccdf_plot, render_table
from repro.experiments.asciiplot import ccdf_rows


def main() -> None:
    panel = sys.argv[1] if len(sys.argv) > 1 else "2a"
    samples = int(sys.argv[2]) if len(sys.argv) > 2 else 50

    print(f"Running Figure {panel} (this enumerates/samples failure scenarios "
          f"and forwards one packet per affected pair per scheme)...")
    result = figure2_panel(panel, samples=samples, seed=1)

    print()
    print(f"topology={result.topology}  failures/scenario={result.failures_per_scenario}  "
          f"scenarios={result.scenarios}  measured pairs={result.measured_pairs}")
    print()
    headers = ["stretch x"] + sorted(result.ccdf)
    print(render_table(headers, ccdf_rows(result.ccdf)))
    print()
    print(render_ccdf_plot(result.ccdf, title=f"P(Stretch > x | path) — Figure {panel}"))
    print()
    rows = []
    for name in result.scheme_names():
        summary = result.summary[name]
        rows.append([name, f"{result.delivery_ratio[name]:.3f}", f"{summary['mean']:.2f}",
                     f"{summary['p90']:.2f}", f"{summary['max']:.2f}"])
    print(render_table(["scheme", "delivery", "mean stretch", "p90", "max"], rows))

    csv_path = Path(f"figure_{panel}.csv")
    with csv_path.open("w") as handle:
        handle.write("scheme,stretch_x,probability\n")
        for scheme, curve in result.ccdf.items():
            for threshold, probability in curve:
                handle.write(f"{scheme},{threshold},{probability}\n")
    print(f"\nraw CCDF series written to {csv_path}")


if __name__ == "__main__":
    main()
