#!/usr/bin/env python3
"""Deploying PR on your own topology, end to end.

Shows the full operational workflow a network operator would follow:

1. describe the topology in the plain-text edge-list format (or point the
   parser at an existing file);
2. run the offline stage — compute the cellular embedding, validate it, and
   persist it to JSON (this is the artefact the paper's offline server would
   push to the routers);
3. rebuild the forwarding plane from the persisted embedding and exercise it
   under failures, including the link-flapping hold-down of Section 7.

Usage:
    python examples/custom_topology.py [path/to/topology.txt]
"""

import sys
import tempfile
from pathlib import Path

from repro.core.scheme import PacketRecycling
from repro.embedding.genus import self_paired_edge_count
from repro.embedding.serialization import load_embedding, save_embedding
from repro.embedding.validation import embedding_report
from repro.failures.flapping import LinkFlappingProcess, hold_down_filter
from repro.topologies.parser import graph_from_text, load_graph

#: A small metro ring with two chords, in the edge-list format.
SAMPLE_TOPOLOGY = """
# metro-ring example: six POPs, ring plus two chords, weights in km
core1 core2 30
core2 core3 45
core3 core4 25
core4 core5 40
core5 core6 35
core6 core1 50
core1 core4 80   # chord
core2 core5 70   # chord
"""


def main() -> None:
    if len(sys.argv) > 1:
        graph = load_graph(sys.argv[1])
    else:
        graph = graph_from_text(SAMPLE_TOPOLOGY, name="metro-ring")
    print(f"Topology {graph.name}: {graph.number_of_nodes()} routers, "
          f"{graph.number_of_edges()} links")

    # --- offline stage -------------------------------------------------
    scheme = PacketRecycling(graph, embedding_seed=0)
    print()
    print("\n".join(embedding_report(graph, scheme.embedding.rotation)))
    print(f"self-paired (unprotectable) links: "
          f"{self_paired_edge_count(scheme.embedding.rotation)}")

    with tempfile.TemporaryDirectory() as workdir:
        artefact = save_embedding(scheme.embedding, Path(workdir) / "embedding.json")
        print(f"embedding persisted to {artefact.name} "
              f"({artefact.stat().st_size} bytes) — this is what gets pushed to routers")

        # --- forwarding plane rebuilt from the artefact -----------------
        deployed = PacketRecycling(load_embedding(artefact).graph,
                                   embedding=load_embedding(artefact))

    nodes = graph.nodes()
    source, destination = nodes[0], nodes[len(nodes) // 2]
    print()
    print(f"forwarding {source} -> {destination}:")
    print(f"  no failures : {' -> '.join(deployed.deliver(source, destination).path)}")
    first_link = deployed.routing.egress(source, destination).edge_id
    outcome = deployed.deliver(source, destination, failed_links=[first_link])
    print(f"  first hop down: {' -> '.join(outcome.path)} (delivered={outcome.delivered})")

    # --- link flapping (Section 7) --------------------------------------
    print()
    print("link flapping on the failed link (mean up 2 s, mean down 0.5 s, 60 s horizon):")
    process = LinkFlappingProcess(mean_up_time=2.0, mean_down_time=0.5, seed=42)
    raw = process.events_until(60.0)
    damped = hold_down_filter(raw, hold_down=5.0, horizon=60.0)
    print(f"  raw transitions seen by the data plane : {len(raw)}")
    print(f"  transitions after a 5 s hold-down      : {len(damped)}")
    print("  (the hold-down keeps packets from meeting the link in different "
          "states within one cycle-following episode)")


if __name__ == "__main__":
    main()
