#!/usr/bin/env python3
"""Quickstart: Packet Re-cycling on the Abilene backbone in ~30 lines.

Builds the offline state (cellular embedding, cycle-following tables, routing
tables with the DD column), then delivers packets with and without link
failures and prints what happened.

Run with:  python examples/quickstart.py

See README.md at the repository root for installation, the CLI tour and the
campaign-runner workflow (parallel sweeps over the whole evaluation grid:
``python -m repro sweep ...``).
"""

from repro import build_packet_recycling, topologies
from repro.embedding.validation import embedding_report


def main() -> None:
    network = topologies.abilene()
    print(f"Topology: {network.name} — {network.number_of_nodes()} routers, "
          f"{network.number_of_edges()} links")

    # Offline stage (the paper's "server designated for that purpose").
    pr = build_packet_recycling(network)
    print()
    print("\n".join(embedding_report(network, pr.embedding.rotation)[:3]))
    print(f"header overhead: {pr.header_overhead_bits()} bits "
          f"(1 PR bit + {pr.dd_bits()} DD bits)")

    # The cycle following table a router would have installed.
    print()
    print(pr.cycle_tables.table_at("Denver").render())

    # Failure-free forwarding is untouched.
    print()
    outcome = pr.deliver("Seattle", "Atlanta")
    print(f"no failures     : {' -> '.join(outcome.path)}  (cost {outcome.cost:.0f} km)")

    # Fail a link the path uses and deliver again: PR reroutes on the
    # complementary cycle without dropping the packet.
    failed = network.edge_ids_between("KansasCity", "Indianapolis")
    outcome = pr.deliver("Seattle", "Atlanta", failed_links=failed)
    print(f"KansasCity-Indianapolis down: {' -> '.join(outcome.path)}  "
          f"(cost {outcome.cost:.0f} km, delivered={outcome.delivered})")

    # Multiple simultaneous failures are fine too, as long as a path exists
    # (the paper's guarantee is exactly "any non-disconnecting combination").
    from repro.graph.connectivity import non_disconnecting

    failed = [
        network.edge_ids_between("KansasCity", "Indianapolis")[0],
        network.edge_ids_between("Sunnyvale", "Denver")[0],
        network.edge_ids_between("Chicago", "NewYork")[0],
    ]
    assert non_disconnecting(network, failed)
    outcome = pr.deliver("Seattle", "Atlanta", failed_links=failed)
    print(f"three links down: {' -> '.join(outcome.path)}  (delivered={outcome.delivered})")


if __name__ == "__main__":
    main()
