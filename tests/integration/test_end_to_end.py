"""Integration tests exercising the whole pipeline the way a user would."""

import pytest

from repro.api import build_packet_recycling
from repro.baselines.fcp import FailureCarryingPackets
from repro.baselines.reconvergence import Reconvergence
from repro.core.scheme import PacketRecycling
from repro.embedding.serialization import load_embedding, save_embedding
from repro.experiments.stretch import run_stretch_experiment
from repro.failures.sampling import sample_multi_link_failures
from repro.failures.scenarios import single_link_failures
from repro.forwarding.headers import DscpCodec
from repro.topologies.parser import save_graph, load_graph
from repro.topologies.registry import by_name


class TestOfflinePipeline:
    """Topology file -> embedding file -> forwarding plane, as deployed."""

    def test_full_offline_then_online_flow(self, tmp_path):
        # 1. Operator exports the topology.
        topology_path = save_graph(by_name("abilene"), tmp_path / "abilene.topo")
        graph = load_graph(topology_path)

        # 2. The offline server computes and stores the embedding.
        pr = build_packet_recycling(graph)
        embedding_path = save_embedding(pr.embedding, tmp_path / "abilene.embedding.json")

        # 3. Routers load the published embedding and build their tables.
        loaded = load_embedding(embedding_path)
        deployed = PacketRecycling(loaded.graph, embedding=loaded)

        # 4. Failure-time behaviour matches the instance built directly.
        failed = loaded.graph.edge_ids_between("Denver", "KansasCity")
        original = pr.deliver("Seattle", "KansasCity", failed_links=failed)
        redeployed = deployed.deliver("Seattle", "KansasCity", failed_links=failed)
        assert original.delivered and redeployed.delivered
        assert original.path == redeployed.path

    def test_header_fields_fit_in_dscp_pool2_on_abilene(self, abilene_pr):
        codec = DscpCodec()
        worst_dd = max(
            abilene_pr.routing.discriminator(node, destination)
            for node in abilene_pr.graph.nodes()
            for destination in abilene_pr.graph.nodes()
            if node != destination
        )
        encoded = codec.encode(True, worst_dd)
        assert codec.decode(encoded) == (True, int(worst_dd))


class TestCrossSchemeConsistency:
    def test_identical_workload_identical_baseline_costs(self, abilene_graph, abilene_pr):
        schemes = [Reconvergence(abilene_graph), FailureCarryingPackets(abilene_graph), abilene_pr]
        scenarios = single_link_failures(abilene_graph)[:5]
        result = run_stretch_experiment(abilene_graph, scenarios, schemes)
        baselines = {
            name: sorted(sample.baseline_cost for sample in samples)
            for name, samples in result.samples.items()
        }
        values = list(baselines.values())
        assert values[0] == values[1] == values[2]

    def test_multi_failure_experiment_on_geant(self, geant_graph):
        pr = PacketRecycling(geant_graph, embedding_seed=0)
        scenarios = sample_multi_link_failures(geant_graph, failures=16, samples=3, seed=5)
        result = run_stretch_experiment(geant_graph, scenarios, schemes=[pr])
        assert result.delivery_ratio["Packet Re-cycling"] == 1.0

    def test_failure_free_costs_identical_across_schemes(self, abilene_graph, abilene_pr):
        fcp = FailureCarryingPackets(abilene_graph)
        for source, destination in [("Seattle", "NewYork"), ("Houston", "Chicago")]:
            assert abilene_pr.deliver(source, destination).cost == pytest.approx(
                fcp.deliver(source, destination).cost
            )
