"""Tests for link models and traffic flows."""

import pytest

from repro.errors import SimulationError
from repro.simulator.flows import TrafficFlow
from repro.simulator.links import OC192, LinkModel


class TestLinkModel:
    def test_serialization_delay(self):
        link = LinkModel(capacity_bps=8000.0)
        assert link.serialization_delay(1000) == pytest.approx(1.0)

    def test_fixed_propagation_delay(self):
        link = LinkModel(propagation_delay_s=0.01)
        assert link.propagation_delay(1234.0) == 0.01

    def test_distance_based_propagation(self):
        link = LinkModel(delay_per_km_s=5e-6)
        assert link.propagation_delay(1000.0) == pytest.approx(0.005)

    def test_oc192_constants(self):
        assert OC192.capacity_bps == pytest.approx(9.95328e9)
        # A 1 kB packet takes under a microsecond to serialise on OC-192.
        assert OC192.serialization_delay(1000) < 1e-6


class TestTrafficFlow:
    def test_packet_count_and_interval(self):
        flow = TrafficFlow("a", "b", rate_pps=100.0, start=0.0, end=2.0)
        assert flow.total_packets == 200
        assert flow.interval == pytest.approx(0.01)

    def test_rate_bps(self):
        flow = TrafficFlow("a", "b", rate_pps=1000.0, packet_size_bytes=1000)
        assert flow.rate_bps == pytest.approx(8_000_000.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            TrafficFlow("a", "b", rate_pps=0.0)
        with pytest.raises(SimulationError):
            TrafficFlow("a", "b", rate_pps=10.0, start=1.0, end=1.0)
        with pytest.raises(SimulationError):
            TrafficFlow("a", "b", rate_pps=10.0, packet_size_bytes=0)
