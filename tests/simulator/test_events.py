"""Tests for the discrete-event queue."""

import pytest

from repro.errors import SimulationError
from repro.simulator.events import EventQueue


class TestEventQueue:
    def test_events_run_in_time_order(self):
        queue = EventQueue()
        log = []
        queue.schedule(2.0, lambda: log.append("late"))
        queue.schedule(1.0, lambda: log.append("early"))
        queue.run()
        assert log == ["early", "late"]

    def test_simultaneous_events_run_in_scheduling_order(self):
        queue = EventQueue()
        log = []
        queue.schedule(1.0, lambda: log.append("first"))
        queue.schedule(1.0, lambda: log.append("second"))
        queue.run()
        assert log == ["first", "second"]

    def test_now_advances(self):
        queue = EventQueue()
        observed = []
        queue.schedule(3.5, lambda: observed.append(queue.now))
        queue.run()
        assert observed == [3.5]
        assert queue.now == 3.5

    def test_schedule_in_uses_relative_delay(self):
        queue = EventQueue()
        log = []
        queue.schedule(1.0, lambda: queue.schedule_in(0.5, lambda: log.append(queue.now)))
        queue.run()
        assert log == [pytest.approx(1.5)]

    def test_cannot_schedule_in_the_past(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.run()
        with pytest.raises(SimulationError):
            queue.schedule(0.5, lambda: None)

    def test_run_until_stops_early(self):
        queue = EventQueue()
        log = []
        queue.schedule(1.0, lambda: log.append(1))
        queue.schedule(5.0, lambda: log.append(5))
        queue.run(until=2.0)
        assert log == [1]
        assert len(queue) == 1

    def test_processed_event_count(self):
        queue = EventQueue()
        for time in (1.0, 2.0, 3.0):
            queue.schedule(time, lambda: None)
        assert queue.run() == 3
        assert queue.processed_events == 3
