"""Tests for the packet-level discrete-event simulator."""

import pytest

from repro.core.scheme import PacketRecycling
from repro.forwarding.network_state import NetworkState
from repro.routing.reconvergence import ReconvergenceModel
from repro.routing.tables import RoutingTables
from repro.simulator.des import PacketLevelSimulator, estimate_packets_lost
from repro.simulator.flows import TrafficFlow
from repro.simulator.forwarders import (
    ConvergenceAwareForwarder,
    ProtectionForwarder,
    StaticForwarder,
)
from repro.simulator.links import LinkModel


def _edge(graph, u, v):
    return graph.edge_ids_between(u, v)[0]


class TestFailureFreeSimulation:
    def test_all_packets_delivered(self, abilene_graph):
        state = NetworkState(abilene_graph)
        simulator = PacketLevelSimulator(abilene_graph, StaticForwarder(abilene_graph, state))
        simulator.add_flow(TrafficFlow("Seattle", "Washington", rate_pps=200.0, end=0.5))
        report = simulator.run()
        assert report.packets_sent == 100
        assert report.packets_delivered == 100
        assert report.packets_dropped == 0
        assert report.loss_fraction == 0.0

    def test_latency_accounts_for_propagation(self, abilene_graph, abilene_tables):
        state = NetworkState(abilene_graph)
        link = LinkModel(propagation_delay_s=0.01)
        simulator = PacketLevelSimulator(
            abilene_graph, StaticForwarder(abilene_graph, state), link
        )
        simulator.add_flow(TrafficFlow("Seattle", "Denver", rate_pps=10.0, end=0.2))
        report = simulator.run()
        hops = abilene_tables.hops("Seattle", "Denver")
        assert report.mean_latency == pytest.approx(hops * 0.01, rel=0.05)
        assert report.mean_hops == pytest.approx(hops)


class TestFailureSimulation:
    def test_static_forwarder_loses_affected_traffic(self, abilene_graph):
        failed = _edge(abilene_graph, "Denver", "KansasCity")
        state = NetworkState(abilene_graph, [failed])
        simulator = PacketLevelSimulator(abilene_graph, StaticForwarder(abilene_graph, state))
        simulator.add_flow(TrafficFlow("Seattle", "KansasCity", rate_pps=100.0, end=1.0))
        report = simulator.run()
        assert report.packets_dropped == report.packets_sent

    def test_convergence_aware_forwarder_recovers_after_updates(self, abilene_graph):
        failed = _edge(abilene_graph, "Denver", "KansasCity")
        state = NetworkState(abilene_graph, [failed])
        timeline = ReconvergenceModel().convergence_delay(abilene_graph, failed, failure_time=0.0)
        forwarder = ConvergenceAwareForwarder(abilene_graph, state, timeline.updated_at)
        simulator = PacketLevelSimulator(abilene_graph, forwarder)
        simulator.add_flow(TrafficFlow("Seattle", "KansasCity", rate_pps=100.0, end=2.0))
        report = simulator.run()
        assert 0 < report.packets_dropped < report.packets_sent
        # Losses stop once the network has converged.
        assert max(report.drop_times) <= timeline.converged_time + 0.1

    def test_pr_forwarder_loses_nothing_after_detection(self, abilene_graph, abilene_pr):
        failed = _edge(abilene_graph, "Denver", "KansasCity")
        state = NetworkState(abilene_graph, [failed])
        forwarder = ProtectionForwarder(abilene_pr, state, active_from=0.0)
        simulator = PacketLevelSimulator(abilene_graph, forwarder)
        simulator.add_flow(TrafficFlow("Seattle", "KansasCity", rate_pps=100.0, end=1.0))
        report = simulator.run()
        assert report.packets_dropped == 0
        assert report.packets_delivered == report.packets_sent

    def test_pr_loss_limited_to_detection_window(self, abilene_graph, abilene_pr):
        failed = _edge(abilene_graph, "Denver", "KansasCity")
        state = NetworkState(abilene_graph, [failed])
        forwarder = ProtectionForwarder(abilene_pr, state, active_from=0.05)
        simulator = PacketLevelSimulator(abilene_graph, forwarder)
        simulator.add_flow(TrafficFlow("Denver", "KansasCity", rate_pps=100.0, end=1.0))
        report = simulator.run()
        assert report.packets_dropped <= 0.05 * 100 + 1
        assert report.packets_dropped < report.packets_sent


class TestEstimatePacketsLost:
    def test_paper_quarter_million_claim(self):
        """OC-192 at ~25% load, one second, 1 kB packets: >250k packets."""
        lost = estimate_packets_lost(9.95328e9, utilization=0.25, outage_seconds=1.0)
        assert lost > 250_000

    def test_full_load_is_about_1_24_million(self):
        lost = estimate_packets_lost(9.95328e9, utilization=1.0, outage_seconds=1.0)
        assert lost == pytest.approx(1.244e6, rel=0.01)

    def test_invalid_utilization_rejected(self):
        with pytest.raises(Exception):
            estimate_packets_lost(1e9, utilization=1.5, outage_seconds=1.0)
