"""Tests for the convergence-loss experiment (the paper's motivation, X2)."""

import pytest

from repro.experiments.convergence import convergence_loss_experiment


@pytest.fixture(scope="module")
def result(request):
    abilene_pr = request.getfixturevalue("abilene_pr")
    return convergence_loss_experiment(
        abilene_pr.graph,
        source="Seattle",
        destination="KansasCity",
        rate_pps=500.0,
        duration=1.5,
        failure_time=0.2,
    )


class TestConvergenceLoss:
    def test_all_three_behaviours_reported(self, result):
        assert set(result.reports) == {"no-protection", "re-convergence", "Packet Re-cycling"}

    def test_loss_ordering(self, result):
        assert result.loss_fraction("Packet Re-cycling") <= result.loss_fraction("re-convergence")
        assert result.loss_fraction("re-convergence") <= result.loss_fraction("no-protection")

    def test_reconvergence_loses_packets_but_not_all(self, result):
        assert 0.0 < result.loss_fraction("re-convergence") < 1.0

    def test_pr_loses_essentially_nothing(self, result):
        # Only packets already in flight during the detection window can be lost.
        assert result.loss_fraction("Packet Re-cycling") < 0.05

    def test_extrapolation_is_paper_scale(self, result):
        # At OC-192 rates the sub-second convergence episode still costs on
        # the order of 10^5 packets (the paper's quarter-million figure is for
        # a full one-second outage, pinned separately in the simulator tests).
        assert result.extrapolated_losses["re-convergence"] > 100_000
        assert (
            result.extrapolated_losses["Packet Re-cycling"]
            < 0.2 * result.extrapolated_losses["re-convergence"]
        )

    def test_convergence_time_is_subsecond_but_positive(self, result):
        assert 0.1 < result.convergence_time < 2.0
