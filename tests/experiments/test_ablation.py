"""Tests for the ablation experiments (embedding quality and DD kind)."""

import pytest

from repro.experiments.ablation import dd_kind_ablation, embedding_quality_ablation
from repro.failures.scenarios import single_link_failures
from repro.topologies.generators import petersen_graph


class TestEmbeddingQualityAblation:
    @pytest.fixture(scope="class")
    def rows(self, request):
        abilene_graph = request.getfixturevalue("abilene_graph")
        scenarios = single_link_failures(abilene_graph)[:6]
        return embedding_quality_ablation(
            abilene_graph, methods=["auto", "adjacency"], scenarios=scenarios
        )

    def test_one_row_per_method(self, rows):
        assert [row.configuration for row in rows] == ["embedding=auto", "embedding=adjacency"]

    def test_auto_embedding_has_at_least_as_many_faces(self, rows):
        by_config = {row.configuration: row for row in rows}
        assert by_config["embedding=auto"].faces >= by_config["embedding=adjacency"].faces

    def test_better_embedding_never_increases_mean_stretch(self, rows):
        by_config = {row.configuration: row for row in rows}
        assert (
            by_config["embedding=auto"].mean_stretch
            <= by_config["embedding=adjacency"].mean_stretch + 1e-9
        )

    def test_delivery_ratio_reported(self, rows):
        assert all(0.0 <= row.delivery_ratio <= 1.0 for row in rows)

    def test_non_planar_graph_ablation_runs(self):
        graph = petersen_graph()
        rows = embedding_quality_ablation(graph, methods=["auto"], seed=1)
        assert rows[0].genus >= 1


class TestDdKindAblation:
    def test_both_kinds_compared(self, abilene_graph):
        scenarios = single_link_failures(abilene_graph)[:5]
        rows = dd_kind_ablation(abilene_graph, scenarios=scenarios)
        configs = {row.configuration for row in rows}
        assert configs == {"dd=hop-count", "dd=weighted-cost"}

    def test_full_delivery_under_both_kinds(self, abilene_graph):
        scenarios = single_link_failures(abilene_graph)[:5]
        rows = dd_kind_ablation(abilene_graph, scenarios=scenarios)
        assert all(row.delivery_ratio == 1.0 for row in rows)

    def test_weighted_kind_needs_more_header_bits(self, abilene_graph):
        scenarios = single_link_failures(abilene_graph)[:3]
        rows = {row.configuration: row for row in dd_kind_ablation(abilene_graph, scenarios=scenarios)}
        assert rows["dd=weighted-cost"].header_bits >= rows["dd=hop-count"].header_bits
