"""Tests for the overhead experiment and ASCII rendering."""

from repro.experiments.asciiplot import ccdf_rows, render_ccdf_plot, render_table
from repro.experiments.overhead import overhead_experiment


class TestOverheadExperiment:
    def test_runs_on_abilene_only(self):
        results = overhead_experiment(["abilene"], include_extras=False)
        assert set(results) == {"abilene"}
        rows = results["abilene"]
        assert {row.scheme for row in rows} == {
            "Re-convergence",
            "Failure-Carrying Packets",
            "Packet Re-cycling",
        }

    def test_extras_add_variants(self):
        results = overhead_experiment(["abilene"], include_extras=True)
        names = {row.scheme for row in results["abilene"]}
        assert "Packet Re-cycling (1-bit)" in names
        assert "Loop-Free Alternates" in names

    def test_pr_header_bits_smallest_among_header_users(self):
        rows = overhead_experiment(["abilene"], include_extras=False)["abilene"]
        by_name = {row.scheme: row for row in rows}
        assert by_name["Packet Re-cycling"].header_bits < by_name["Failure-Carrying Packets"].header_bits


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "b"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_ccdf_plot_contains_legend(self):
        curves = {"PR": [(1.0, 0.9), (5.0, 0.2)], "FCP": [(1.0, 0.5), (5.0, 0.0)]}
        plot = render_ccdf_plot(curves)
        assert "legend:" in plot
        assert "P(Stretch > x | path)" in plot

    def test_render_ccdf_plot_empty(self):
        assert "(no data)" in render_ccdf_plot({})

    def test_ccdf_rows_shape(self):
        curves = {"PR": [(1.0, 0.9), (2.0, 0.2)], "FCP": [(1.0, 0.5)]}
        rows = ccdf_rows(curves)
        assert rows[0][0] == "1"
        assert len(rows[0]) == 3
