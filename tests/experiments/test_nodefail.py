"""Tests for the node-failure experiment runner."""

import pytest

from repro.baselines.noprotection import NoProtection
from repro.errors import ExperimentError
from repro.experiments.nodefail import node_failure_experiment


class TestNodeFailureExperiment:
    @pytest.fixture(scope="class")
    def result(self, request):
        abilene_graph = request.getfixturevalue("abilene_graph")
        abilene_pr = request.getfixturevalue("abilene_pr")
        return node_failure_experiment(abilene_graph, [abilene_pr, NoProtection(abilene_graph)])

    def test_one_scenario_per_node(self, result, abilene_graph):
        assert result.scenarios == abilene_graph.number_of_nodes()

    def test_pr_full_coverage_under_node_failures(self, result):
        assert result.delivery_ratio["Packet Re-cycling"] == 1.0

    def test_no_protection_loses_traffic(self, result):
        assert result.delivery_ratio["No protection"] < 1.0

    def test_stretch_summary_present_and_at_least_one(self, result):
        summary = result.stretch_summary["Packet Re-cycling"]
        assert summary["count"] > 0
        assert summary["mean"] >= 1.0

    def test_exclude_list_respected(self, abilene_graph, abilene_pr):
        full = node_failure_experiment(abilene_graph, [abilene_pr])
        reduced = node_failure_experiment(abilene_graph, [abilene_pr], exclude=["Denver"])
        assert reduced.scenarios == full.scenarios - 1

    def test_requires_at_least_one_scheme(self, abilene_graph):
        with pytest.raises(ExperimentError):
            node_failure_experiment(abilene_graph, [])

    def test_pairs_never_involve_the_failed_node(self, fig1_graph, fig1_pr):
        # On the small example we can check the accounting end to end: packets
        # to/from the failed router are excluded, everything else delivered.
        result = node_failure_experiment(fig1_graph, [fig1_pr])
        assert result.delivery_ratio["Packet Re-cycling"] == 1.0
