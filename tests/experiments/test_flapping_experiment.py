"""Tests for the link-flapping hold-down experiment."""

import pytest

from repro.experiments.flapping import flapping_experiment


class TestFlappingExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return flapping_experiment(
            mean_up_time=2.0, mean_down_time=0.5, horizon=200.0,
            hold_downs=[0.0, 1.0, 5.0, 20.0], seed=7,
        )

    def test_one_row_per_hold_down(self, rows):
        assert [row.hold_down for row in rows] == [0.0, 1.0, 5.0, 20.0]

    def test_acted_transitions_decrease_with_hold_down(self, rows):
        acted = [row.acted_transitions for row in rows]
        assert acted == sorted(acted, reverse=True)

    def test_zero_hold_down_acts_on_every_transition(self, rows):
        assert rows[0].acted_transitions == rows[0].raw_transitions

    def test_no_hold_down_has_no_inconsistency(self, rows):
        # Acting immediately on every transition means the advertised state is
        # never up while the link is down.
        assert rows[0].advertised_up_while_down == pytest.approx(0.0, abs=1e-9)

    def test_capacity_loss_grows_with_hold_down(self, rows):
        loss = [row.advertised_down_while_up for row in rows]
        assert loss[0] <= loss[-1]
        assert loss[-1] > 0.0

    def test_hold_down_never_advertises_up_while_down(self, rows):
        # Down transitions are propagated immediately, so the hold-down never
        # *adds* inconsistency time.
        for row in rows:
            assert row.advertised_up_while_down <= rows[0].advertised_up_while_down + 1e-9

    def test_deterministic_for_a_seed(self):
        first = flapping_experiment(seed=3, horizon=100.0)
        second = flapping_experiment(seed=3, horizon=100.0)
        assert first == second
