"""Tests for the Figure 2 experiment machinery."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.stretch import (
    FIGURE2_PANELS,
    default_schemes,
    figure2_panel,
    resolve_figure2_panel,
    run_stretch_experiment,
)
from repro.failures.scenarios import single_link_failures


class TestPanelDefinitions:
    def test_all_six_panels_defined(self):
        assert set(FIGURE2_PANELS) == {"2a", "2b", "2c", "2d", "2e", "2f"}

    def test_panel_parameters_match_paper(self):
        assert FIGURE2_PANELS["2a"] == ("abilene", 1)
        assert FIGURE2_PANELS["2d"] == ("abilene", 4)
        assert FIGURE2_PANELS["2e"] == ("teleglobe", 10)
        assert FIGURE2_PANELS["2f"] == ("geant", 16)

    def test_unknown_panel_rejected(self):
        with pytest.raises(ExperimentError):
            figure2_panel("2z")

    @pytest.mark.parametrize("spelling", ["2a", "fig2a", "figure2a", "FIG2A", "Figure 2a", "  2a  "])
    def test_accepted_panel_spellings(self, spelling):
        assert resolve_figure2_panel(spelling) == ("abilene", 1)

    @pytest.mark.parametrize(
        "bad",
        [
            "",            # empty
            "2g",          # out of range
            "fig",         # prefix alone
            "figure",      # prefix alone
            "gif2a",       # lstrip("fig") would have mangled this into a match
            "ure2a",       # likewise for lstrip("ure")
            "fig2a2b",     # trailing junk
            "3a",          # wrong figure number
            "a2",          # reversed
        ],
    )
    def test_rejected_panel_spellings(self, bad):
        with pytest.raises(ExperimentError):
            resolve_figure2_panel(bad)


class TestDefaultSchemes:
    def test_legend_order_matches_paper(self, abilene_graph):
        names = [scheme.name for scheme in default_schemes(abilene_graph)]
        assert names == ["Re-convergence", "Failure-Carrying Packets", "Packet Re-cycling"]


class TestRunStretchExperiment:
    @pytest.fixture(scope="class")
    def abilene_result(self, abilene_graph, abilene_pr):
        from repro.baselines.fcp import FailureCarryingPackets
        from repro.baselines.reconvergence import Reconvergence

        schemes = [Reconvergence(abilene_graph), FailureCarryingPackets(abilene_graph), abilene_pr]
        scenarios = single_link_failures(abilene_graph)
        return run_stretch_experiment(abilene_graph, scenarios, schemes)

    def test_every_scheme_reported(self, abilene_result):
        assert set(abilene_result.scheme_names()) == {
            "Re-convergence",
            "Failure-Carrying Packets",
            "Packet Re-cycling",
        }

    def test_all_schemes_measured_on_identical_workload(self, abilene_result):
        sizes = {name: len(samples) for name, samples in abilene_result.samples.items()}
        assert len(set(sizes.values())) == 1
        assert abilene_result.measured_pairs == next(iter(sizes.values()))

    def test_full_delivery_for_all_three_schemes(self, abilene_result):
        assert all(ratio == 1.0 for ratio in abilene_result.delivery_ratio.values())

    def test_stretch_ordering_matches_paper(self, abilene_result):
        """Figure 2: re-convergence stretches least, PR most, FCP in between."""
        reconvergence = abilene_result.mean_stretch("Re-convergence")
        fcp = abilene_result.mean_stretch("Failure-Carrying Packets")
        pr = abilene_result.mean_stretch("Packet Re-cycling")
        assert reconvergence <= fcp + 1e-9
        assert fcp <= pr + 1e-9

    def test_reconvergence_is_lower_envelope_sample_by_sample(self, abilene_result):
        reconvergence = {
            (s.source, s.destination, s.failed_links): s.stretch
            for s in abilene_result.samples["Re-convergence"]
        }
        for sample in abilene_result.samples["Packet Re-cycling"]:
            key = (sample.source, sample.destination, sample.failed_links)
            assert reconvergence[key] <= sample.stretch + 1e-9

    def test_ccdf_starts_at_or_below_one_and_decreases(self, abilene_result):
        for curve in abilene_result.ccdf.values():
            probabilities = [p for _x, p in curve]
            assert all(0.0 <= p <= 1.0 for p in probabilities)
            assert probabilities == sorted(probabilities, reverse=True)

    def test_all_stretch_values_at_least_one(self, abilene_result):
        for samples in abilene_result.samples.values():
            assert all(s.stretch is None or s.stretch >= 1.0 - 1e-9 for s in samples)

    def test_empty_scenarios_rejected(self, abilene_graph):
        with pytest.raises(ExperimentError):
            run_stretch_experiment(abilene_graph, [])


class TestFigure2Panel:
    def test_panel_2a_runs_with_supplied_graph(self, abilene_graph, abilene_pr):
        from repro.baselines.reconvergence import Reconvergence

        result = figure2_panel("2a", graph=abilene_graph, schemes=[Reconvergence(abilene_graph), abilene_pr])
        assert result.scenarios == abilene_graph.number_of_edges()
        assert result.failures_per_scenario == 1

    def test_panel_2d_samples_multi_failures(self, abilene_graph, abilene_pr):
        result = figure2_panel("2d", samples=5, seed=1, graph=abilene_graph, schemes=[abilene_pr])
        assert result.failures_per_scenario == 4
        assert result.scenarios == 5

    def test_panel_name_normalisation(self, abilene_graph, abilene_pr):
        result = figure2_panel("fig2a", graph=abilene_graph, schemes=[abilene_pr])
        assert result.topology == "abilene"
