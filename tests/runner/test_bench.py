"""Tests for the ``repro bench`` benchmark harness and regression check."""

import json

import pytest

from repro.cli import main
from repro.runner.bench import (
    check_ft_overhead,
    check_regression,
    check_throughput,
    load_bench,
    run_bench,
    write_bench,
)


class TestCheckRegression:
    def _doc(self, **timings):
        return {"timings": timings, "meta": {}}

    def test_within_tolerance_passes(self):
        baseline = self._doc(sweep_total_s=1.0)
        current = self._doc(sweep_total_s=1.2)
        assert check_regression(current, baseline, tolerance=0.25) == []

    def test_regression_reported(self):
        baseline = self._doc(sweep_total_s=1.0, figure2_s=0.5)
        current = self._doc(sweep_total_s=1.3, figure2_s=0.5)
        violations = check_regression(current, baseline, tolerance=0.25)
        assert len(violations) == 1
        assert "sweep_total_s" in violations[0]

    def test_missing_keys_are_not_regressions(self):
        baseline = self._doc(sweep_total_s=1.0, removed_metric_s=0.1)
        current = self._doc(sweep_total_s=0.9, brand_new_metric_s=9.9)
        assert check_regression(current, baseline, tolerance=0.25) == []

    def test_zero_tolerance(self):
        baseline = self._doc(sweep_total_s=1.0)
        current = self._doc(sweep_total_s=1.0001)
        assert check_regression(current, baseline, tolerance=0.0)


class TestCheckThroughput:
    def _doc(self, **rates):
        return {"timings": {}, "throughput": rates, "meta": {}}

    def test_within_tolerance_passes(self):
        baseline = self._doc(query_warm_qps=500.0)
        current = self._doc(query_warm_qps=420.0)  # above 500/1.25 = 400
        assert check_throughput(current, baseline, tolerance=0.25) == []

    def test_shortfall_reported(self):
        baseline = self._doc(query_warm_qps=500.0, other_qps=10.0)
        current = self._doc(query_warm_qps=300.0, other_qps=10.0)
        violations = check_throughput(current, baseline, tolerance=0.25)
        assert len(violations) == 1
        assert "query_warm_qps" in violations[0]

    def test_missing_keys_are_not_violations(self):
        baseline = self._doc(query_warm_qps=500.0, retired_qps=99.0)
        current = self._doc(query_warm_qps=500.0, brand_new_qps=1.0)
        assert check_throughput(current, baseline, tolerance=0.25) == []

    def test_document_without_throughput_section(self):
        baseline = self._doc(query_warm_qps=500.0)
        assert check_throughput({"timings": {}}, baseline) == []
        assert check_throughput(self._doc(query_warm_qps=1.0), {"timings": {}}) == []


class TestCheckFtOverhead:
    def _doc(self, **timings):
        return {"timings": timings, "meta": {}}

    def test_within_budget_passes(self):
        document = self._doc(
            corpus_sweep_s=2.0,
            corpus_sweep_ft_s=2.04,
            sweep_parallel_s=1.0,
            sweep_parallel_ft_s=1.02,
        )
        assert check_ft_overhead(document) == []

    def test_noise_floor_tolerates_tiny_absolute_deltas(self):
        # 50% relative overhead — but 40 ms absolute, below scheduler
        # jitter on a sub-100ms quick-mode leg.
        document = self._doc(corpus_sweep_s=0.08, corpus_sweep_ft_s=0.12)
        assert check_ft_overhead(document) == []

    def test_violation_reported_with_both_timings(self):
        document = self._doc(corpus_sweep_s=2.0, corpus_sweep_ft_s=2.5)
        violations = check_ft_overhead(document)
        assert len(violations) == 1
        assert "corpus_sweep_ft_s" in violations[0]
        assert "2.500" in violations[0]

    def test_missing_keys_are_not_violations(self):
        assert check_ft_overhead(self._doc(corpus_sweep_s=1.0)) == []
        assert check_ft_overhead({"timings": {}}) == []


class TestRunBench:
    @pytest.fixture(scope="class")
    def quick_document(self):
        return run_bench(quick=True, workers=2)

    def test_document_shape(self, quick_document):
        timings = quick_document["timings"]
        assert set(timings) == {
            "figure2_s",
            "corpus_sweep_s",
            "corpus_sweep_ft_s",
            "sweep_cold_s",
            "sweep_warm_s",
            "sweep_parallel_s",
            "sweep_parallel_ft_s",
            "sweep_resumed_s",
            "sweep_incremental_s",
            "sweep_total_s",
        }
        assert all(value >= 0 for value in timings.values())
        # Higher-is-better rates live apart from the gated timings.
        assert set(quick_document["throughput"]) == {
            "query_warm_qps",
            "query_warm_qps_under_load",
        }
        assert quick_document["throughput"]["query_warm_qps"] > 0
        assert quick_document["throughput"]["query_warm_qps_under_load"] > 0
        assert quick_document["meta"]["query_rounds"] == 100
        assert quick_document["meta"]["load_rounds"] > 0
        assert quick_document["meta"]["quick"] is True
        assert quick_document["meta"]["cells"] == 6
        # quick corpus slice: 4 topologies x 2 schemes.
        assert quick_document["meta"]["corpus_topologies"] == 4
        assert quick_document["meta"]["corpus_summary_rows"] == 8

    def test_incremental_repair_counters_reported(self, quick_document):
        """The repair-heavy workload must actually exercise the repair layer."""
        meta = quick_document["meta"]
        assert meta["repair_hits"] > 0
        assert meta["repair_fallbacks"] >= 0

    def test_total_is_sum_of_sweep_phases(self, quick_document):
        timings = quick_document["timings"]
        expected = (
            timings["sweep_cold_s"]
            + timings["sweep_warm_s"]
            + timings["sweep_parallel_s"]
            + timings["sweep_resumed_s"]
        )
        assert timings["sweep_total_s"] == pytest.approx(expected, abs=0.01)

    def test_write_and_load_round_trip(self, quick_document, tmp_path):
        path = write_bench(quick_document, tmp_path / "BENCH_sweep.json")
        assert load_bench(path) == json.loads(path.read_text())


class TestWriteBench:
    def test_round_trip(self, tmp_path):
        document = {"timings": {"x_s": 1.0}, "meta": {"quick": True}}
        path = write_bench(document, tmp_path / "bench.json")
        assert load_bench(path) == document

    def test_existing_history_is_preserved(self, tmp_path):
        """A routine bench run must not erase the committed perf trajectory."""
        path = tmp_path / "BENCH_sweep.json"
        trajectory = {
            "note": "trajectory",
            "history": [{"label": "PR 5", "timings": {"x_s": 2.0}}],
            "timings": {"x_s": 2.0},
            "meta": {"quick": True},
        }
        write_bench(trajectory, path)
        fresh = {"timings": {"x_s": 1.5}, "meta": {"quick": True, "workers": 2}}
        write_bench(fresh, path)
        merged = load_bench(path)
        assert merged["timings"] == {"x_s": 1.5}
        assert merged["meta"] == {"quick": True, "workers": 2}
        assert merged["history"] == trajectory["history"]
        assert merged["note"] == "trajectory"

    def test_plain_documents_are_overwritten(self, tmp_path):
        path = tmp_path / "bench.json"
        write_bench({"timings": {"x_s": 9.0}, "meta": {}}, path)
        write_bench({"timings": {"x_s": 1.0}, "meta": {}}, path)
        assert load_bench(path) == {"timings": {"x_s": 1.0}, "meta": {}}

    def test_document_with_its_own_history_wins(self, tmp_path):
        """A deliberately updated trajectory must not be reverted to the stale one."""
        path = tmp_path / "BENCH_sweep.json"
        write_bench({"history": [{"label": "old"}], "timings": {}, "meta": {}}, path)
        updated = {
            "history": [{"label": "old"}, {"label": "new"}],
            "timings": {"x_s": 1.0},
            "meta": {},
        }
        write_bench(updated, path)
        assert load_bench(path)["history"] == updated["history"]


class TestBenchCli:
    def test_bench_writes_output_and_passes_generous_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"timings": {"sweep_total_s": 1e6}}))
        output = tmp_path / "BENCH_sweep.json"
        code = main([
            "bench", "--quick",
            "--output", str(output),
            "--check", str(baseline),
        ])
        assert code == 0
        assert output.exists()
        assert "regression check" in capsys.readouterr().out

    def test_bench_fails_on_impossible_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"timings": {"sweep_total_s": 1e-9}}))
        output = tmp_path / "BENCH_sweep.json"
        code = main([
            "bench", "--quick",
            "--output", str(output),
            "--check", str(baseline),
        ])
        assert code == 1
        assert "PERFORMANCE REGRESSION" in capsys.readouterr().out

    def test_bench_fails_on_impossible_throughput_floor(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "timings": {},
            "throughput": {"query_warm_qps": 1e12},
        }))
        output = tmp_path / "BENCH_sweep.json"
        code = main([
            "bench", "--quick",
            "--output", str(output),
            "--check", str(baseline),
        ])
        assert code == 1
        assert "THROUGHPUT REGRESSION" in capsys.readouterr().out
