"""Campaign specification: grid expansion, seeds, hashing, persistence."""

import pytest

from repro.errors import ExperimentError
from repro.runner.spec import (
    CampaignSpec,
    ScenarioSpec,
    available_schemes,
    chunk_cells,
    figure2_campaign_spec,
    node_failure_campaign_spec,
    scenario_model_campaign_spec,
)
from repro.scenarios import available_scenario_models


def small_spec(**overrides):
    defaults = dict(
        topologies=("fig1-example", "abilene"),
        schemes=("reconvergence", "pr"),
        scenarios=(
            ScenarioSpec("single-link"),
            ScenarioSpec("multi-link", failures=2, samples=5),
        ),
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestValidation:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ExperimentError):
            CampaignSpec(topologies=("abilene",), schemes=("not-a-scheme",))

    def test_unknown_discriminator_rejected(self):
        with pytest.raises(ExperimentError):
            CampaignSpec(topologies=("abilene",), discriminators=("parity",))

    def test_unknown_scenario_kind_rejected(self):
        with pytest.raises(ExperimentError):
            ScenarioSpec(kind="meteor-strike")

    def test_multi_link_needs_two_failures(self):
        with pytest.raises(ExperimentError):
            ScenarioSpec(kind="multi-link", failures=1)

    def test_empty_grid_axes_rejected(self):
        with pytest.raises(ExperimentError):
            CampaignSpec(topologies=())
        with pytest.raises(ExperimentError):
            CampaignSpec(topologies=("abilene",), schemes=())

    def test_bad_coverage_mode_rejected(self):
        with pytest.raises(ExperimentError):
            CampaignSpec(topologies=("abilene",), coverage="everything")


class TestGridExpansion:
    def test_cell_count_is_full_product(self):
        spec = small_spec()
        cells = spec.cells()
        assert len(cells) == spec.cell_count() == 2 * 2 * 1 * 2
        assert [cell.index for cell in cells] == list(range(len(cells)))

    def test_cell_ids_unique(self):
        cells = small_spec().cells()
        assert len({cell.cell_id for cell in cells}) == len(cells)

    def test_scenario_seed_shared_across_schemes(self):
        """Every scheme must face the identical failure scenarios."""
        cells = small_spec().cells()
        by_coord = {}
        for cell in cells:
            by_coord.setdefault((cell.topology, cell.scenario.key()), set()).add(cell.seed)
        for seeds in by_coord.values():
            assert len(seeds) == 1

    def test_scenario_seeds_differ_across_topologies(self):
        cells = small_spec().cells()
        seeds = {cell.seed for cell in cells}
        assert len(seeds) == 4  # 2 topologies x 2 scenario specs

    def test_adding_a_scheme_does_not_move_existing_cells(self):
        """Growing the scheme axis must not invalidate prior cell results."""
        base = {cell.cell_id for cell in small_spec().cells()}
        grown = {
            cell.cell_id
            for cell in small_spec(schemes=("reconvergence", "pr", "fcp")).cells()
        }
        assert base <= grown

    def test_cells_are_deterministic(self):
        assert small_spec().cells() == small_spec().cells()

    def test_duplicate_axis_entries_collapse(self):
        """Duplicate grid entries would double-count results and collide
        cell ids, so the axes behave as ordered sets."""
        spec = small_spec(
            topologies=("abilene", "abilene", "fig1-example"),
            schemes=("pr", "pr"),
        )
        assert spec.topologies == ("abilene", "fig1-example")
        assert spec.schemes == ("pr",)
        cells = spec.cells()
        assert len({cell.cell_id for cell in cells}) == len(cells)


class TestModelScenarioSpecs:
    def test_for_model_canonicalises_params(self):
        explicit = ScenarioSpec.for_model("srlg", group_size=3)
        implicit = ScenarioSpec.for_model("srlg")
        assert explicit == implicit
        assert dict(implicit.params) == {"group_size": 3}

    def test_param_spelling_order_irrelevant(self):
        first = ScenarioSpec.for_model("churn", process="weibull", shape=2.0)
        second = ScenarioSpec(
            kind="model", model="churn",
            params=(("shape", 2.0), ("process", "weibull")),
        )
        assert first == second
        assert first.key() == second.key()

    def test_unknown_model_rejected(self):
        with pytest.raises(ExperimentError, match="unknown scenario model"):
            ScenarioSpec.for_model("meteor-strike")

    def test_unknown_param_rejected(self):
        with pytest.raises(ExperimentError, match="unknown parameters"):
            ScenarioSpec.for_model("srlg", blast_radius=2)

    def test_model_name_required(self):
        with pytest.raises(ExperimentError, match="model name"):
            ScenarioSpec(kind="model")

    def test_model_fields_rejected_on_legacy_kinds(self):
        with pytest.raises(ExperimentError, match='use kind="model"'):
            ScenarioSpec(kind="single-link", model="srlg")

    def test_label_and_family(self):
        spec = ScenarioSpec.for_model("regional", radius=2)
        assert spec.label == "regional"
        assert spec.family == "regional"

    def test_multi_link_families_stay_per_severity(self):
        """2-link and 4-link regimes must not pool into one family row."""
        assert ScenarioSpec("multi-link", failures=4).family == "4-link"
        assert ScenarioSpec("multi-link", failures=2).family == "2-link"
        assert ScenarioSpec("single-link").family == "single-link"
        assert ScenarioSpec(kind="node").family == "node"

    def test_failures_rejected_on_model_kind(self):
        """failures= would feed cell ids without the model reading it,
        splitting identical regimes into distinct cells."""
        with pytest.raises(ExperimentError, match="model params"):
            ScenarioSpec(kind="model", model="srlg", failures=3)

    def test_legacy_keys_unchanged_by_model_fields(self):
        """Adding the model axis must not move existing cell ids."""
        assert ScenarioSpec("multi-link", failures=4, samples=9).key() == (
            "multi-link", 4, 9, True,
        )

    def test_round_trip_every_registered_model(self):
        for name in available_scenario_models():
            spec = ScenarioSpec.for_model(name, samples=7)
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_legacy_to_dict_has_no_model_keys(self):
        payload = ScenarioSpec("single-link").to_dict()
        assert "model" not in payload and "params" not in payload

    def test_from_dict_rejects_unknown_keys(self):
        """Stale campaign JSON must fail loudly, not be silently reinterpreted."""
        with pytest.raises(ExperimentError, match="unknown scenario spec keys"):
            ScenarioSpec.from_dict({"kind": "single-link", "flavour": "spicy"})

    def test_from_dict_rejects_non_mapping_params(self):
        with pytest.raises(ExperimentError, match="must be a mapping"):
            ScenarioSpec.from_dict(
                {"kind": "model", "model": "srlg", "params": ["group_size", 3]}
            )

    def test_model_specs_dedupe_in_campaign_axes(self):
        spec = CampaignSpec(
            topologies=("abilene",),
            scenarios=(
                ScenarioSpec.for_model("srlg"),
                ScenarioSpec.for_model("srlg", group_size=3),
                ScenarioSpec.for_model("srlg", group_size=4),
            ),
        )
        assert len(spec.scenarios) == 2

    def test_scenario_model_campaign_spec(self):
        spec = scenario_model_campaign_spec(
            ["abilene", "geant"], ["srlg", "regional", "churn"], samples=6
        )
        assert [s.model for s in spec.scenarios] == ["srlg", "regional", "churn"]
        assert all(s.samples == 6 for s in spec.scenarios)
        assert spec.cell_count() == 2 * 3 * 1 * 3


class TestPersistence:
    def test_json_round_trip(self, tmp_path):
        spec = small_spec(seed=42, coverage="full", embedding_method="greedy")
        path = spec.save(tmp_path / "spec.json")
        loaded = CampaignSpec.load(path)
        assert loaded == spec
        assert loaded.spec_hash() == spec.spec_hash()

    def test_spec_hash_sensitive_to_grid(self):
        assert small_spec().spec_hash() != small_spec(seed=2).spec_hash()
        assert (
            small_spec().spec_hash()
            != small_spec(schemes=("reconvergence",)).spec_hash()
        )

    def test_from_dict_defaults(self):
        spec = CampaignSpec.from_dict({"topologies": ["abilene"]})
        assert spec.schemes == ("reconvergence", "fcp", "pr")
        assert spec.scenarios == (ScenarioSpec(),)


class TestCannedSpecs:
    def test_figure2_single_panel(self):
        spec = figure2_campaign_spec("2a")
        assert spec.topologies == ("abilene",)
        assert spec.scenarios[0].kind == "single-link"

    def test_figure2_multi_panel(self):
        spec = figure2_campaign_spec("2f", samples=20)
        assert spec.topologies == ("geant",)
        scenario = spec.scenarios[0]
        assert scenario.kind == "multi-link"
        assert scenario.failures == 16
        assert scenario.samples == 20

    def test_figure2_unknown_panel(self):
        with pytest.raises(ExperimentError):
            figure2_campaign_spec("9z")

    def test_node_failure_spec(self):
        spec = node_failure_campaign_spec(["abilene", "geant"])
        assert spec.scenarios == (ScenarioSpec(kind="node"),)

    def test_available_schemes_cover_paper_trio(self):
        names = available_schemes()
        for key in ("reconvergence", "fcp", "pr"):
            assert key in names


class TestChunkCells:
    def _cells(self, topologies, schemes):
        return CampaignSpec(topologies=topologies, schemes=schemes).cells()

    def test_chunks_partition_cells_in_order(self):
        cells = self._cells(("abilene", "geant", "teleglobe"), ("reconvergence", "fcp"))
        chunks = chunk_cells(cells, workers=2)
        flattened = [cell for chunk in chunks for cell in chunk]
        assert flattened == cells  # a partition, order preserved
        assert all(chunks)  # no empty chunks

    def test_chunks_prefer_topology_boundaries(self):
        cells = self._cells(
            ("abilene", "geant"), ("reconvergence", "fcp", "pr")
        )
        chunks = chunk_cells(cells, workers=2)
        # 6 cells over 2 workers: one chunk per topology, so a worker builds
        # each topology's engine exactly once.
        assert [sorted({c.topology for c in chunk}) for chunk in chunks] == [
            ["abilene"],
            ["geant"],
        ]

    def test_oversized_topology_group_is_split(self):
        cells = self._cells(
            ("abilene",),
            ("reconvergence", "fcp", "pr", "pr-1bit", "lfa", "noprotection"),
        )
        chunks = chunk_cells(cells, workers=3, chunks_per_worker=2)
        assert len(chunks) > 1
        assert [cell for chunk in chunks for cell in chunk] == cells

    def test_empty_and_single_cell(self):
        assert chunk_cells([], workers=4) == []
        [cell] = self._cells(("abilene",), ("reconvergence",))
        assert chunk_cells([cell], workers=4) == [[cell]]
