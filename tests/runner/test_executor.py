"""Executor: determinism, parallel/serial parity, JSONL store, resume."""

import json

import pytest

from repro.errors import ExperimentError, FailureScenarioError
from repro.graph.spcache import _ENGINES, engine_for
from repro.runner.executor import (
    ResultStore,
    _TOPOLOGY_CACHE,
    _run_cell_chunk,
    _worker_init,
    build_scheme,
    generate_scenarios,
    load_topology,
    run_campaign,
    run_cell,
)
from repro.runner.spec import CampaignSpec, ScenarioSpec
from repro.topologies.example import example_fig1


def tiny_spec(**overrides):
    """The smallest useful campaign: 2 topologies x 2 schemes x 2 scenarios."""
    defaults = dict(
        topologies=("fig1-example", "abilene"),
        schemes=("reconvergence", "pr"),
        scenarios=(
            ScenarioSpec("single-link"),
            ScenarioSpec("multi-link", failures=2, samples=3),
        ),
        embedding_seed=0,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def deterministic_part(records):
    """Records without the timing/pid metadata (the comparable part)."""
    return [{k: v for k, v in r.items() if k != "meta"} for r in records]


class TestCellExecution:
    def test_run_cell_record_shape(self):
        [cell] = CampaignSpec(
            topologies=("fig1-example",), schemes=("pr",), embedding_seed=0
        ).cells()
        record = run_cell(cell)
        assert record["cell_id"] == cell.cell_id
        assert record["scheme_name"] == "Packet Re-cycling"
        payload = record["payload"]
        from repro.failures.scenarios import single_link_failures

        expected = len(single_link_failures(example_fig1(), only_non_disconnecting=True))
        assert payload["scenarios"] == expected
        assert payload["delivery_ratio"] == 1.0
        assert payload["coverage"]["attempts"] == payload["n_samples"]
        assert len(payload["samples"]) == payload["n_samples"]
        assert json.dumps(record)  # records must be JSON-serialisable

    def test_run_cell_is_deterministic(self):
        [cell] = CampaignSpec(
            topologies=("abilene",),
            schemes=("pr",),
            scenarios=(ScenarioSpec("multi-link", failures=3, samples=5),),
            embedding_seed=0,
        ).cells()
        first, second = run_cell(cell), run_cell(cell)
        assert deterministic_part([first]) == deterministic_part([second])

    def test_full_coverage_mode_counts_all_reachable_pairs(self):
        [affected_cell] = CampaignSpec(
            topologies=("fig1-example",), schemes=("reconvergence",)
        ).cells()
        [full_cell] = CampaignSpec(
            topologies=("fig1-example",), schemes=("reconvergence",), coverage="full"
        ).cells()
        affected = run_cell(affected_cell)["payload"]
        full = run_cell(full_cell)["payload"]
        assert full["coverage"]["attempts"] > affected["coverage"]["attempts"]
        # The stretch conditioning (affected pairs) is identical in both modes.
        assert full["samples"] == affected["samples"]

    def test_build_scheme_rejects_unknown_key(self):
        with pytest.raises(ExperimentError):
            build_scheme("quantum-routing", example_fig1())

    def test_generate_scenarios_node_kind(self):
        graph = example_fig1()
        [cell] = CampaignSpec(
            topologies=("fig1-example",),
            schemes=("reconvergence",),
            scenarios=(ScenarioSpec(kind="node"),),
        ).cells()
        scenarios = generate_scenarios(graph, cell)
        assert len(scenarios) == graph.number_of_nodes()


def model_spec(**overrides):
    """A campaign sweeping three scenario models on two topologies."""
    defaults = dict(
        topologies=("fig1-example", "abilene"),
        schemes=("reconvergence", "fcp"),
        scenarios=(
            ScenarioSpec.for_model("srlg", samples=4),
            ScenarioSpec.for_model("regional", samples=4),
            ScenarioSpec.for_model("maintenance", samples=4),
        ),
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestModelScenarioCells:
    def test_generate_scenarios_model_kind(self):
        graph = example_fig1()
        [cell] = CampaignSpec(
            topologies=("fig1-example",),
            schemes=("reconvergence",),
            scenarios=(ScenarioSpec.for_model("srlg", samples=10),),
        ).cells()
        scenarios = generate_scenarios(graph, cell)
        assert scenarios
        assert all(s.kind == "srlg" for s in scenarios)

    def test_model_record_carries_model_and_params(self):
        [cell] = CampaignSpec(
            topologies=("fig1-example",),
            schemes=("reconvergence",),
            scenarios=(ScenarioSpec.for_model("srlg", group_size=2),),
        ).cells()
        record = run_cell(cell)
        assert record["scenario"]["model"] == "srlg"
        assert record["scenario"]["params"] == {"group_size": 2}
        assert json.dumps(record)

    def test_model_sweep_parallel_equals_serial(self, tmp_path):
        spec = model_spec()
        serial = run_campaign(
            spec, workers=1, results=tmp_path / "serial.jsonl"
        )
        parallel = run_campaign(
            spec, workers=2, results=tmp_path / "parallel.jsonl"
        )
        assert deterministic_part(serial.records) == deterministic_part(parallel.records)
        serial_lines = ResultStore(tmp_path / "serial.jsonl").load()
        parallel_lines = ResultStore(tmp_path / "parallel.jsonl").load()
        assert deterministic_part(serial_lines) == deterministic_part(parallel_lines)

    def test_model_sweep_resumes_from_partial_store(self, tmp_path):
        spec = model_spec()
        path = tmp_path / "results.jsonl"
        full = run_campaign(spec, workers=1, results=path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:5]) + "\n")
        resumed = run_campaign(spec, workers=2, results=path, resume=True)
        assert resumed.skipped == 5
        assert resumed.executed == spec.cell_count() - 5
        assert deterministic_part(resumed.records) == deterministic_part(full.records)

    def test_params_change_the_cell_id(self):
        def only_cell(scenario):
            return CampaignSpec(
                topologies=("fig1-example",), schemes=("reconvergence",),
                scenarios=(scenario,),
            ).cells()[0]

        default = only_cell(ScenarioSpec.for_model("srlg"))
        tweaked = only_cell(ScenarioSpec.for_model("srlg", group_size=2))
        assert default.cell_id != tweaked.cell_id
        assert default.seed != tweaked.seed  # params feed the scenario seed


class TestDeterminism:
    def test_serial_runs_identical(self, tmp_path):
        spec = tiny_spec()
        first = run_campaign(spec, workers=1, cache_dir=tmp_path / "cache")
        second = run_campaign(spec, workers=1, cache_dir=tmp_path / "cache")
        assert deterministic_part(first.records) == deterministic_part(second.records)

    def test_parallel_equals_serial_including_jsonl_order(self, tmp_path):
        spec = tiny_spec()
        serial = run_campaign(
            spec,
            workers=1,
            cache_dir=tmp_path / "cache-serial",
            results=tmp_path / "serial.jsonl",
        )
        parallel = run_campaign(
            spec,
            workers=2,
            cache_dir=tmp_path / "cache-parallel",
            results=tmp_path / "parallel.jsonl",
        )
        assert deterministic_part(serial.records) == deterministic_part(parallel.records)
        # The JSONL files are line-for-line comparable (records are flushed
        # in cell order even when they complete out of order).
        serial_lines = ResultStore(tmp_path / "serial.jsonl").load()
        parallel_lines = ResultStore(tmp_path / "parallel.jsonl").load()
        assert deterministic_part(serial_lines) == deterministic_part(parallel_lines)

    def test_cold_equals_cached(self, tmp_path):
        spec = tiny_spec()
        cold = run_campaign(spec, workers=1, cache_dir=tmp_path / "cache")
        warm = run_campaign(spec, workers=1, cache_dir=tmp_path / "cache")
        assert cold.cache_stats()["misses"] > 0
        assert warm.cache_stats()["misses"] == 0
        assert warm.cache_stats()["hits"] > 0
        assert deterministic_part(cold.records) == deterministic_part(warm.records)


class TestChunkedDispatch:
    def test_run_cell_chunk_matches_individual_cells(self):
        cells = CampaignSpec(
            topologies=("fig1-example",), schemes=("reconvergence", "fcp")
        ).cells()
        outcomes = _run_cell_chunk(cells)
        assert [status for status, _payload, _info in outcomes] == ["ok", "ok"]
        chunk_records = [payload for _status, payload, _info in outcomes]
        individual = [run_cell(cell) for cell in cells]
        assert deterministic_part(chunk_records) == deterministic_part(individual)

    def test_failing_cell_keeps_siblings_records(self, tmp_path):
        """One failing cell must not discard completed records of its chunk.

        fig1-example has fewer than 40 links, so the multi-link cells raise
        (FailureScenarioError) inside their worker chunk; the single-link
        cells that completed first must still reach the store so a resumed
        run skips them.
        """
        spec = CampaignSpec(
            topologies=("fig1-example",),
            schemes=("reconvergence", "fcp"),
            scenarios=(
                ScenarioSpec("single-link"),
                ScenarioSpec("multi-link", failures=40, samples=2),
            ),
        )
        path = tmp_path / "results.jsonl"
        with pytest.raises(FailureScenarioError):
            run_campaign(spec, workers=2, results=path)
        completed = ResultStore(path).completed_cell_ids()
        single_link_ids = {
            cell.cell_id
            for cell in spec.cells()
            if cell.scenario.kind == "single-link"
        }
        assert completed == single_link_ids

    def test_failing_cell_before_completed_ones_does_not_stall_flush(
        self, tmp_path
    ):
        """A failed cell ordered before completed cells must not block them.

        With the failing multi-link scenario listed first, every completed
        cell sorts *after* the failure — the in-order flush has to skip the
        failed position instead of waiting forever for its record.
        """
        spec = CampaignSpec(
            topologies=("fig1-example",),
            schemes=("reconvergence", "fcp"),
            scenarios=(
                ScenarioSpec("multi-link", failures=40, samples=2),
                ScenarioSpec("single-link"),
            ),
        )
        path = tmp_path / "results.jsonl"
        with pytest.raises(FailureScenarioError):
            run_campaign(spec, workers=2, results=path)
        completed = ResultStore(path).completed_cell_ids()
        single_link_ids = {
            cell.cell_id
            for cell in spec.cells()
            if cell.scenario.kind == "single-link"
        }
        assert completed == single_link_ids
        # And the resumed run only redoes the failed cells.
        with pytest.raises(FailureScenarioError):
            run_campaign(spec, workers=2, results=path, resume=True)
        assert ResultStore(path).completed_cell_ids() == single_link_ids

    def test_serial_failure_semantics_match_parallel(self, tmp_path):
        """Serial and parallel runs must leave identical resume state."""
        spec = CampaignSpec(
            topologies=("fig1-example",),
            schemes=("reconvergence", "fcp"),
            scenarios=(
                ScenarioSpec("multi-link", failures=40, samples=2),
                ScenarioSpec("single-link"),
            ),
        )
        serial = tmp_path / "serial.jsonl"
        with pytest.raises(FailureScenarioError):
            run_campaign(spec, workers=1, results=serial)
        parallel = tmp_path / "parallel.jsonl"
        with pytest.raises(FailureScenarioError):
            run_campaign(spec, workers=2, results=parallel)
        assert (
            ResultStore(serial).completed_cell_ids()
            == ResultStore(parallel).completed_cell_ids()
        )
        assert deterministic_part(ResultStore(serial).load()) == deterministic_part(
            ResultStore(parallel).load()
        )

    def test_worker_init_drops_stale_engines_keeps_active(self):
        stale = example_fig1()
        engine_for(stale)  # a leftover engine from a previous topology set
        active = load_topology("abilene")
        active_engine = engine_for(active)
        _worker_init(("abilene",))
        assert engine_for(active) is active_engine  # warm engine survived
        signatures = set(_ENGINES)
        assert all(key == active_engine.compiled.signature for key in signatures)
        # The topology memo is pruned to the active set as well.
        assert all(graph is active for graph in _TOPOLOGY_CACHE.values())

    def test_worker_init_without_topologies_clears_everything(self):
        engine_for(example_fig1())
        load_topology("abilene")
        _worker_init()
        assert not _ENGINES
        assert not _TOPOLOGY_CACHE

    def test_worker_init_survives_broken_topology_spec(self):
        _worker_init(("no-such-topology-file.graphml", "abilene"))
        assert _TOPOLOGY_CACHE  # abilene stayed loadable


class TestResultStore:
    def test_streams_one_json_line_per_cell(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "results.jsonl"
        result = run_campaign(spec, workers=1, results=path)
        lines = [line for line in path.read_text().splitlines() if line.strip()]
        assert len(lines) == result.executed == spec.cell_count()
        for line in lines:
            json.loads(line)

    def test_rerun_without_resume_truncates_the_store(self, tmp_path):
        """Without resume the JSONL represents this run only; appending to
        the previous run's lines would double-count every cell."""
        spec = tiny_spec()
        path = tmp_path / "results.jsonl"
        run_campaign(spec, workers=1, results=path)
        run_campaign(spec, workers=1, results=path)
        lines = [line for line in path.read_text().splitlines() if line.strip()]
        assert len(lines) == spec.cell_count()

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.append({"cell_id": "aaaa", "payload": {}})
        with path.open("a") as stream:
            stream.write('{"cell_id": "bbbb", "payl')  # killed mid-write
        assert store.completed_cell_ids() == {"aaaa"}
        assert store.torn_records_skipped == 1

    def test_appended_lines_carry_a_checksum_load_strips_it(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        store.append({"cell_id": "aaaa", "payload": {"x": 1}})
        raw = store.path.read_text()
        assert "_checksum" in raw
        assert store.load() == [{"cell_id": "aaaa", "payload": {"x": 1}}]

    def test_checksum_mismatch_on_final_line_is_dropped(self, tmp_path):
        """Bit rot in the tail is indistinguishable from a torn write."""
        store = ResultStore(tmp_path / "results.jsonl")
        store.append({"cell_id": "aaaa", "payload": {}})
        store.append({"cell_id": "bbbb", "payload": {"v": 1}})
        lines = store.path.read_text().splitlines()
        lines[-1] = lines[-1].replace('"v": 1', '"v": 2')  # checksum now stale
        store.path.write_text("\n".join(lines) + "\n")
        assert store.completed_cell_ids() == {"aaaa"}
        assert store.torn_records_skipped == 1

    def test_mid_file_corruption_reports_line_offset_and_cell(self, tmp_path):
        """Corruption before the tail is data loss, not a crash artefact —
        load() must refuse, and say exactly where and which cell."""
        store = ResultStore(tmp_path / "results.jsonl")
        for cell_id in ("aaaa", "bbbb", "cccc"):
            store.append({"cell_id": cell_id, "payload": {"v": 1}})
        lines = store.path.read_text().splitlines()
        lines[1] = lines[1].replace('"v": 1', '"v": 2')  # checksum now stale
        store.path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ExperimentError) as excinfo:
            store.load()
        message = str(excinfo.value)
        assert "line 2" in message
        assert "byte offset" in message
        assert "bbbb" in message

    def test_legacy_lines_without_checksum_still_load(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text('{"cell_id": "aaaa", "payload": {}}\n')
        store = ResultStore(path)
        assert store.load() == [{"cell_id": "aaaa", "payload": {}}]
        assert store.torn_records_skipped == 0


class TestResume:
    def test_completed_campaign_resumes_to_no_work(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "results.jsonl"
        first = run_campaign(spec, workers=1, results=path)
        assert first.executed == spec.cell_count()
        resumed = run_campaign(spec, workers=1, results=path, resume=True)
        assert resumed.executed == 0
        assert resumed.skipped == spec.cell_count()
        assert deterministic_part(resumed.records) == deterministic_part(first.records)

    def test_partial_campaign_resumes_remaining_cells(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "results.jsonl"
        full = run_campaign(spec, workers=1, results=path)
        # Keep only the first three records, as if the run had been killed.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:3]) + "\n")
        resumed = run_campaign(spec, workers=1, results=path, resume=True)
        assert resumed.skipped == 3
        assert resumed.executed == spec.cell_count() - 3
        assert deterministic_part(resumed.records) == deterministic_part(full.records)

    def test_resume_over_torn_tail_reruns_that_cell_and_counts_it(self, tmp_path):
        """A record lost to a torn write is re-executed, not silently missing."""
        spec = tiny_spec()
        path = tmp_path / "results.jsonl"
        full = run_campaign(spec, workers=1, results=path)
        lines = path.read_text().splitlines()
        torn = "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        path.write_text(torn)
        resumed = run_campaign(spec, workers=1, results=path, resume=True)
        assert resumed.skipped == spec.cell_count() - 1
        assert resumed.executed == 1
        assert resumed.fault_counters["faults/torn_records_skipped"] == 1
        assert deterministic_part(resumed.records) == deterministic_part(full.records)
        # The store is whole again: a second resume finds nothing to do.
        assert ResultStore(path).completed_cell_ids() == {
            cell.cell_id for cell in spec.cells()
        }

    def test_spec_change_invalidates_previous_records(self, tmp_path):
        path = tmp_path / "results.jsonl"
        run_campaign(tiny_spec(), workers=1, results=path)
        changed = tiny_spec(seed=99)
        resumed = run_campaign(changed, workers=1, results=path, resume=True)
        assert resumed.skipped == 0
        assert resumed.executed == changed.cell_count()

    def test_resume_requires_results_path(self):
        with pytest.raises(ExperimentError):
            run_campaign(tiny_spec(), resume=True)

    def test_resumed_run_reports_no_cache_or_offline_work(self, tmp_path):
        """cache_stats/offline_seconds cover this invocation's cells only,
        not the work recorded by the run being resumed."""
        spec = tiny_spec()
        path = tmp_path / "results.jsonl"
        first = run_campaign(
            spec, workers=1, cache_dir=tmp_path / "cache", results=path
        )
        assert first.cache_stats()["misses"] > 0
        assert first.offline_seconds() > 0
        resumed = run_campaign(
            spec, workers=1, cache_dir=tmp_path / "cache", results=path, resume=True
        )
        assert resumed.executed == 0
        assert resumed.cache_stats() == {"hits": 0, "misses": 0}
        assert resumed.offline_seconds() == 0.0
