"""Corpus-aware campaign execution: sharding, summaries and determinism."""

import json

import pytest

from repro.errors import TopologyError
from repro.runner import (
    CampaignSpec,
    ScenarioSpec,
    corpus_campaign_spec,
    load_topology,
    run_campaign,
    topology_summary_rows,
)
from repro.topologies.corpus import topology_set


def small_corpus_spec() -> CampaignSpec:
    return CampaignSpec(
        topologies=("nsfnet1991", "fat-tree:k=4"),
        schemes=("reconvergence", "fcp"),
        scenarios=(ScenarioSpec(kind="single-link"),),
    )


class TestLoadTopology:
    def test_corpus_spec_resolves(self):
        graph = load_topology("waxman:size=20,seed=5")
        assert graph.name == "waxman:alpha=0.6,beta=0.4,seed=5,size=20"

    def test_zoo_snapshot_resolves(self):
        assert load_topology("nsfnet1991").number_of_nodes() == 14

    def test_spellings_share_the_cached_object(self):
        one = load_topology("waxman:size=20,seed=5")
        two = load_topology("WAXMAN:seed=5,size=20")
        assert one is two

    def test_graphml_file_path_resolves(self, tmp_path):
        path = tmp_path / "tri.graphml"
        path.write_text(
            '<graphml xmlns="http://graphml.graphdrawing.org/xmlns">'
            '<graph edgedefault="undirected">'
            '<node id="a"/><node id="b"/><node id="c"/>'
            '<edge source="a" target="b"/><edge source="b" target="c"/>'
            '<edge source="c" target="a"/>'
            "</graph></graphml>"
        )
        assert load_topology(str(path)).number_of_edges() == 3

    def test_bad_params_of_known_family_raise(self):
        with pytest.raises(TopologyError):
            load_topology("ring:blast=9")


class TestCorpusSharding:
    def test_parallel_equals_serial_across_the_corpus(self, tmp_path):
        spec = small_corpus_spec()
        serial = run_campaign(spec, workers=1)
        parallel = run_campaign(spec, workers=2)

        def payloads(result):
            return [
                {k: v for k, v in record.items() if k != "meta"}
                for record in result.records
            ]

        assert payloads(serial) == payloads(parallel)

    def test_jsonl_rerun_payloads_identical(self, tmp_path):
        spec = small_corpus_spec()
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        run_campaign(spec, workers=1, results=first)
        run_campaign(spec, workers=2, results=second)

        def lines(path):
            rows = []
            for line in path.read_text().splitlines():
                record = json.loads(line)
                record.pop("meta")
                # The line checksum covers meta (per-run timings), so it
                # goes too once meta is stripped.
                record.pop("_checksum", None)
                rows.append(json.dumps(record, sort_keys=True))
            return rows

        assert lines(first) == lines(second)

    def test_topology_summary_one_row_per_topology_scheme(self):
        spec = small_corpus_spec()
        result = run_campaign(spec, workers=1)
        rows = result.topology_summary()
        assert len(rows) == len(spec.topologies) * len(spec.schemes)
        assert [row[0] for row in rows[:2]] == ["nsfnet1991", "nsfnet1991"]
        # delivery / mean stretch / max / coverage columns render as strings.
        assert all(len(row) == 7 for row in rows)

    def test_topology_summary_rows_from_reloaded_store(self, tmp_path):
        spec = small_corpus_spec()
        path = tmp_path / "corpus.jsonl"
        result = run_campaign(spec, workers=1, results=path)
        reloaded = [json.loads(line) for line in path.read_text().splitlines()]
        assert topology_summary_rows(reloaded) == result.topology_summary()


class TestCorpusCampaignSpec:
    def test_spans_the_full_corpus(self):
        spec = corpus_campaign_spec("all")
        assert len(spec.topologies) >= 12
        assert set(spec.topologies) == set(topology_set("all"))

    def test_zoo_slice(self):
        spec = corpus_campaign_spec("zoo", schemes=("reconvergence",))
        assert set(spec.topologies) == set(topology_set("zoo"))
        assert spec.cell_count() == len(spec.topologies)
