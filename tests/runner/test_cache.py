"""Artifact cache: content addressing, hit/miss accounting, invalidation."""

import json

from repro.embedding.builder import embed
from repro.graph.multigraph import Graph
from repro.runner.cache import ArtifactCache, cached_embedding, topology_fingerprint
from repro.topologies.abilene import abilene


def square() -> Graph:
    return Graph.from_edge_list(
        [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")], name="square"
    )


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        assert topology_fingerprint(square()) == topology_fingerprint(square())

    def test_name_does_not_matter(self):
        renamed = square()
        renamed.name = "not-a-square"
        assert topology_fingerprint(renamed) == topology_fingerprint(square())

    def test_structure_matters(self):
        grown = square()
        grown.add_edge("a", "c")
        assert topology_fingerprint(grown) != topology_fingerprint(square())

    def test_weights_matter(self):
        reweighted = Graph.from_edge_list(
            [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")], name="square"
        )
        reweighted.edge(0).weight = 7.0
        assert topology_fingerprint(reweighted) != topology_fingerprint(square())


class TestHitMiss:
    def test_miss_then_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        graph = abilene()
        first = cache.get_or_build(graph, seed=0)
        assert cache.stats() == {"hits": 0, "misses": 1, "stores": 1, "heals": 0}
        second = cache.get_or_build(graph, seed=0)
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1, "heals": 0}
        assert len(cache) == 1
        # The cached artifact reproduces the rotation system exactly.
        for node in graph.nodes():
            assert [
                (d.edge_id, d.head) for d in first.rotation.rotation_at(node)
            ] == [(d.edge_id, d.head) for d in second.rotation.rotation_at(node)]

    def test_hit_from_a_fresh_cache_instance(self, tmp_path):
        graph = abilene()
        ArtifactCache(tmp_path).get_or_build(graph, seed=0)
        cache = ArtifactCache(tmp_path)  # simulates another worker process
        cache.get_or_build(graph, seed=0)
        assert cache.stats() == {"hits": 1, "misses": 0, "stores": 0, "heals": 0}

    def test_parameters_are_part_of_the_key(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        graph = abilene()
        cache.get_or_build(graph, method="auto", seed=0)
        cache.get_or_build(graph, method="greedy", seed=0)
        cache.get_or_build(graph, method="auto", seed=1)
        assert cache.misses == 3
        assert len(cache) == 3


class TestInvalidation:
    def test_topology_change_invalidates(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        graph = square()
        cache.get_or_build(graph, seed=0)
        changed = square()
        changed.add_edge("a", "c")
        cache.get_or_build(changed, seed=0)
        assert cache.stats()["misses"] == 2, "changed topology must not hit"

    def test_corrupt_entry_treated_as_miss_and_rebuilt(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        graph = square()
        cache.get_or_build(graph, seed=0)
        [entry] = cache.entries()
        entry.write_text("{ not json")
        rebuilt = cache.get_or_build(graph, seed=0)
        assert cache.stats()["misses"] == 2
        assert rebuilt.number_of_faces == embed(graph, seed=0).number_of_faces
        # The rebuilt entry is valid JSON again.
        json.loads(entry.read_text())

    def test_key_mismatch_treated_as_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        graph = square()
        cache.get_or_build(graph, seed=0)
        [entry] = cache.entries()
        payload = json.loads(entry.read_text())
        payload["key"] = "0" * 64
        entry.write_text(json.dumps(payload))
        assert cache.load_embedding(graph, seed=0) is None

    def test_content_crc_mismatch_heals_and_rebuilds(self, tmp_path):
        """Silent bit rot inside a structurally-valid entry is caught by the
        content hash: the entry is unlinked (healed) and rebuilt as a miss."""
        cache = ArtifactCache(tmp_path)
        graph = square()
        cache.get_or_build(graph, seed=0)
        [entry] = cache.entries()
        payload = json.loads(entry.read_text())
        payload["embedding"]["name"] = "tampered"
        entry.write_text(json.dumps(payload))  # valid JSON, wrong content
        rebuilt = cache.get_or_build(graph, seed=0)
        assert cache.stats() == {"hits": 0, "misses": 2, "stores": 2, "heals": 1}
        assert rebuilt.number_of_faces == embed(graph, seed=0).number_of_faces
        # The healed entry verifies again on the next read.
        fresh = ArtifactCache(tmp_path)
        assert fresh.load_embedding(graph, seed=0) is not None
        assert fresh.stats()["heals"] == 0


class TestMaintenance:
    def test_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.get_or_build(square(), seed=0)
        cache.get_or_build(abilene(), seed=0)
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_cached_embedding_without_cache_computes(self):
        embedding = cached_embedding(square(), cache=None, seed=0)
        assert embedding.number_of_faces == embed(square(), seed=0).number_of_faces
