"""Aggregation: merging cell records back into the existing metrics shapes."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.stretch import default_schemes, run_stretch_experiment
from repro.failures.scenarios import single_link_failures
from repro.runner.aggregate import (
    coverage_reports,
    families_in,
    family_summary_rows,
    merged_ccdf,
    overhead_rows,
    scenario_family,
    stretch_result_from_records,
    summary_rows,
)
from repro.runner.executor import run_campaign
from repro.runner.spec import CampaignSpec, ScenarioSpec
from repro.topologies.example import example_fig1


@pytest.fixture(scope="module")
def campaign():
    spec = CampaignSpec(
        topologies=("fig1-example",),
        schemes=("reconvergence", "fcp", "pr"),
        scenarios=(ScenarioSpec("single-link"),),
        embedding_seed=0,
    )
    return run_campaign(spec, workers=1)


class TestStretchResultEquivalence:
    """The runner path must reproduce the in-process experiment exactly."""

    def test_matches_run_stretch_experiment(self, campaign):
        graph = example_fig1()
        direct = run_stretch_experiment(
            graph,
            single_link_failures(graph, only_non_disconnecting=True),
            default_schemes(graph, embedding_seed=0),
        )
        rebuilt = stretch_result_from_records(campaign.records)
        assert rebuilt.scenarios == direct.scenarios
        assert rebuilt.measured_pairs == direct.measured_pairs
        assert rebuilt.ccdf == direct.ccdf
        assert rebuilt.summary == direct.summary
        assert rebuilt.delivery_ratio == direct.delivery_ratio
        for name in direct.samples:
            assert len(rebuilt.samples[name]) == len(direct.samples[name])

    def test_scheme_presentation_order_preserved(self, campaign):
        rebuilt = stretch_result_from_records(campaign.records)
        assert rebuilt.scheme_names() == [
            "Re-convergence",
            "Failure-Carrying Packets",
            "Packet Re-cycling",
        ]

    def test_topology_required_when_ambiguous(self, campaign):
        records = campaign.records + [
            dict(record, topology="other") for record in campaign.records
        ]
        with pytest.raises(ExperimentError):
            stretch_result_from_records(records)

    def test_no_records_rejected(self):
        with pytest.raises(ExperimentError):
            stretch_result_from_records([], topology="abilene")

    def test_requires_recorded_samples(self):
        spec = CampaignSpec(
            topologies=("fig1-example",),
            schemes=("reconvergence",),
            record_samples=False,
        )
        result = run_campaign(spec, workers=1)
        with pytest.raises(ExperimentError):
            stretch_result_from_records(result.records)


class TestMergedCcdf:
    def test_single_cell_curve_passthrough(self, campaign):
        curves = merged_ccdf(campaign.records)
        rebuilt = stretch_result_from_records(campaign.records)
        for name, curve in curves.items():
            assert curve == rebuilt.ccdf[name]

    def test_count_weighted_pooling(self):
        def fake(scheme_name, n, probability):
            return {
                "topology": "t",
                "scheme": "pr",
                "scheme_name": scheme_name,
                "scenario": {"kind": "single-link"},
                "payload": {"n_stretch": n, "ccdf": [[2.0, probability]]},
            }

        # 10 values with P=1.0 pooled with 30 values with P=0.0 -> P=0.25.
        curves = merged_ccdf([fake("PR", 10, 1.0), fake("PR", 30, 0.0)])
        assert curves["PR"] == [(2.0, 0.25)]

    def test_zero_delivery_scheme_keeps_an_all_zero_curve(self):
        """A scheme that delivered nothing must appear in the figure, not
        silently vanish from the curve set."""
        spec = CampaignSpec(
            topologies=("fig1-example",),
            schemes=("noprotection", "pr"),
            embedding_seed=0,
        )
        curves = merged_ccdf(run_campaign(spec, workers=1).records)
        assert set(curves) == {"No protection", "Packet Re-cycling"}
        assert all(probability == 0.0 for _x, probability in curves["No protection"])

    def test_multi_discriminator_cells_are_not_pooled(self):
        """Sweeping the discriminator axis must stay visible in the output."""
        spec = CampaignSpec(
            topologies=("fig1-example",),
            schemes=("reconvergence", "pr"),
            discriminators=("hop-count", "weighted-cost"),
            embedding_seed=0,
        )
        result = run_campaign(spec, workers=1)
        curves = merged_ccdf(result.records)
        assert set(curves) == {
            "Re-convergence [hop-count]",
            "Re-convergence [weighted-cost]",
            "Packet Re-cycling [hop-count]",
            "Packet Re-cycling [weighted-cost]",
        }
        reports = coverage_reports(result.records)
        hop = reports[("fig1-example", "Re-convergence [hop-count]")]
        weighted = reports[("fig1-example", "Re-convergence [weighted-cost]")]
        # Baselines ignore the discriminator: per-label reports stay equal
        # (and are not silently summed into one double-counted report).
        assert hop.attempts == weighted.attempts

    def test_empty_cells_do_not_dilute(self):
        def fake(n, probability):
            return {
                "topology": "t",
                "scheme": "pr",
                "scheme_name": "PR",
                "scenario": {"kind": "single-link"},
                "payload": {"n_stretch": n, "ccdf": [[2.0, probability]] if n else []},
            }

        curves = merged_ccdf([fake(5, 0.8), fake(0, 0.0)])
        assert curves["PR"] == [(2.0, 0.8)]


class TestCoverageAndOverhead:
    def test_coverage_reports_sum_attempts(self, campaign):
        reports = coverage_reports(campaign.records)
        report = reports[("fig1-example", "Packet Re-cycling")]
        assert report.full_coverage
        assert report.attempts > 0

    def test_overhead_rows_one_per_scheme(self, campaign):
        tables = overhead_rows(campaign.records)
        rows = tables["fig1-example"]
        assert [row.scheme for row in rows] == [
            "Re-convergence",
            "Failure-Carrying Packets",
            "Packet Re-cycling",
        ]
        pr = rows[-1]
        assert pr.header_bits >= 2  # 1 PR bit + at least 1 DD bit
        assert pr.online_computation == 0

    def test_summary_rows_shape(self, campaign):
        rows = summary_rows(campaign.records, "fig1-example")
        assert len(rows) == 3
        for row in rows:
            assert len(row) == 5
            assert row[1] == "1.000"  # every scheme delivers on fig1-example


class TestFamilyAggregation:
    @pytest.fixture(scope="class")
    def mixed_campaign(self):
        """Built-in kinds and scenario models side by side in one campaign."""
        spec = CampaignSpec(
            topologies=("fig1-example",),
            schemes=("reconvergence", "fcp"),
            scenarios=(
                ScenarioSpec("single-link"),
                ScenarioSpec.for_model("srlg", samples=4),
                ScenarioSpec.for_model("regional", samples=4),
            ),
        )
        return run_campaign(spec, workers=1)

    def test_scenario_family_of_records(self, mixed_campaign):
        families = {scenario_family(r) for r in mixed_campaign.records}
        assert families == {"single-link", "srlg", "regional"}

    def test_legacy_records_derive_per_severity_families(self):
        """Records from pre-model stores (no scenario_family key) fall back
        to deriving the family, keeping multi-link severities separate."""
        legacy = {"scenario": {"kind": "multi-link", "failures": 4}}
        assert scenario_family(legacy) == "4-link"
        assert scenario_family({"scenario": {"kind": "node"}}) == "node"
        assert (
            scenario_family({"scenario": {"kind": "model", "model": "srlg"}})
            == "srlg"
        )

    def test_families_in_first_seen_order(self, mixed_campaign):
        assert families_in(mixed_campaign.records) == [
            "single-link", "srlg", "regional",
        ]

    def test_one_row_per_family_scheme_pair(self, mixed_campaign):
        rows = family_summary_rows(mixed_campaign.records)
        assert [(row[0], row[1]) for row in rows] == [
            ("single-link", "Re-convergence"),
            ("single-link", "Failure-Carrying Packets"),
            ("srlg", "Re-convergence"),
            ("srlg", "Failure-Carrying Packets"),
            ("regional", "Re-convergence"),
            ("regional", "Failure-Carrying Packets"),
        ]
        for row in rows:
            assert len(row) == 7
            assert int(row[2]) > 0  # scenario count

    def test_family_rows_pool_to_the_summary_totals(self, mixed_campaign):
        """Family rows are a partition: their scenario counts sum to the
        per-scheme total over all cells."""
        per_scheme_cells = [
            r["payload"]["scenarios"]
            for r in mixed_campaign.records
            if r["scheme"] == "reconvergence"
        ]
        family_rows = [
            row for row in family_summary_rows(mixed_campaign.records)
            if row[1] == "Re-convergence"
        ]
        assert sum(int(row[2]) for row in family_rows) == sum(per_scheme_cells)

    def test_campaign_result_exposes_family_summary(self, mixed_campaign):
        assert mixed_campaign.family_summary() == family_summary_rows(
            mixed_campaign.records
        )
