"""Aggregation: merging cell records back into the existing metrics shapes."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.stretch import default_schemes, run_stretch_experiment
from repro.failures.scenarios import single_link_failures
from repro.runner.aggregate import (
    coverage_reports,
    merged_ccdf,
    overhead_rows,
    stretch_result_from_records,
    summary_rows,
)
from repro.runner.executor import run_campaign
from repro.runner.spec import CampaignSpec, ScenarioSpec
from repro.topologies.example import example_fig1


@pytest.fixture(scope="module")
def campaign():
    spec = CampaignSpec(
        topologies=("fig1-example",),
        schemes=("reconvergence", "fcp", "pr"),
        scenarios=(ScenarioSpec("single-link"),),
        embedding_seed=0,
    )
    return run_campaign(spec, workers=1)


class TestStretchResultEquivalence:
    """The runner path must reproduce the in-process experiment exactly."""

    def test_matches_run_stretch_experiment(self, campaign):
        graph = example_fig1()
        direct = run_stretch_experiment(
            graph,
            single_link_failures(graph, only_non_disconnecting=True),
            default_schemes(graph, embedding_seed=0),
        )
        rebuilt = stretch_result_from_records(campaign.records)
        assert rebuilt.scenarios == direct.scenarios
        assert rebuilt.measured_pairs == direct.measured_pairs
        assert rebuilt.ccdf == direct.ccdf
        assert rebuilt.summary == direct.summary
        assert rebuilt.delivery_ratio == direct.delivery_ratio
        for name in direct.samples:
            assert len(rebuilt.samples[name]) == len(direct.samples[name])

    def test_scheme_presentation_order_preserved(self, campaign):
        rebuilt = stretch_result_from_records(campaign.records)
        assert rebuilt.scheme_names() == [
            "Re-convergence",
            "Failure-Carrying Packets",
            "Packet Re-cycling",
        ]

    def test_topology_required_when_ambiguous(self, campaign):
        records = campaign.records + [
            dict(record, topology="other") for record in campaign.records
        ]
        with pytest.raises(ExperimentError):
            stretch_result_from_records(records)

    def test_no_records_rejected(self):
        with pytest.raises(ExperimentError):
            stretch_result_from_records([], topology="abilene")

    def test_requires_recorded_samples(self):
        spec = CampaignSpec(
            topologies=("fig1-example",),
            schemes=("reconvergence",),
            record_samples=False,
        )
        result = run_campaign(spec, workers=1)
        with pytest.raises(ExperimentError):
            stretch_result_from_records(result.records)


class TestMergedCcdf:
    def test_single_cell_curve_passthrough(self, campaign):
        curves = merged_ccdf(campaign.records)
        rebuilt = stretch_result_from_records(campaign.records)
        for name, curve in curves.items():
            assert curve == rebuilt.ccdf[name]

    def test_count_weighted_pooling(self):
        def fake(scheme_name, n, probability):
            return {
                "topology": "t",
                "scheme": "pr",
                "scheme_name": scheme_name,
                "scenario": {"kind": "single-link"},
                "payload": {"n_stretch": n, "ccdf": [[2.0, probability]]},
            }

        # 10 values with P=1.0 pooled with 30 values with P=0.0 -> P=0.25.
        curves = merged_ccdf([fake("PR", 10, 1.0), fake("PR", 30, 0.0)])
        assert curves["PR"] == [(2.0, 0.25)]

    def test_zero_delivery_scheme_keeps_an_all_zero_curve(self):
        """A scheme that delivered nothing must appear in the figure, not
        silently vanish from the curve set."""
        spec = CampaignSpec(
            topologies=("fig1-example",),
            schemes=("noprotection", "pr"),
            embedding_seed=0,
        )
        curves = merged_ccdf(run_campaign(spec, workers=1).records)
        assert set(curves) == {"No protection", "Packet Re-cycling"}
        assert all(probability == 0.0 for _x, probability in curves["No protection"])

    def test_multi_discriminator_cells_are_not_pooled(self):
        """Sweeping the discriminator axis must stay visible in the output."""
        spec = CampaignSpec(
            topologies=("fig1-example",),
            schemes=("reconvergence", "pr"),
            discriminators=("hop-count", "weighted-cost"),
            embedding_seed=0,
        )
        result = run_campaign(spec, workers=1)
        curves = merged_ccdf(result.records)
        assert set(curves) == {
            "Re-convergence [hop-count]",
            "Re-convergence [weighted-cost]",
            "Packet Re-cycling [hop-count]",
            "Packet Re-cycling [weighted-cost]",
        }
        reports = coverage_reports(result.records)
        hop = reports[("fig1-example", "Re-convergence [hop-count]")]
        weighted = reports[("fig1-example", "Re-convergence [weighted-cost]")]
        # Baselines ignore the discriminator: per-label reports stay equal
        # (and are not silently summed into one double-counted report).
        assert hop.attempts == weighted.attempts

    def test_empty_cells_do_not_dilute(self):
        def fake(n, probability):
            return {
                "topology": "t",
                "scheme": "pr",
                "scheme_name": "PR",
                "scenario": {"kind": "single-link"},
                "payload": {"n_stretch": n, "ccdf": [[2.0, probability]] if n else []},
            }

        curves = merged_ccdf([fake(5, 0.8), fake(0, 0.0)])
        assert curves["PR"] == [(2.0, 0.8)]


class TestCoverageAndOverhead:
    def test_coverage_reports_sum_attempts(self, campaign):
        reports = coverage_reports(campaign.records)
        report = reports[("fig1-example", "Packet Re-cycling")]
        assert report.full_coverage
        assert report.attempts > 0

    def test_overhead_rows_one_per_scheme(self, campaign):
        tables = overhead_rows(campaign.records)
        rows = tables["fig1-example"]
        assert [row.scheme for row in rows] == [
            "Re-convergence",
            "Failure-Carrying Packets",
            "Packet Re-cycling",
        ]
        pr = rows[-1]
        assert pr.header_bits >= 2  # 1 PR bit + at least 1 DD bit
        assert pr.online_computation == 0

    def test_summary_rows_shape(self, campaign):
        rows = summary_rows(campaign.records, "fig1-example")
        assert len(rows) == 3
        for row in rows:
            assert len(row) == 5
            assert row[1] == "1.000"  # every scheme delivers on fig1-example
