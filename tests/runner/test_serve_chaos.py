"""Daemon chaos: SIGKILL the serve daemon mid-job, restart, drain, compare.

The service-layer extension of the chaos contract: a campaign submitted to
the daemon's job queue, killed without warning while running, then drained
by a restarted daemon must land byte-identical (modulo timing metadata) to
an uninterrupted in-process run.  Covers the whole crash story at once —
the journal row surviving the SIGKILL, the stale socket being detected and
unlinked (not a live peer), recovery re-queueing the orphaned job with
resume forced, and the store's resume path re-running only missing cells.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runner import faults
from repro.runner.executor import run_campaign
from repro.store.database import CampaignStore
from repro.store.query import parse_filter
from repro.store.serve import request

from tests.store.conftest import deterministic_part, pair_spec

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Crash the daemon in its job worker, after the claim marks the job
#: ``running`` but before any cell executes — once (the restarted daemon's
#: second attempt must run clean).
CRASH_DISPATCH = "site=job-dispatch,kind=crash,max_attempt=1"


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reload_from_env()
    yield
    faults.reload_from_env()


def start_daemon(socket_path, jobs_path, cache_dir, log_path, inject_env=None):
    """Start ``python -m repro serve`` as a real subprocess.

    Output goes to a file, not a pipe: the SIGKILLed daemon cannot flush,
    and the test must never block on a dead process's pipe ends.
    """
    command = [
        sys.executable, "-m", "repro", "serve",
        "--socket", str(socket_path),
        "--jobs", str(jobs_path),
        "--cache-dir", str(cache_dir),
    ]
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    env.pop(faults.ENV_VAR, None)
    if inject_env:
        env[faults.ENV_VAR] = inject_env
    log = open(log_path, "a")
    try:
        return subprocess.Popen(
            command, cwd=REPO_ROOT, env=env, stdout=log, stderr=log
        )
    finally:
        log.close()


def ask(socket_path, payload, timeout=60.0):
    """A request with startup retries (the daemon may still be binding)."""
    return request(socket_path, payload, timeout=timeout, retries=200)


class TestDaemonKillRestartDrain:
    def test_sigkill_mid_job_then_restart_drains_byte_identical(self, tmp_path):
        spec = pair_spec()
        cache_dir = tmp_path / "cache"
        socket_path = tmp_path / "serve.sock"
        jobs_path = tmp_path / "serve.jobs.sqlite"
        log_path = tmp_path / "daemon.log"
        chaos_store = tmp_path / "chaos.sqlite"

        clean = run_campaign(
            spec, workers=1, cache_dir=cache_dir, results=tmp_path / "clean.sqlite"
        )

        # Round 1: the fault plan SIGKILLs the daemon the moment its worker
        # claims the job — journal row committed, zero cells executed.
        daemon = start_daemon(
            socket_path, jobs_path, cache_dir, log_path, inject_env=CRASH_DISPATCH
        )
        try:
            submitted = ask(socket_path, {
                "op": "submit",
                "spec": spec.to_dict(),
                "results": str(chaos_store),
            })
            assert submitted["ok"], submitted
            job_id = submitted["job_id"]
            assert daemon.wait(timeout=60) == -signal.SIGKILL
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30)
        assert socket_path.exists(), "SIGKILL must leave the stale socket behind"

        # Round 2: a clean daemon on the same socket + journal.  Startup
        # must unlink the stale socket (its owner is dead), re-queue the
        # orphaned job with resume forced, and drain it to completion.
        daemon = start_daemon(socket_path, jobs_path, cache_dir, log_path)
        try:
            drained = ask(socket_path, {"op": "drain", "timeout_s": 120}, timeout=150)
            assert drained["ok"] and drained["drained"], drained
            job = ask(socket_path, {"op": "job", "job_id": job_id})["job"]
            assert job["state"] == "done"
            assert job["attempts"] == 2, "the crashed claim counts as attempt 1"
            assert job["resume"] is True, "recovery must force the resume path"
            assert ask(socket_path, {"op": "shutdown"})["shutdown"] is True
            assert daemon.wait(timeout=60) == 0
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30)
        assert not socket_path.exists(), "clean shutdown must unlink the socket"

        store = CampaignStore(chaos_store)
        try:
            drained_records = store.query(parse_filter("campaign:last1"))
        finally:
            store.close()
        assert deterministic_part(drained_records) == deterministic_part(
            clean.records
        ), "drained-after-crash payloads must be byte-identical to a clean run"
