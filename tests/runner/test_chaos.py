"""Chaos suite: injected faults must never change what a campaign computes.

Every test follows the same contract: run a campaign clean, run it again
under a deterministic fault plan, and require the surviving records to be
byte-identical (modulo timing metadata) to the clean run — retries,
timeouts, worker crashes and torn writes may cost wall-clock and show up in
the ``faults/*`` counters, but never in the science.

In-process faults are installed via :func:`repro.runner.faults.install`;
anything that crosses a process boundary (parallel workers, CLI
subprocesses) uses the ``REPRO_FAULTS`` environment variable, which is the
cross-process contract the harness is built on.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import InjectedFault
from repro.runner import faults
from repro.runner.executor import ResultStore, run_campaign, telemetry_manifest
from repro.runner.faults import parse_plan
from repro.runner.policy import ExecutionPolicy, quarantine_path_for
from repro.runner.spec import CampaignSpec, ScenarioSpec
from repro.telemetry import merge as telemetry

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Fast-converging retry policy for tests: real backoff shape, toy delays.
QUICK_BACKOFF = dict(backoff_base_s=0.001, backoff_cap_s=0.01)


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reload_from_env()
    yield
    faults.reload_from_env()


def pair_spec():
    """Two cheap cells (no embedding stage): fig1-example x two schemes."""
    return CampaignSpec(
        topologies=("fig1-example",),
        schemes=("reconvergence", "fcp"),
        scenarios=(ScenarioSpec("single-link"),),
    )


def deterministic_part(records):
    return [{k: v for k, v in r.items() if k != "meta"} for r in records]


def target_of(spec):
    """A stable cell-id prefix to aim fault plans at."""
    return spec.cells()[0].cell_id[:12]


class TestRetries:
    def test_serial_transient_fault_is_retried_away(self):
        spec = pair_spec()
        clean = run_campaign(spec, workers=1)
        faults.install(
            parse_plan(f"site=cell-body,kind=exception,cells={target_of(spec)},max_attempt=1")
        )
        policy = ExecutionPolicy(max_retries=1, **QUICK_BACKOFF)
        result = run_campaign(spec, workers=1, policy=policy)
        assert deterministic_part(result.records) == deterministic_part(clean.records)
        assert result.fault_counters == {"faults/retries": 1}
        assert result.quarantined == []

    def test_parallel_transient_fault_is_retried_away(self, monkeypatch):
        spec = pair_spec()
        clean = run_campaign(spec, workers=1)
        monkeypatch.setenv(
            faults.ENV_VAR,
            f"site=cell-body,kind=exception,cells={target_of(spec)},max_attempt=1",
        )
        faults.reload_from_env()
        policy = ExecutionPolicy(max_retries=1, **QUICK_BACKOFF)
        result = run_campaign(spec, workers=2, policy=policy)
        assert deterministic_part(result.records) == deterministic_part(clean.records)
        assert result.fault_counters == {"faults/retries": 1}

    def test_exhausted_retries_fail_but_flush_completed_telemetry(self, tmp_path):
        """on_error=fail still re-raises — after the manifest sidecar exists."""
        spec = pair_spec()
        path = tmp_path / "results.jsonl"
        faults.install(
            parse_plan(f"site=cell-body,kind=exception,cells={target_of(spec)}")
        )
        policy = ExecutionPolicy(max_retries=1, **QUICK_BACKOFF)
        with pytest.raises(InjectedFault):
            run_campaign(spec, workers=1, results=path, policy=policy)
        # The sibling cell's record reached the store...
        assert len(ResultStore(path).load()) == 1
        # ...and so did the telemetry manifest, retry counters included.
        manifest = telemetry.load_manifest(telemetry.manifest_path_for(path))
        assert manifest["counters"]["faults/retries"] == 1
        assert manifest["run"]["quarantined"] == 0


class TestTimeouts:
    def test_hung_cell_times_out_and_succeeds_on_retry(self):
        spec = pair_spec()
        clean = run_campaign(spec, workers=1)
        faults.install(
            parse_plan(
                f"site=cell-body,kind=hang,seconds=30,cells={target_of(spec)},max_attempt=1"
            )
        )
        policy = ExecutionPolicy(max_retries=1, cell_timeout=0.3, **QUICK_BACKOFF)
        result = run_campaign(spec, workers=1, policy=policy)
        assert deterministic_part(result.records) == deterministic_part(clean.records)
        assert result.fault_counters == {"faults/retries": 1, "faults/timeouts": 1}

    def test_permanent_hang_is_quarantined(self, tmp_path):
        spec = pair_spec()
        faults.install(
            parse_plan(f"site=cell-body,kind=hang,seconds=30,cells={target_of(spec)}")
        )
        policy = ExecutionPolicy(cell_timeout=0.3, on_error="quarantine", **QUICK_BACKOFF)
        result = run_campaign(
            spec, workers=1, results=tmp_path / "results.jsonl", policy=policy
        )
        [entry] = result.quarantined
        assert entry["cell_id"] == spec.cells()[0].cell_id
        assert entry["error_type"] == "CellTimeoutError"
        assert entry["attempts"] == 1
        assert result.fault_counters["faults/quarantined_cells"] == 1
        assert result.fault_counters["faults/timeouts"] == 1


class TestQuarantine:
    def test_quarantined_cell_is_excluded_not_poisoning(self, tmp_path):
        """The aggregate over surviving cells equals the clean run minus the
        quarantined cell — the core chaos-suite guarantee."""
        spec = pair_spec()
        clean = run_campaign(spec, workers=1)
        bad = spec.cells()[0].cell_id
        faults.install(parse_plan(f"site=cell-body,kind=exception,cells={bad[:12]}"))
        path = tmp_path / "results.jsonl"
        policy = ExecutionPolicy(max_retries=1, on_error="quarantine", **QUICK_BACKOFF)
        result = run_campaign(spec, workers=1, results=path, policy=policy)
        expected = [r for r in clean.records if r["cell_id"] != bad]
        assert deterministic_part(result.records) == deterministic_part(expected)
        # Quarantined cells never enter the results store...
        assert bad not in ResultStore(path).completed_cell_ids()
        # ...they live in the sidecar, with their full failure context.
        sidecar = ResultStore(quarantine_path_for(path))
        [entry] = sidecar.load()
        assert entry["cell_id"] == bad
        assert entry["error_type"] == "InjectedFault"
        assert entry["attempts"] == 2  # first try + one retry
        assert result.quarantine_path == sidecar.path

    def test_resume_after_quarantine_completes_the_campaign(self, tmp_path):
        """Quarantine is a parking lot, not a verdict: once the fault is
        gone, a resumed run re-attempts exactly the quarantined cells."""
        spec = pair_spec()
        clean = run_campaign(spec, workers=1)
        path = tmp_path / "results.jsonl"
        faults.install(
            parse_plan(f"site=cell-body,kind=exception,cells={target_of(spec)}")
        )
        policy = ExecutionPolicy(on_error="quarantine", **QUICK_BACKOFF)
        first = run_campaign(spec, workers=1, results=path, policy=policy)
        assert len(first.quarantined) == 1
        faults.install(None)
        resumed = run_campaign(
            spec, workers=1, results=path, resume=True, policy=policy
        )
        assert resumed.skipped == spec.cell_count() - 1
        assert resumed.executed == 1
        assert resumed.quarantined == []
        assert deterministic_part(resumed.records) == deterministic_part(clean.records)
        # The healthy resume rewrites the sidecar empty.
        assert ResultStore(quarantine_path_for(path)).load() == []

    def test_zero_faults_means_zero_quarantine_and_no_counters(self, tmp_path):
        spec = pair_spec()
        path = tmp_path / "results.jsonl"
        policy = ExecutionPolicy(
            max_retries=2, cell_timeout=60.0, on_error="quarantine", **QUICK_BACKOFF
        )
        result = run_campaign(spec, workers=1, results=path, policy=policy)
        assert result.quarantined == []
        assert result.fault_counters == {}
        assert ResultStore(quarantine_path_for(path)).load() == []
        assert "faults/retries" not in telemetry_manifest(result)["counters"]


class TestWorkerCrashes:
    def test_crashed_worker_is_rebuilt_and_the_cell_retried(self, monkeypatch):
        spec = pair_spec()
        clean = run_campaign(spec, workers=1)
        monkeypatch.setenv(
            faults.ENV_VAR,
            f"site=cell-body,kind=crash,cells={target_of(spec)},max_attempt=1",
        )
        faults.reload_from_env()
        policy = ExecutionPolicy(max_retries=1, max_pool_rebuilds=32, **QUICK_BACKOFF)
        result = run_campaign(spec, workers=2, policy=policy)
        assert deterministic_part(result.records) == deterministic_part(clean.records)
        assert result.fault_counters["faults/pool_rebuilds"] >= 1
        assert result.fault_counters["faults/retries"] >= 1

    def test_permanently_crashing_cell_is_quarantined(self, monkeypatch, tmp_path):
        spec = pair_spec()
        bad = spec.cells()[0].cell_id
        monkeypatch.setenv(
            faults.ENV_VAR, f"site=cell-body,kind=crash,cells={bad[:12]}"
        )
        faults.reload_from_env()
        policy = ExecutionPolicy(
            on_error="quarantine", max_pool_rebuilds=32, **QUICK_BACKOFF
        )
        result = run_campaign(
            spec, workers=2, results=tmp_path / "results.jsonl", policy=policy
        )
        [entry] = result.quarantined
        assert entry["cell_id"] == bad
        assert entry["error_type"] == "WorkerCrashError"
        assert result.fault_counters["faults/pool_rebuilds"] >= 1
        # The sibling cell survived the crash storm.
        assert [r["cell_id"] for r in result.records] == [spec.cells()[1].cell_id]

    def test_chunk_envelope_crashes_are_bisected_to_completion(self, monkeypatch):
        """Crashing every first-attempt chunk envelope forces the full
        recovery machinery: drain, rebuild, bisect, solo re-dispatch."""
        spec = pair_spec()
        clean = run_campaign(spec, workers=1)
        monkeypatch.setenv(
            faults.ENV_VAR, "site=chunk-envelope,kind=crash,max_attempt=1"
        )
        faults.reload_from_env()
        policy = ExecutionPolicy(max_retries=1, max_pool_rebuilds=64, **QUICK_BACKOFF)
        result = run_campaign(spec, workers=2, policy=policy)
        assert deterministic_part(result.records) == deterministic_part(clean.records)
        assert result.fault_counters["faults/pool_rebuilds"] >= 1


class TestDeterministicChaos:
    def test_same_plan_same_counters_same_records(self):
        spec = pair_spec()
        plan = f"site=cell-body,kind=exception,cells={target_of(spec)},max_attempt=1"
        policy = ExecutionPolicy(max_retries=1, **QUICK_BACKOFF)
        outcomes = []
        for _ in range(2):
            faults.install(parse_plan(plan))
            outcomes.append(run_campaign(spec, workers=1, policy=policy))
        first, second = outcomes
        assert deterministic_part(first.records) == deterministic_part(second.records)
        assert first.fault_counters == second.fault_counters

    def test_probabilistic_plan_is_reproducible(self):
        """p<1 plans fire on the same cells every run — seeded, not random."""
        spec = pair_spec()
        plan = "site=cell-body,kind=exception,p=0.5,seed=3,max_attempt=1"
        policy = ExecutionPolicy(max_retries=1, on_error="quarantine", **QUICK_BACKOFF)
        counters = []
        for _ in range(2):
            faults.install(parse_plan(plan))
            counters.append(run_campaign(spec, workers=1, policy=policy).fault_counters)
        assert counters[0] == counters[1]


def run_sweep_cli(results, cache_dir, *, workers=1, resume=False, inject_env=None):
    """Run ``python -m repro sweep`` as a real subprocess (crash tests SIGKILL
    the process, which must never happen to the pytest process itself).

    Output goes to files, not pipes: when the parent is SIGKILLed its
    orphaned pool workers keep inherited pipe ends open, and a pipe-based
    ``communicate()`` would wait on them instead of the dead parent.
    """
    command = [
        sys.executable, "-m", "repro", "sweep",
        "--topologies", "fig1-example", "abilene",
        "--schemes", "reconvergence", "fcp",
        "--results", str(results),
        "--cache-dir", str(cache_dir),
        "--workers", str(workers),
        "--quiet",
    ]
    if resume:
        command.append("--resume")
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    env.pop(faults.ENV_VAR, None)
    if inject_env:
        env[faults.ENV_VAR] = inject_env
    log_path = Path(str(results) + ".log")
    with log_path.open("a") as log:
        outcome = subprocess.run(
            command, cwd=REPO_ROOT, env=env, stdout=log, stderr=log, timeout=300
        )
    outcome.log = log_path.read_text()
    return outcome


class TestKillResume:
    """Satellite: SIGKILL a sweep mid-campaign, resume, demand byte-identity."""

    TORN_WRITE = "site=store-append,kind=partial-write,skip=2"

    @pytest.mark.parametrize("workers", [1, 2], ids=["serial", "parallel"])
    def test_sigkill_mid_store_append_then_resume(self, tmp_path, workers):
        cache_dir = tmp_path / "cache"
        clean_path = tmp_path / "clean.jsonl"
        clean = run_sweep_cli(clean_path, cache_dir, workers=workers)
        assert clean.returncode == 0, clean.log

        killed_path = tmp_path / "killed.jsonl"
        killed = run_sweep_cli(
            killed_path, cache_dir, workers=workers, inject_env=self.TORN_WRITE
        )
        assert killed.returncode == -9, (killed.returncode, killed.log)
        # The kill happened mid-append: two whole records plus a torn tail.
        survivors = ResultStore(killed_path)
        assert len(survivors.load()) == 2
        assert survivors.torn_records_skipped == 1

        resumed = run_sweep_cli(killed_path, cache_dir, workers=workers, resume=True)
        assert resumed.returncode == 0, resumed.log
        assert deterministic_part(ResultStore(killed_path).load()) == deterministic_part(
            ResultStore(clean_path).load()
        )
        # The resumed manifest covers the whole campaign, not just the tail.
        manifest = telemetry.load_manifest(telemetry.manifest_path_for(killed_path))
        assert manifest["campaign"]["cells"] == 4

    def test_sigkill_mid_sqlite_append_then_resume(self, tmp_path):
        """The SQLite backend honours the same store-append fault site: the
        kill lands with the insert transaction open, WAL rollback makes the
        third record never-happened, and resume completes the campaign."""
        from repro.store.database import CampaignStore

        cache_dir = tmp_path / "cache"
        clean_path = tmp_path / "clean.jsonl"
        clean = run_sweep_cli(clean_path, cache_dir)
        assert clean.returncode == 0, clean.log

        killed_path = tmp_path / "killed.sqlite"
        killed = run_sweep_cli(killed_path, cache_dir, inject_env=self.TORN_WRITE)
        assert killed.returncode == -9, (killed.returncode, killed.log)
        with CampaignStore(killed_path) as store:
            [campaign] = store.campaigns()
            assert campaign["records"] == 2

        resumed = run_sweep_cli(killed_path, cache_dir, resume=True)
        assert resumed.returncode == 0, resumed.log
        with CampaignStore(killed_path) as store:
            [campaign] = store.campaigns()
            assert campaign["status"] == "done"
            survivors = store.load_records(campaign["campaign_id"])
        assert deterministic_part(survivors) == deterministic_part(
            ResultStore(clean_path).load()
        )
