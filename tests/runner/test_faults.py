"""Fault harness and execution policy: grammar, determinism, timeouts."""

import threading
import time

import pytest

from repro.errors import CellTimeoutError, ExperimentError, InjectedFault
from repro.runner import faults
from repro.runner.faults import (
    FaultPlan,
    FaultSpec,
    fault_fraction,
    parse_fault,
    parse_plan,
)
from repro.runner.policy import (
    ExecutionPolicy,
    quarantine_path_for,
    run_with_timeout,
)


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reload_from_env()
    yield
    faults.reload_from_env()


class TestGrammar:
    def test_minimal_fault(self):
        spec = parse_fault("site=cell-body,kind=exception")
        assert spec.site == "cell-body"
        assert spec.kind == "exception"
        assert spec.probability == 1.0
        assert spec.cells == ()

    def test_all_fields(self):
        spec = parse_fault(
            "site=store-append,kind=partial-write,p=0.5,seed=7,"
            "cells=ab12+cd34,times=2,skip=3,max_attempt=1,seconds=2.5"
        )
        assert spec.probability == 0.5
        assert spec.seed == 7
        assert spec.cells == ("ab12", "cd34")
        assert spec.times == 2
        assert spec.skip == 3
        assert spec.max_attempt == 1
        assert spec.seconds == 2.5

    def test_multi_clause_plan(self):
        plan = parse_plan(
            "site=cell-body,kind=exception,cells=aa;site=cache-read,kind=partial-write"
        )
        assert len(plan.specs) == 2
        assert plan.specs[1].site == "cache-read"

    def test_empty_plan_is_none(self):
        assert parse_plan("") is None
        assert parse_plan(" ; ") is None

    def test_describe_round_trips(self):
        text = (
            "site=cell-body,kind=hang,p=0.25,seed=3,cells=ab,times=1,"
            "skip=2,max_attempt=4,seconds=1.5"
        )
        plan = parse_plan(text)
        assert parse_plan(plan.describe()).specs == plan.specs

    @pytest.mark.parametrize(
        "text",
        [
            "kind=exception",  # missing site
            "site=cell-body",  # missing kind
            "site=warp-core,kind=exception",  # unknown site
            "site=cell-body,kind=gamma-ray",  # unknown kind
            "site=cell-body,kind=exception,p=2.0",  # probability out of range
            "site=cell-body,kind=exception,warp=9",  # unknown field
            "site=cell-body,kind=exception,times=often",  # bad numeric
            "site=cell-body,kind=exception,broken",  # not key=value
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(ExperimentError):
            parse_fault(text)


class TestDeterminism:
    def test_fault_fraction_is_stable(self):
        a = fault_fraction(1, "cell-body", "abcd", 0)
        assert a == fault_fraction(1, "cell-body", "abcd", 0)
        assert 0.0 <= a < 1.0
        assert a != fault_fraction(2, "cell-body", "abcd", 0)
        assert a != fault_fraction(1, "cell-body", "abcd", 1)

    def test_probability_trigger_is_seeded(self):
        spec = FaultSpec(site="cell-body", kind="exception", probability=0.5, seed=9)
        keys = [f"cell{i}" for i in range(64)]
        first = [spec.matches("cell-body", key, 0) for key in keys]
        second = [spec.matches("cell-body", key, 0) for key in keys]
        assert first == second
        assert any(first) and not all(first)

    def test_cells_prefix_match(self):
        spec = FaultSpec(site="cell-body", kind="exception", cells=("ab", "ff"))
        assert spec.matches("cell-body", "ab99", 0)
        assert spec.matches("cell-body", "ff00", 0)
        assert not spec.matches("cell-body", "ba99", 0)
        assert not spec.matches("cell-body", None, 0)
        assert not spec.matches("store-append", "ab99", 0)

    def test_max_attempt_gates_retried_attempts(self):
        spec = FaultSpec(site="cell-body", kind="exception", max_attempt=2)
        assert spec.matches("cell-body", "x", 0)
        assert spec.matches("cell-body", "x", 1)
        assert not spec.matches("cell-body", "x", 2)


class TestPlanAccounting:
    def test_skip_then_times(self):
        plan = FaultPlan(
            specs=(FaultSpec(site="store-append", kind="partial-write", skip=2, times=1),)
        )
        decisions = [plan.decide("store-append", f"c{i}", 0) for i in range(5)]
        assert [d is not None for d in decisions] == [False, False, True, False, False]

    def test_first_matching_spec_wins(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="cell-body", kind="exception", cells=("aa",)),
                FaultSpec(site="cell-body", kind="hang", seconds=0.0),
            )
        )
        assert plan.decide("cell-body", "aa11", 0).kind == "exception"
        assert plan.decide("cell-body", "bb22", 0).kind == "hang"


class TestCheckpoint:
    def test_no_plan_is_a_no_op(self):
        assert faults.checkpoint("cell-body", "anything") is None

    def test_exception_kind_raises_injected_fault(self):
        faults.install(parse_plan("site=cell-body,kind=exception"))
        with pytest.raises(InjectedFault):
            faults.checkpoint("cell-body", "abcd")
        # Other sites stay clean.
        assert faults.checkpoint("store-append", "abcd") is None

    def test_partial_write_is_returned_to_the_caller(self):
        faults.install(parse_plan("site=store-append,kind=partial-write"))
        spec = faults.checkpoint("store-append", "abcd")
        assert spec is not None and spec.kind == "partial-write"

    def test_hang_sleeps_then_continues(self):
        faults.install(parse_plan("site=cell-body,kind=hang,seconds=0.01,times=1"))
        started = time.perf_counter()
        assert faults.checkpoint("cell-body", "abcd") is None
        assert time.perf_counter() - started >= 0.01

    def test_env_is_the_cross_process_contract(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "site=cell-body,kind=exception")
        faults.reload_from_env()
        with pytest.raises(InjectedFault):
            faults.checkpoint("cell-body", "abcd")
        monkeypatch.delenv(faults.ENV_VAR)
        faults.reload_from_env()
        assert faults.checkpoint("cell-body", "abcd") is None


class TestExecutionPolicy:
    def test_defaults_are_the_legacy_semantics(self):
        policy = ExecutionPolicy()
        assert policy.max_retries == 0
        assert policy.cell_timeout is None
        assert policy.on_error == "fail"
        assert not policy.quarantines

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"cell_timeout": 0},
            {"cell_timeout": -2.0},
            {"on_error": "explode"},
            {"max_pool_rebuilds": -1},
        ],
    )
    def test_rejects_invalid_configuration(self, kwargs):
        with pytest.raises(ExperimentError):
            ExecutionPolicy(**kwargs)

    def test_backoff_is_deterministic_capped_and_growing(self):
        policy = ExecutionPolicy(backoff_base_s=0.1, backoff_cap_s=1.0)
        first = policy.backoff_seconds("cell-a", 1)
        assert first == policy.backoff_seconds("cell-a", 1)
        assert 0.1 <= first < 0.2  # base * (1 + jitter in [0, 1))
        assert policy.backoff_seconds("cell-a", 2) > first
        assert policy.backoff_seconds("cell-a", 10) == 1.0  # capped
        assert policy.backoff_seconds("cell-a", 0) == 0.0
        # Different cells jitter differently (no retry lockstep).
        assert first != policy.backoff_seconds("cell-b", 1)

    def test_quarantine_path_naming(self):
        from pathlib import Path

        assert quarantine_path_for("out/run.jsonl") == Path("out/run.quarantine.jsonl")
        assert quarantine_path_for("run.results") == Path(
            "run.results.quarantine.jsonl"
        )


class TestRunWithTimeout:
    def test_fast_function_returns_value(self):
        assert run_with_timeout(lambda: 41 + 1, timeout=5.0) == 42

    def test_no_timeout_is_a_passthrough(self):
        assert run_with_timeout(lambda: "ok", timeout=None) == "ok"

    def test_main_thread_timeout_interrupts_sleep(self):
        started = time.perf_counter()
        with pytest.raises(CellTimeoutError):
            run_with_timeout(lambda: time.sleep(5), timeout=0.1, label="sleeper")
        assert time.perf_counter() - started < 2.0

    def test_exceptions_propagate_unchanged(self):
        with pytest.raises(ZeroDivisionError):
            run_with_timeout(lambda: 1 / 0, timeout=5.0)

    def test_off_main_thread_fallback(self):
        box = {}

        def driver():
            try:
                run_with_timeout(lambda: time.sleep(5), timeout=0.1)
            except CellTimeoutError as exc:
                box["error"] = exc
            box["value"] = run_with_timeout(lambda: "done", timeout=1.0)

        worker = threading.Thread(target=driver)
        worker.start()
        worker.join(10)
        assert isinstance(box["error"], CellTimeoutError)
        assert box["value"] == "done"
