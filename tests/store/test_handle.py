"""CampaignHandle: the redesigned run_campaign return surface + shims."""

import pytest

from repro.runner.executor import (
    CampaignHandle,
    CampaignResult,
    run_campaign,
)
from repro.store.database import CampaignStore

from tests.store.conftest import pair_spec


class TestHandleSurface:
    def test_handle_is_the_result_type(self):
        """Alias, not subclass: existing isinstance checks keep working."""
        assert CampaignHandle is CampaignResult

    def test_memory_backend(self):
        handle = run_campaign(pair_spec(), workers=1)
        assert handle.store is None
        summary = handle.summary()
        assert summary["backend"] == "memory"
        assert summary["results"] is None

    def test_jsonl_backend(self, tmp_path):
        handle = run_campaign(pair_spec(), workers=1, results=tmp_path / "c.jsonl")
        assert handle.store is None
        assert handle.summary()["backend"] == "jsonl"

    def test_sqlite_backend_exposes_the_store(self, tmp_path):
        handle = run_campaign(pair_spec(), workers=1, results=tmp_path / "c.sqlite")
        assert isinstance(handle.store, CampaignStore)
        summary = handle.summary()
        assert summary["backend"] == "sqlite"
        assert summary["campaign_id"] == handle.spec.spec_hash()
        assert summary["records"] == 4
        assert sorted(summary["topologies"]) == ["abilene", "fig1-example"]
        assert summary["schemes"] == ["fcp", "reconvergence"]

    def test_query_filters_in_memory_on_any_backend(self, tmp_path):
        memory = run_campaign(pair_spec(), workers=1)
        jsonl = run_campaign(pair_spec(), workers=1, results=tmp_path / "c.jsonl")
        for handle in (memory, jsonl):
            assert len(handle.query("scheme=fcp")) == 2
            assert len(handle.query("topology=abilene scheme=reconvergence")) == 1
            assert handle.query("topology~zoo") == []
            assert len(handle.query(limit=3)) == 3

    def test_query_routes_campaign_selectors_through_the_store(self, tmp_path):
        store_path = tmp_path / "c.sqlite"
        run_campaign(pair_spec(schemes=("reconvergence",)), workers=1,
                     results=store_path)
        handle = run_campaign(pair_spec(), workers=1, results=store_path)
        # in-memory: only this campaign's records
        assert len(handle.query("scheme=reconvergence")) == 2
        # cross-campaign: both campaigns in the shared store
        assert len(handle.query("scheme=reconvergence campaign:all")) == 4

    def test_telemetry_view(self, tmp_path):
        handle = run_campaign(pair_spec(), workers=1, results=tmp_path / "c.sqlite")
        manifest = handle.telemetry()
        assert manifest["campaign"]["spec_hash"] == handle.campaign_id
        assert manifest["campaign"]["cells"] == 4


class TestResultsPathShim:
    def test_results_path_warns_and_maps(self, tmp_path):
        results = tmp_path / "c.jsonl"
        with pytest.warns(DeprecationWarning, match="results="):
            handle = run_campaign(pair_spec(), workers=1, results_path=results)
        assert results.exists()
        assert handle.results_path == results

    def test_results_wins_silently(self, tmp_path):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_campaign(pair_spec(), workers=1, results=tmp_path / "c.jsonl")
