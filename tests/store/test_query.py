"""Filter grammar: parsing, in-memory matching, and SQL parity."""

import pytest

from repro.errors import ExperimentError
from repro.runner.executor import run_campaign
from repro.store.database import CampaignStore
from repro.store.query import campaign_ids_for, parse_filter

from tests.store.conftest import pair_spec


def record(**overrides):
    base = {
        "cell_id": "deadbeef0123",
        "topology": "abilene",
        "scheme": "pr",
        "discriminator": "hop-count",
        "scenario": {"kind": "single-link"},
        "seed": 7,
    }
    base.update(overrides)
    return base


class TestParse:
    def test_equality_inequality_substring(self):
        filt = parse_filter("scheme=pr topology!=geant topology~zoo")
        ops = [(c.field, c.op) for c in filt.clauses]
        assert ops == [("scheme", "="), ("topology", "!="), ("topology", "~")]

    def test_list_and_none_inputs(self):
        assert parse_filter(["scheme=pr", "seed=3"]).describe() == parse_filter(
            "scheme=pr seed=3"
        ).describe()
        empty = parse_filter(None)
        assert empty.clauses == ()
        assert empty.matches(record())

    def test_campaign_selectors(self):
        assert parse_filter("campaign:all").campaign == ("all",)
        assert parse_filter("campaign:last10").campaign == ("last", 10)
        assert parse_filter("campaign:abc123").campaign == ("id", "abc123")

    def test_unknown_field_rejected(self):
        with pytest.raises(ExperimentError, match="field"):
            parse_filter("flavor=mint")

    def test_campaign_equals_gets_a_hint(self):
        with pytest.raises(ExperimentError, match="campaign:"):
            parse_filter("campaign=abc")

    def test_non_integer_seed_rejected(self):
        with pytest.raises(ExperimentError, match="seed"):
            parse_filter("seed=lucky")

    def test_bare_word_rejected(self):
        with pytest.raises(ExperimentError):
            parse_filter("abilene")

    def test_last_zero_rejected(self):
        with pytest.raises(ExperimentError, match="N >= 1"):
            parse_filter("campaign:last0")


class TestMatches:
    def test_equality_and_inequality(self):
        filt = parse_filter("scheme=pr")
        assert filt.matches(record())
        assert not filt.matches(record(scheme="fcp"))
        assert parse_filter("scheme!=fcp").matches(record())

    def test_substring_is_case_insensitive(self):
        assert parse_filter("topology~BIL").matches(record())
        assert not parse_filter("topology~zoo").matches(record())

    def test_seed_compares_as_int(self):
        assert parse_filter("seed=7").matches(record())
        assert not parse_filter("seed=8").matches(record())

    def test_family_falls_back_to_scenario_kind(self):
        assert parse_filter("family=single-link").matches(record())
        srlg = record(scenario={"model": "srlg", "kind": "scenario-model"})
        assert parse_filter("family=srlg").matches(srlg)

    def test_cell_prefix_match_via_substring(self):
        assert parse_filter("cell~deadbeef").matches(record())

    def test_conjunction(self):
        filt = parse_filter("scheme=pr topology=abilene")
        assert filt.matches(record())
        assert not filt.matches(record(topology="geant"))


class TestSqlParity:
    """store.query must return exactly what the in-memory filter selects."""

    EXPRESSIONS = [
        "",
        "scheme=fcp",
        "scheme!=fcp",
        "topology~bil",
        "topology=fig1-example scheme=reconvergence",
        "family=single-link",
        "cell~a",
    ]

    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("query") / "c.sqlite"
        run_campaign(pair_spec(), workers=1, results=path)
        with CampaignStore(path) as store:
            yield store

    @pytest.mark.parametrize("expression", EXPRESSIONS)
    def test_sql_matches_python(self, store, expression):
        filt = parse_filter(expression)
        [campaign] = [row["campaign_id"] for row in store.campaigns()]
        in_memory = filt.filter_records(store.load_records(campaign))
        via_sql = store.query(filt)
        assert via_sql == in_memory

    def test_limit(self, store):
        assert len(store.query("", limit=2)) == 2

    def test_like_wildcards_are_literal(self, store):
        """``~`` is a substring test, not a LIKE pattern: % and _ are literal."""
        assert store.query("topology~%") == []
        assert store.query("topology~_") == []


class TestCampaignSelection:
    CAMPAIGNS = [
        {"campaign_id": "aaa111"},
        {"campaign_id": "bbb222"},
        {"campaign_id": "ccc333"},
    ]

    def test_all_selects_everything(self):
        assert campaign_ids_for(("all",), self.CAMPAIGNS) is None

    def test_last_n_takes_the_most_recent(self):
        assert campaign_ids_for(("last", 2), self.CAMPAIGNS) == ["bbb222", "ccc333"]
        assert campaign_ids_for(("last", 99), self.CAMPAIGNS) == [
            "aaa111",
            "bbb222",
            "ccc333",
        ]

    def test_prefix_selects_matches(self):
        assert campaign_ids_for(("id", "bbb"), self.CAMPAIGNS) == ["bbb222"]
        assert campaign_ids_for(("id", "zzz"), self.CAMPAIGNS) == []
