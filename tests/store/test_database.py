"""CampaignStore: schema, campaign lifecycle, backend parity with JSONL."""

import sqlite3

import pytest

from repro.errors import ExperimentError, ResultStoreError
from repro.runner.executor import run_campaign
from repro.store.database import BoundCampaign, CampaignStore, is_store_path
from repro.store.jsonl import ResultStore
from repro.store.schema import SCHEMA_VERSION, applied_version

from tests.store.conftest import deterministic_part, pair_spec


class TestSchema:
    def test_fresh_store_lands_on_current_version(self, store_path):
        with CampaignStore(store_path) as store:
            assert applied_version(store.conn) == SCHEMA_VERSION

    def test_newer_store_is_refused(self, store_path):
        with CampaignStore(store_path) as store:
            store.conn.execute(
                "INSERT INTO schema_migrations (version) VALUES (?)",
                (SCHEMA_VERSION + 1,),
            )
        with pytest.raises(ResultStoreError, match="newer"):
            CampaignStore(store_path).conn

    def test_wal_mode(self, store_path):
        with CampaignStore(store_path) as store:
            [row] = store.conn.execute("PRAGMA journal_mode").fetchall()
            assert row[0] == "wal"

    def test_suffix_detection(self, tmp_path):
        assert is_store_path(tmp_path / "a.sqlite")
        assert is_store_path(tmp_path / "a.sqlite3")
        assert is_store_path(tmp_path / "a.db")
        assert not is_store_path(tmp_path / "a.jsonl")
        assert not is_store_path(tmp_path / "a.json")


class TestCampaignLifecycle:
    RECORD = {
        "cell_id": "abc123",
        "index": 0,
        "topology": "fig1-example",
        "scheme": "pr",
        "discriminator": "hop-count",
        "scenario": {"kind": "single-link"},
        "seed": 7,
        "payload": {"delivery_ratio": 1.0},
    }

    def test_append_and_load_round_trip(self, store_path):
        with CampaignStore(store_path) as store:
            store.ensure_campaign("c1", {"topologies": ["fig1-example"]})
            store.append_record("c1", self.RECORD)
            assert store.load_records("c1") == [self.RECORD]
            assert store.completed_cell_ids("c1") == {"abc123"}
            assert store.record_count("c1") == 1

    def test_append_requires_cell_id(self, store_path):
        with CampaignStore(store_path) as store:
            store.ensure_campaign("c1", {})
            with pytest.raises(ResultStoreError, match="cell_id"):
                store.append_record("c1", {"topology": "x"})

    def test_load_orders_by_cell_index(self, store_path):
        with CampaignStore(store_path) as store:
            store.ensure_campaign("c1", {})
            for index in (2, 0, 1):
                record = dict(self.RECORD, cell_id=f"cell{index}", index=index)
                store.append_record("c1", record)
            loaded = store.load_records("c1")
            assert [r["index"] for r in loaded] == [0, 1, 2]

    def test_begin_campaign_resets_ensure_keeps(self, store_path):
        with CampaignStore(store_path) as store:
            store.begin_campaign("c1", {})
            store.append_record("c1", self.RECORD)
            # ensure: rows survive (the resume path)
            store.ensure_campaign("c1", {})
            assert store.record_count("c1") == 1
            # begin: a fresh run wipes the previous rows
            store.begin_campaign("c1", {})
            assert store.record_count("c1") == 0

    def test_campaigns_listing_is_recency_ordered(self, store_path):
        with CampaignStore(store_path) as store:
            store.begin_campaign("first", {})
            store.begin_campaign("second", {})
            store.append_record("second", self.RECORD)
            store.finish_campaign("second", executed=1, skipped=0, elapsed_s=0.5)
            rows = store.campaigns()
            assert [row["campaign_id"] for row in rows] == ["first", "second"]
            latest = rows[-1]
            assert latest["records"] == 1
            assert latest["status"] == "done"
            # re-beginning an existing campaign moves it to most-recent
            store.begin_campaign("first", {})
            assert store.campaigns()[-1]["campaign_id"] == "first"

    def test_manifest_and_quarantine_round_trip(self, store_path):
        manifest = {"format": "repro-telemetry/v1", "run": {"cells": 4}}
        entries = [
            {"cell_id": "q1", "index": 1, "error": "boom"},
            {"cell_id": "q0", "index": 0, "error": "bang"},
        ]
        with CampaignStore(store_path) as store:
            store.ensure_campaign("c1", {})
            assert store.get_manifest("c1") is None
            store.put_manifest("c1", manifest)
            store.put_quarantine("c1", entries)
            assert store.get_manifest("c1") == manifest
            assert [e["index"] for e in store.load_quarantine("c1")] == [0, 1]

    def test_delete_campaign(self, store_path):
        with CampaignStore(store_path) as store:
            store.begin_campaign("c1", {})
            store.append_record("c1", self.RECORD)
            store.delete_campaign("c1")
            assert store.campaigns() == []
            assert store.load_records("c1") == []


class TestBoundCampaign:
    def test_duck_types_the_result_store_surface(self, store_path):
        bound = BoundCampaign(CampaignStore(store_path), "c1")
        assert not bound.exists()
        bound.begin(spec_dict={}, cells=4, workers=1, resume=False)
        assert bound.exists()
        assert bound.torn_records_skipped == 0
        assert bound.completed_cell_ids() == set()
        bound.append(TestCampaignLifecycle.RECORD)
        assert bound.load() == [TestCampaignLifecycle.RECORD]
        bound.truncate()
        assert bound.load() == []


class TestBackendParity:
    """The same campaign must compute identical payloads on either backend."""

    @pytest.mark.parametrize("workers", [1, 2], ids=["serial", "parallel"])
    def test_payloads_identical_across_backends(self, tmp_path, workers):
        spec = pair_spec()
        jsonl = run_campaign(spec, workers=workers, results=tmp_path / "c.jsonl")
        sqlite_run = run_campaign(spec, workers=workers, results=tmp_path / "c.sqlite")
        assert deterministic_part(jsonl.records) == deterministic_part(
            sqlite_run.records
        )
        # and what the store persisted is what the handle returned
        with CampaignStore(tmp_path / "c.sqlite") as store:
            persisted = store.load_records(spec.spec_hash())
        assert persisted == sqlite_run.records

    def test_sqlite_resume_skips_completed_cells(self, tmp_path):
        spec = pair_spec()
        fresh = run_campaign(spec, workers=1, results=tmp_path / "c.sqlite")
        assert fresh.executed == 4
        resumed = run_campaign(
            spec, workers=1, results=tmp_path / "c.sqlite", resume=True
        )
        assert resumed.executed == 0
        assert resumed.skipped == 4
        assert deterministic_part(resumed.records) == deterministic_part(fresh.records)

    def test_fresh_run_truncates_previous_campaign(self, tmp_path):
        spec = pair_spec()
        run_campaign(spec, workers=1, results=tmp_path / "c.sqlite")
        again = run_campaign(spec, workers=1, results=tmp_path / "c.sqlite")
        assert again.executed == 4
        with CampaignStore(tmp_path / "c.sqlite") as store:
            assert store.record_count(spec.spec_hash()) == 4

    def test_two_campaigns_share_one_store(self, tmp_path):
        store_path = tmp_path / "c.sqlite"
        first = run_campaign(pair_spec(), workers=1, results=store_path)
        second = run_campaign(
            pair_spec(schemes=("reconvergence",)), workers=1, results=store_path
        )
        with CampaignStore(store_path) as store:
            rows = store.campaigns()
            assert [row["campaign_id"] for row in rows] == [
                first.campaign_id,
                second.campaign_id,
            ]
            # cross-campaign query sees both; campaign:last1 only the second
            assert store.query_count("campaign:all") == 6
            assert store.query_count("campaign:last1") == 2

    def test_unmatched_campaign_prefix_errors(self, tmp_path):
        store_path = tmp_path / "c.sqlite"
        run_campaign(pair_spec(), workers=1, results=store_path)
        with CampaignStore(store_path) as store:
            with pytest.raises(ExperimentError, match="campaign"):
                store.query("campaign:no-such-prefix")

    def test_telemetry_lands_in_store_not_sidecar(self, tmp_path):
        result = run_campaign(pair_spec(), workers=1, results=tmp_path / "c.sqlite")
        assert result.telemetry_path is None
        with CampaignStore(tmp_path / "c.sqlite") as store:
            manifest = store.get_manifest(result.campaign_id)
        assert manifest["schema"] == "repro-telemetry/v1"
        assert manifest["campaign"]["cells"] == 4

    def test_concurrent_readers_while_writing(self, store_path):
        """WAL mode: a second connection reads while the first appends."""
        with CampaignStore(store_path) as writer:
            writer.begin_campaign("c1", {})
            writer.append_record("c1", TestCampaignLifecycle.RECORD)
            with CampaignStore(store_path) as reader:
                assert reader.record_count("c1") == 1

    def test_plain_sqlite3_can_read_the_store(self, tmp_path):
        """The schema is ordinary SQLite — external tools can query it."""
        spec = pair_spec()
        run_campaign(spec, workers=1, results=tmp_path / "c.sqlite")
        conn = sqlite3.connect(tmp_path / "c.sqlite")
        try:
            [(count,)] = conn.execute(
                "SELECT COUNT(*) FROM records JOIN cells USING (campaign_id, cell_id)"
            ).fetchall()
            assert count == 4
        finally:
            conn.close()
