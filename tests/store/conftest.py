"""Shared fixtures for the results-store suite."""

import pytest

from repro.runner.spec import CampaignSpec, ScenarioSpec


def pair_spec(**overrides):
    """Four cheap cells (no embedding stage): two topologies x two schemes."""
    defaults = dict(
        topologies=("fig1-example", "abilene"),
        schemes=("reconvergence", "fcp"),
        scenarios=(ScenarioSpec("single-link"),),
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def deterministic_part(records):
    """Records without the timing/pid metadata (the comparable part)."""
    return [{k: v for k, v in r.items() if k != "meta"} for r in records]


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "campaign.sqlite"
