"""Job journal: submit/claim lifecycle, cancellation, crash recovery."""

import os
import subprocess
import sys

import pytest

from repro.errors import JobError
from repro.store.jobs import JobQueue, pid_alive, public_view

from tests.store.conftest import pair_spec


@pytest.fixture
def queue(tmp_path):
    queue = JobQueue(tmp_path / "jobs.sqlite")
    yield queue
    queue.close()


def submit_one(queue, **overrides):
    spec = pair_spec()
    kwargs = dict(
        campaign_id=spec.spec_hash(),
        spec_dict=spec.to_dict(),
        results="results.sqlite",
        cells=spec.cell_count(),
    )
    kwargs.update(overrides)
    return queue.submit(**kwargs)


class TestLifecycle:
    def test_submit_creates_a_queued_row(self, queue):
        job_id = submit_one(queue)
        job = queue.get(job_id)
        assert job["state"] == "queued"
        assert job["attempts"] == 0
        assert job["progress_total"] == pair_spec().cell_count()
        assert job_id.startswith(pair_spec().spec_hash()[:12])

    def test_claim_is_oldest_first_and_marks_running(self, queue):
        first = submit_one(queue)
        second = submit_one(queue)
        claimed = queue.claim(worker_pid=os.getpid())
        assert claimed["job_id"] == first
        assert claimed["attempts"] == 1
        assert queue.get(first)["state"] == "running"
        assert queue.get(second)["state"] == "queued"
        assert queue.claim(worker_pid=os.getpid())["job_id"] == second
        assert queue.claim(worker_pid=os.getpid()) is None

    def test_progress_only_touches_running_jobs(self, queue):
        job_id = submit_one(queue)
        queue.progress(job_id, 2, 4, phase="early")  # still queued: ignored
        assert queue.get(job_id)["progress_done"] == 0
        queue.claim(worker_pid=os.getpid())
        queue.progress(job_id, 2, 4, phase="mid")
        job = queue.get(job_id)
        assert (job["progress_done"], job["phase"]) == (2, "mid")

    def test_finish_and_fail_are_terminal(self, queue):
        done_id = submit_one(queue)
        queue.claim(worker_pid=os.getpid())
        queue.finish(done_id, executed=4, skipped=0, elapsed_s=1.5)
        done = queue.get(done_id)
        assert done["state"] == "done"
        assert done["progress_done"] == done["progress_total"]

        failed_id = submit_one(queue)
        queue.claim(worker_pid=os.getpid())
        queue.fail(failed_id, "boom")
        assert queue.get(failed_id)["state"] == "failed"
        assert queue.get(failed_id)["last_error"] == "boom"
        assert queue.active_count() == 0

    def test_get_unknown_job_raises(self, queue):
        with pytest.raises(JobError, match="no job"):
            queue.get("nope-1")

    def test_list_jobs_validates_state(self, queue):
        with pytest.raises(JobError, match="unknown job state"):
            queue.list_jobs(state="exploded")

    def test_public_view_shape(self, queue):
        job_id = submit_one(queue)
        view = public_view(queue.get(job_id))
        assert view["job_id"] == job_id
        assert view["state"] == "queued"
        assert view["progress"] == {
            "done": 0, "total": pair_spec().cell_count(), "phase": None,
        }
        assert "seq" not in view


class TestCancellation:
    def test_queued_job_cancels_immediately(self, queue):
        job_id = submit_one(queue)
        assert queue.cancel(job_id)["state"] == "cancelled"
        assert queue.claim(worker_pid=os.getpid()) is None

    def test_running_job_gets_the_flag_only(self, queue):
        job_id = submit_one(queue)
        queue.claim(worker_pid=os.getpid())
        assert not queue.cancel_requested(job_id)
        cancelled = queue.cancel(job_id)
        assert cancelled["state"] == "running", "running jobs cancel between cells"
        assert queue.cancel_requested(job_id)

    def test_terminal_job_is_left_untouched(self, queue):
        job_id = submit_one(queue)
        queue.claim(worker_pid=os.getpid())
        queue.finish(job_id, executed=4, skipped=0, elapsed_s=0.1)
        assert queue.cancel(job_id)["state"] == "done"


class TestRecovery:
    def dead_pid(self):
        """A real pid that is certainly dead: a finished child process."""
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait(timeout=30)
        return child.pid

    def test_dead_worker_job_is_requeued_with_resume_forced(self, queue):
        job_id = submit_one(queue, resume=False)
        queue.claim(worker_pid=self.dead_pid())
        assert queue.recover() == [job_id]
        job = queue.get(job_id)
        assert job["state"] == "queued"
        assert job["resume"] == 1, "recovery must force the resume path"
        assert job["worker_pid"] is None
        assert job["attempts"] == 1, "the lost attempt stays on the record"

    def test_own_pid_counts_as_stale_on_startup(self, queue):
        # A restarted daemon can be handed its predecessor's pid by the OS;
        # recovery runs before this process claims anything, so a running
        # row with *our* pid is necessarily stale.
        job_id = submit_one(queue)
        queue.claim(worker_pid=os.getpid())
        assert queue.recover() == [job_id]

    def test_live_foreign_worker_is_left_alone(self, queue):
        live = subprocess.Popen([sys.executable, "-c", "import time; time.sleep(60)"])
        try:
            submit_one(queue)
            queue.claim(worker_pid=live.pid)
            assert queue.recover() == []
        finally:
            live.kill()
            live.wait(timeout=30)

    def test_pid_alive_probe(self):
        assert pid_alive(os.getpid())
        assert not pid_alive(None)
        assert not pid_alive(0)
        assert not pid_alive(self.dead_pid())
