"""JSONL <-> SQLite migration: round trips must be byte-identical."""

import filecmp

import pytest

from repro.errors import ExperimentError
from repro.runner import faults
from repro.runner.executor import run_campaign
from repro.runner.faults import parse_plan
from repro.runner.policy import ExecutionPolicy, quarantine_path_for
from repro.store.database import CampaignStore
from repro.store.migrate import export_jsonl, import_jsonl, migrate
from repro.telemetry import merge as telemetry

from tests.store.conftest import pair_spec


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reload_from_env()
    yield
    faults.reload_from_env()


def round_trip(tmp_path, jsonl_path):
    """jsonl -> sqlite -> jsonl again; return the re-exported path."""
    store_path = tmp_path / "migrated.sqlite"
    imported = import_jsonl(jsonl_path, store_path)
    back = tmp_path / "back.jsonl"
    export_jsonl(store_path, back, campaign_id=imported["campaign_id"])
    return back


class TestRoundTrips:
    @pytest.mark.parametrize("workers", [1, 2], ids=["serial", "parallel"])
    def test_fresh_campaign_round_trips_byte_identical(self, tmp_path, workers):
        results = tmp_path / "c.jsonl"
        run_campaign(pair_spec(), workers=workers, results=results)
        back = round_trip(tmp_path, results)
        assert filecmp.cmp(results, back, shallow=False)
        # the telemetry sidecar rides along, also byte-identical
        assert filecmp.cmp(
            telemetry.manifest_path_for(results),
            telemetry.manifest_path_for(back),
            shallow=False,
        )

    def test_resumed_campaign_round_trips_byte_identical(self, tmp_path):
        results = tmp_path / "c.jsonl"
        spec = pair_spec()
        # interrupt after two cells, then resume to completion
        faults.install(parse_plan("site=cell-body,kind=exception,skip=2"))
        policy = ExecutionPolicy(on_error="fail")
        with pytest.raises(Exception):
            run_campaign(spec, workers=1, results=results, policy=policy)
        faults.reload_from_env()
        resumed = run_campaign(spec, workers=1, results=results, resume=True)
        assert resumed.skipped == 2
        back = round_trip(tmp_path, results)
        assert filecmp.cmp(results, back, shallow=False)

    def test_quarantined_campaign_round_trips_byte_identical(self, tmp_path):
        results = tmp_path / "c.jsonl"
        spec = pair_spec()
        target = spec.cells()[0].cell_id[:12]
        faults.install(
            parse_plan(f"site=cell-body,kind=exception,cells={target}")
        )
        policy = ExecutionPolicy(
            on_error="quarantine", backoff_base_s=0.001, backoff_cap_s=0.01
        )
        result = run_campaign(spec, workers=1, results=results, policy=policy)
        assert len(result.quarantined) == 1
        back = round_trip(tmp_path, results)
        assert filecmp.cmp(results, back, shallow=False)
        assert filecmp.cmp(
            quarantine_path_for(results), quarantine_path_for(back), shallow=False
        )

    def test_sqlite_origin_round_trips_byte_identical(self, tmp_path):
        """store -> jsonl -> store -> jsonl: the two exports must agree."""
        store_path = tmp_path / "c.sqlite"
        run_campaign(pair_spec(), workers=1, results=store_path)
        first = tmp_path / "out.jsonl"
        export_jsonl(store_path, first)
        second_store = tmp_path / "again.sqlite"
        import_jsonl(first, second_store)
        second = tmp_path / "out2.jsonl"
        export_jsonl(second_store, second)
        assert filecmp.cmp(first, second, shallow=False)


class TestImportExport:
    def test_import_summary(self, tmp_path):
        results = tmp_path / "c.jsonl"
        run_campaign(pair_spec(), workers=1, results=results)
        summary = import_jsonl(results, tmp_path / "c.sqlite")
        assert summary["direction"] == "jsonl->sqlite"
        assert summary["records"] == 4
        assert summary["manifest"] is True
        with CampaignStore(tmp_path / "c.sqlite") as store:
            [row] = store.campaigns()
            assert row["status"] == "imported"
            assert row["campaign_id"] == summary["campaign_id"]

    def test_import_without_sidecars_derives_an_id(self, tmp_path):
        results = tmp_path / "c.jsonl"
        run_campaign(pair_spec(), workers=1, results=results)
        telemetry.manifest_path_for(results).unlink()
        summary = import_jsonl(results, tmp_path / "c.sqlite")
        assert summary["campaign_id"].startswith("import-")
        assert summary["manifest"] is False

    def test_export_defaults_to_latest_campaign(self, tmp_path):
        store_path = tmp_path / "c.sqlite"
        run_campaign(pair_spec(), workers=1, results=store_path)
        latest = run_campaign(
            pair_spec(schemes=("reconvergence",)), workers=1, results=store_path
        )
        summary = export_jsonl(store_path, tmp_path / "out.jsonl")
        assert summary["campaign_id"] == latest.campaign_id
        assert summary["records"] == 2

    def test_export_by_unique_prefix(self, tmp_path):
        store_path = tmp_path / "c.sqlite"
        result = run_campaign(pair_spec(), workers=1, results=store_path)
        summary = export_jsonl(
            store_path, tmp_path / "out.jsonl", campaign_id=result.campaign_id[:6]
        )
        assert summary["campaign_id"] == result.campaign_id

    def test_export_unknown_campaign_errors(self, tmp_path):
        store_path = tmp_path / "c.sqlite"
        run_campaign(pair_spec(), workers=1, results=store_path)
        with pytest.raises(ExperimentError):
            export_jsonl(store_path, tmp_path / "out.jsonl", campaign_id="zzzz")


class TestDirectionDetection:
    def test_migrate_dispatches_on_suffix(self, tmp_path):
        results = tmp_path / "c.jsonl"
        run_campaign(pair_spec(), workers=1, results=results)
        forward = migrate(results, tmp_path / "c.sqlite")
        assert forward["direction"] == "jsonl->sqlite"
        backward = migrate(tmp_path / "c.sqlite", tmp_path / "out.jsonl")
        assert backward["direction"] == "sqlite->jsonl"

    def test_same_kind_on_both_sides_errors(self, tmp_path):
        with pytest.raises(ExperimentError):
            migrate(tmp_path / "a.jsonl", tmp_path / "b.jsonl")
        with pytest.raises(ExperimentError):
            migrate(tmp_path / "a.sqlite", tmp_path / "b.sqlite")
