"""Resident serve loop: session ops, error containment, socket transport."""

import json
import socket
import threading
import time

import pytest

from repro.errors import ReproError
from repro.runner import faults
from repro.runner.executor import run_campaign
from repro.runner.faults import parse_plan
from repro.store.serve import (
    MAX_LINE_BYTES,
    ServeSession,
    jobs_path_for,
    request,
    serve_forever,
    socket_alive,
    stream,
)

from tests.store.conftest import deterministic_part, pair_spec


@pytest.fixture
def session():
    session = ServeSession()
    yield session
    session.close()


class TestSessionOps:
    def test_ping_echoes_payload(self, session):
        response = session.handle({"op": "ping", "payload": 42})
        assert response == {"pong": True, "payload": 42, "ok": True}

    def test_unknown_op_lists_the_known_ones(self, session):
        response = session.handle({"op": "frobnicate"})
        assert response["ok"] is False
        assert "ping" in response["ops"]
        assert "query" in response["ops"]

    def test_warm_builds_engine_and_schemes(self, session):
        response = session.handle(
            {"op": "warm", "topology": "abilene", "schemes": ["reconvergence"]}
        )
        assert response["ok"] is True
        assert response["nodes"] > 0
        assert response["schemes_warm"] == 1

    def test_deliver_reports_stretch(self, session):
        baseline = session.handle({
            "op": "deliver",
            "topology": "fig1-example",
            "scheme": "reconvergence",
            "source": "A",
            "destination": "F",
        })
        assert baseline["ok"] is True
        assert baseline["delivered"] is True
        assert baseline["stretch"] == pytest.approx(1.0)

    def test_deliver_resolves_endpoint_pairs_to_edge_ids(self, session):
        response = session.handle({
            "op": "deliver",
            "topology": "fig1-example",
            "scheme": "reconvergence",
            "source": "A",
            "destination": "F",
            "failed": [["E", "F"]],
        })
        assert response["ok"] is True
        assert response["failed_links"], "the E-F link must resolve to an edge id"
        assert response["stretch"] >= 1.0

    def test_errors_come_back_as_responses(self, session):
        response = session.handle({
            "op": "deliver",
            "topology": "fig1-example",
            "scheme": "reconvergence",
            "source": "a",
            "destination": "no-such-node",
        })
        assert response["ok"] is False
        assert response["error"]
        # the session survives: the next request still works
        assert session.handle({"op": "ping"})["ok"] is True

    def test_query_against_a_store(self, session, tmp_path):
        store_path = tmp_path / "c.sqlite"
        run_campaign(pair_spec(), workers=1, results=store_path)
        response = session.handle({
            "op": "query",
            "results": str(store_path),
            "filter": "scheme=fcp campaign:last1",
        })
        assert response["ok"] is True
        assert response["records"] == 2
        with_rows = session.handle({
            "op": "query",
            "results": str(store_path),
            "aggregate": "summary",
            "include_records": True,
        })
        assert len(with_rows["matched"]) == 4
        assert with_rows["summary_rows"]

    def test_query_refuses_jsonl(self, session, tmp_path):
        results = tmp_path / "c.jsonl"
        run_campaign(pair_spec(), workers=1, results=results)
        response = session.handle({"op": "query", "results": str(results)})
        assert response["ok"] is False
        assert "migrate" in response["error"]

    def test_campaigns_listing(self, session, tmp_path):
        store_path = tmp_path / "c.sqlite"
        result = run_campaign(pair_spec(), workers=1, results=store_path)
        response = session.handle({"op": "campaigns", "results": str(store_path)})
        [row] = response["campaigns"]
        assert row["campaign_id"] == result.campaign_id

    def test_stats_reports_warm_state(self, session, tmp_path):
        store_path = tmp_path / "c.sqlite"
        run_campaign(pair_spec(), workers=1, results=store_path)
        session.handle({"op": "warm", "topology": "abilene",
                        "schemes": ["reconvergence"]})
        session.handle({"op": "query", "results": str(store_path)})
        stats = session.handle({"op": "stats"})
        assert stats["requests_served"] == 2
        assert any("abilene" in key for key in stats["warm_schemes"])
        assert str(store_path) in stats["open_stores"]


class TestSocketTransport:
    def test_request_response_over_unix_socket(self, tmp_path):
        socket_path = tmp_path / "serve.sock"
        ready = threading.Event()
        served = {}

        def run():
            served["count"] = serve_forever(socket_path, ready=ready)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(timeout=10)

        assert request(socket_path, {"op": "ping"})["pong"] is True
        bad = request(socket_path, {"op": "nope"})
        assert bad["ok"] is False
        shutdown = request(socket_path, {"op": "shutdown"})
        assert shutdown["shutdown"] is True
        thread.join(timeout=10)
        assert not thread.is_alive()
        # the unknown op is not counted as served — ping + shutdown only
        assert served["count"] == 2
        assert not socket_path.exists(), "socket must be unlinked on exit"


class SlowSession(ServeSession):
    """A session with a deliberately slow op, for deadline/backpressure tests."""

    def _op_slow(self, request):
        time.sleep(float(request.get("seconds", 0.5)))
        return {"slept": True}


class serving:
    """Context manager running ``serve_forever`` on a background thread."""

    def __init__(self, socket_path, session=None, **kwargs):
        self.socket_path = socket_path
        self.session = session
        self.kwargs = kwargs
        self.thread = None

    def __enter__(self):
        ready = threading.Event()
        self.thread = threading.Thread(
            target=serve_forever,
            args=(self.socket_path, self.session, ready),
            kwargs=self.kwargs,
            daemon=True,
        )
        self.thread.start()
        assert ready.wait(timeout=10), "serve loop never came up"
        return self

    def __exit__(self, *exc):
        try:
            request(self.socket_path, {"op": "shutdown"}, timeout=10)
        except ReproError:
            pass  # already down
        self.thread.join(timeout=10)
        assert not self.thread.is_alive(), "serve loop failed to stop"


def raw_exchange(socket_path, to_send, settle_s=0.0, timeout=10.0):
    """Send raw bytes, optionally wait, and read every response line."""
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.settimeout(timeout)
    client.connect(str(socket_path))
    try:
        client.sendall(to_send)
        if settle_s:
            time.sleep(settle_s)
        client.shutdown(socket.SHUT_WR)
        buffer = b""
        while True:
            chunk = client.recv(65536)
            if not chunk:
                break
            buffer += chunk
    finally:
        client.close()
    return [json.loads(line) for line in buffer.splitlines() if line.strip()]


class TestFailedLinkValidation:
    def test_booleans_are_rejected_as_edge_ids(self, session):
        response = session.handle({
            "op": "deliver",
            "topology": "fig1-example",
            "scheme": "reconvergence",
            "source": "A",
            "destination": "F",
            "failed": [True],
        })
        assert response["ok"] is False
        assert "boolean" in response["error"]
        # an honest integer edge id still works
        good = session.handle({
            "op": "deliver",
            "topology": "fig1-example",
            "scheme": "reconvergence",
            "source": "A",
            "destination": "F",
            "failed": [0],
        })
        assert good["ok"] is True


class TestHostileTransport:
    """Satellite: the loop answers or drops cleanly — it never dies."""

    @pytest.fixture
    def loop(self, tmp_path):
        with serving(tmp_path / "serve.sock") as loop:
            yield loop

    def test_oversized_line_is_rejected_and_dropped(self, loop):
        blob = b'{"op": "ping", "payload": "' + b"x" * (MAX_LINE_BYTES + 64)
        [response] = raw_exchange(loop.socket_path, blob)
        assert response["error_type"] == "LineTooLong"
        # the loop survives for the next client
        assert request(loop.socket_path, {"op": "ping"})["pong"] is True

    def test_pipelined_requests_are_answered_in_order(self, loop):
        wire = (
            b'{"op": "ping", "payload": 1}\n'
            b'{"op": "nope"}\n'
            b'{"op": "ping", "payload": 2}\n'
        )
        responses = raw_exchange(loop.socket_path, wire, settle_s=0.2)
        assert [r.get("payload") for r in responses] == [1, None, 2]
        assert responses[1]["ok"] is False

    def test_malformed_utf8_gets_an_error_response(self, loop):
        [response] = raw_exchange(loop.socket_path, b'{"op": "\xff\xfe"}\n',
                                  settle_s=0.2)
        assert response["ok"] is False
        assert response["error_type"] == "BadRequest"

    def test_non_object_json_gets_an_error_response(self, loop):
        [response] = raw_exchange(loop.socket_path, b'[1, 2, 3]\n', settle_s=0.2)
        assert response["error_type"] == "BadRequest"

    def test_mid_line_disconnect_is_dropped_quietly(self, loop):
        client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        client.connect(str(loop.socket_path))
        client.sendall(b'{"op": "ping", "pay')  # no newline, then vanish
        client.close()
        # the loop survives and still answers
        assert request(loop.socket_path, {"op": "ping"})["pong"] is True


class TestConcurrentTransport:
    def test_parallel_requests_all_succeed(self, tmp_path):
        with serving(tmp_path / "serve.sock", max_inflight=8) as loop:
            results = []

            def ask():
                results.append(request(loop.socket_path, {"op": "ping"}))

            threads = [threading.Thread(target=ask) for _ in range(12)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
            assert len(results) == 12
            assert all(r["pong"] for r in results)

    def test_overload_sheds_with_retry_after(self, tmp_path):
        session = SlowSession()
        with serving(tmp_path / "serve.sock", session,
                     max_inflight=1, deadline_s=None) as loop:
            outcomes = []

            def slow():
                outcomes.append(
                    request(loop.socket_path, {"op": "slow", "seconds": 0.6})
                )

            first = threading.Thread(target=slow)
            first.start()
            time.sleep(0.15)  # let the slow request occupy the only slot
            shed = request(loop.socket_path, {"op": "ping"})
            first.join(timeout=10)
            assert shed["ok"] is False
            assert shed["error_type"] == "Overloaded"
            assert shed["retry_after_s"] > 0
            assert outcomes[0]["slept"] is True
            stats = request(loop.socket_path, {"op": "stats"})
            assert stats["counters"]["serve/overloaded"] == 1

    def test_deadline_bounds_a_stuck_request(self, tmp_path):
        session = SlowSession()
        with serving(tmp_path / "serve.sock", session,
                     max_inflight=4, deadline_s=0.2) as loop:
            response = request(loop.socket_path, {"op": "slow", "seconds": 5})
            assert response["ok"] is False
            assert response["error_type"] == "DeadlineExceeded"
            # the loop is still healthy afterwards
            assert request(loop.socket_path, {"op": "ping"})["pong"] is True


class TestStaleSocket:
    """Satellite: ping before unlink — never clobber a live daemon."""

    def test_stale_socket_file_is_unlinked_and_replaced(self, tmp_path):
        socket_path = tmp_path / "serve.sock"
        leftover = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        leftover.bind(str(socket_path))
        leftover.close()  # bound then closed: the file remains, nobody listens
        assert socket_path.exists()
        assert not socket_alive(socket_path)
        with serving(socket_path) as loop:
            assert request(loop.socket_path, {"op": "ping"})["pong"] is True

    def test_live_daemon_is_not_clobbered(self, tmp_path):
        socket_path = tmp_path / "serve.sock"
        with serving(socket_path) as loop:
            assert socket_alive(socket_path)
            with pytest.raises(ReproError, match="refusing to clobber"):
                serve_forever(socket_path, ServeSession())
            # the incumbent survived the attempt
            assert request(loop.socket_path, {"op": "ping"})["pong"] is True


class TestClientHelpers:
    def test_unreachable_socket_raises_repro_error(self, tmp_path):
        with pytest.raises(ReproError, match="cannot reach"):
            request(tmp_path / "nope.sock", {"op": "ping"})

    def test_retries_cover_daemon_startup(self, tmp_path):
        socket_path = tmp_path / "late.sock"
        ready = threading.Event()

        def late_start():
            time.sleep(0.3)
            serve_forever(socket_path, ready=ready)

        thread = threading.Thread(target=late_start, daemon=True)
        thread.start()
        response = request(socket_path, {"op": "ping"},
                           retries=100, retry_delay_s=0.05)
        assert response["pong"] is True
        request(socket_path, {"op": "shutdown"})
        thread.join(timeout=10)

    def test_timeout_surfaces_with_socket_path(self, tmp_path):
        socket_path = tmp_path / "mute.sock"
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(str(socket_path))
        server.listen(1)
        try:
            with pytest.raises(ReproError, match="mute.sock"):
                request(socket_path, {"op": "ping"}, timeout=0.3)
        finally:
            server.close()

    def test_full_response_is_reassembled_from_tiny_chunks(self, tmp_path):
        socket_path = tmp_path / "dribble.sock"
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(str(socket_path))
        server.listen(1)
        payload = (json.dumps({"ok": True, "blob": "z" * 2000}) + "\n").encode()

        def dribble():
            conn, _ = server.accept()
            conn.recv(65536)
            for i in range(0, len(payload), 7):  # 7-byte fragments
                conn.sendall(payload[i : i + 7])
            conn.close()

        thread = threading.Thread(target=dribble, daemon=True)
        thread.start()
        try:
            response = request(socket_path, {"op": "ping"}, timeout=10)
            assert response["ok"] is True
            assert len(response["blob"]) == 2000
        finally:
            server.close()
            thread.join(timeout=10)


class TestAsyncSubmit:
    """Tentpole: journaled submit, job lifecycle ops, drain, follow."""

    @pytest.fixture
    def job_session(self, tmp_path):
        session = ServeSession(jobs_path=tmp_path / "jobs.sqlite")
        yield session
        session.close()

    def test_submit_queues_and_drains_identical_records(self, tmp_path, job_session):
        spec = pair_spec()
        clean = run_campaign(spec, workers=1)
        store_path = tmp_path / "results.sqlite"
        submitted = job_session.handle({
            "op": "submit", "spec": spec.to_dict(), "results": str(store_path),
        })
        assert submitted["ok"], submitted
        assert submitted["state"] == "queued"
        done = job_session.handle({
            "op": "job", "job_id": submitted["job_id"], "wait_s": 60,
        })
        assert done["job"]["state"] == "done"
        assert done["job"]["executed"] == spec.cell_count()
        assert done["job"]["progress"]["done"] == spec.cell_count()
        queried = job_session.handle({
            "op": "query", "results": str(store_path),
            "filter": "campaign:last1", "include_records": True,
        })
        assert deterministic_part(queried["matched"]) == deterministic_part(
            clean.records
        )

    def test_async_submit_requires_a_sqlite_results_path(self, job_session):
        response = job_session.handle({
            "op": "submit", "spec": pair_spec().to_dict(),
        })
        assert response["ok"] is False
        assert "SQLite store path" in response["error"]

    def test_sync_flag_falls_back_to_blocking_run(self, job_session):
        response = job_session.handle({
            "op": "submit", "spec": pair_spec().to_dict(), "sync": True,
        })
        assert response["ok"] is True
        assert response["executed"] == pair_spec().cell_count()

    def test_bad_policy_is_rejected_before_journaling(self, tmp_path, job_session):
        response = job_session.handle({
            "op": "submit", "spec": pair_spec().to_dict(),
            "results": str(tmp_path / "r.sqlite"),
            "policy": {"max_retires": 3},  # typo'd field
        })
        assert response["ok"] is False
        assert "max_retires" in response["error"]
        listing = job_session.handle({"op": "jobs"})
        assert listing["count"] == 0, "a rejected submit must not journal"

    def test_full_queue_sheds_submit(self, tmp_path):
        session = ServeSession(jobs_path=tmp_path / "jobs.sqlite",
                               max_queued_jobs=0)
        try:
            response = session.handle({
                "op": "submit", "spec": pair_spec().to_dict(),
                "results": str(tmp_path / "r.sqlite"),
            })
            assert response["ok"] is False
            assert response["error_type"] == "Overloaded"
            assert response["retry_after_s"] > 0
        finally:
            session.close()

    def test_cancel_a_queued_job(self, tmp_path):
        # No worker running: handle the journal directly so the job stays
        # queued long enough to cancel deterministically.
        session = ServeSession(jobs_path=tmp_path / "jobs.sqlite")
        try:
            submitted = session.handle({
                "op": "submit", "spec": pair_spec().to_dict(),
                "results": str(tmp_path / "r.sqlite"),
            })
            assert submitted["ok"], submitted
            session._worker.stop()  # freeze the queue for the test
            session._worker.join(timeout=10)
            if session.handle({"op": "job", "job_id": submitted["job_id"]})[
                "job"
            ]["state"] == "queued":
                cancelled = session.handle({
                    "op": "cancel", "job_id": submitted["job_id"],
                })
                assert cancelled["job"]["state"] == "cancelled"
            listing = session.handle({"op": "jobs", "state": "cancelled"})
            assert listing["count"] in (0, 1)
        finally:
            session.close()

    def test_jobs_listing_and_stats(self, tmp_path, job_session):
        store_path = tmp_path / "results.sqlite"
        submitted = job_session.handle({
            "op": "submit", "spec": pair_spec().to_dict(),
            "results": str(store_path),
        })
        job_session.handle({
            "op": "job", "job_id": submitted["job_id"], "wait_s": 60,
        })
        listing = job_session.handle({"op": "jobs"})
        assert listing["count"] == 1
        assert listing["jobs"][0]["state"] == "done"
        stats = job_session.handle({"op": "stats"})
        assert stats["jobs"]["by_state"] == {"done": 1}
        assert stats["counters"]["serve/jobs_submitted"] == 1
        assert stats["counters"]["serve/jobs_completed"] == 1

    def test_follow_streams_snapshots_over_the_socket(self, tmp_path):
        socket_path = tmp_path / "serve.sock"
        session = ServeSession(jobs_path=tmp_path / "jobs.sqlite")
        with serving(socket_path, session) as loop:
            submitted = request(loop.socket_path, {
                "op": "submit", "spec": pair_spec().to_dict(),
                "results": str(tmp_path / "results.sqlite"),
            })
            assert submitted["ok"], submitted
            snapshots = list(stream(loop.socket_path, {
                "op": "job", "job_id": submitted["job_id"], "follow": True,
            }, timeout=60))
            assert snapshots, "follow must yield at least one snapshot"
            assert snapshots[-1]["job"]["state"] == "done"
            assert snapshots[-1]["final"] is True

    def test_jobs_default_path_derives_from_socket(self):
        assert jobs_path_for(".repro-serve.sock").name == ".repro-serve.jobs.sqlite"
        assert jobs_path_for("daemon").name == "daemon.jobs.sqlite"


class TestServeFaultSites:
    """The daemon's fault checkpoints: contained, never fatal to the loop."""

    @pytest.fixture(autouse=True)
    def clean_faults(self):
        faults.install(None)
        yield
        faults.install(None)

    def test_serve_request_fault_becomes_an_error_response(self, session):
        faults.install(parse_plan("site=serve-request,kind=exception,times=1"))
        response = session.handle({"op": "ping"})
        assert response["ok"] is False
        assert response["error_type"] == "InjectedFault"
        # one-shot plan exhausted: the session keeps serving
        assert session.handle({"op": "ping"})["ok"] is True

    def test_job_journal_fault_fails_the_submit_without_a_row(self, tmp_path):
        session = ServeSession(jobs_path=tmp_path / "jobs.sqlite")
        try:
            faults.install(parse_plan("site=job-journal,kind=exception,times=1"))
            response = session.handle({
                "op": "submit", "spec": pair_spec().to_dict(),
                "results": str(tmp_path / "r.sqlite"),
            })
            assert response["ok"] is False
            assert response["error_type"] == "InjectedFault"
            assert session.handle({"op": "jobs"})["count"] == 0
        finally:
            session.close()
