"""Resident serve loop: session ops, error containment, socket transport."""

import threading

import pytest

from repro.runner.executor import run_campaign
from repro.store.serve import ServeSession, request, serve_forever

from tests.store.conftest import pair_spec


@pytest.fixture
def session():
    session = ServeSession()
    yield session
    session.close()


class TestSessionOps:
    def test_ping_echoes_payload(self, session):
        response = session.handle({"op": "ping", "payload": 42})
        assert response == {"pong": True, "payload": 42, "ok": True}

    def test_unknown_op_lists_the_known_ones(self, session):
        response = session.handle({"op": "frobnicate"})
        assert response["ok"] is False
        assert "ping" in response["ops"]
        assert "query" in response["ops"]

    def test_warm_builds_engine_and_schemes(self, session):
        response = session.handle(
            {"op": "warm", "topology": "abilene", "schemes": ["reconvergence"]}
        )
        assert response["ok"] is True
        assert response["nodes"] > 0
        assert response["schemes_warm"] == 1

    def test_deliver_reports_stretch(self, session):
        baseline = session.handle({
            "op": "deliver",
            "topology": "fig1-example",
            "scheme": "reconvergence",
            "source": "A",
            "destination": "F",
        })
        assert baseline["ok"] is True
        assert baseline["delivered"] is True
        assert baseline["stretch"] == pytest.approx(1.0)

    def test_deliver_resolves_endpoint_pairs_to_edge_ids(self, session):
        response = session.handle({
            "op": "deliver",
            "topology": "fig1-example",
            "scheme": "reconvergence",
            "source": "A",
            "destination": "F",
            "failed": [["E", "F"]],
        })
        assert response["ok"] is True
        assert response["failed_links"], "the E-F link must resolve to an edge id"
        assert response["stretch"] >= 1.0

    def test_errors_come_back_as_responses(self, session):
        response = session.handle({
            "op": "deliver",
            "topology": "fig1-example",
            "scheme": "reconvergence",
            "source": "a",
            "destination": "no-such-node",
        })
        assert response["ok"] is False
        assert response["error"]
        # the session survives: the next request still works
        assert session.handle({"op": "ping"})["ok"] is True

    def test_query_against_a_store(self, session, tmp_path):
        store_path = tmp_path / "c.sqlite"
        run_campaign(pair_spec(), workers=1, results=store_path)
        response = session.handle({
            "op": "query",
            "results": str(store_path),
            "filter": "scheme=fcp campaign:last1",
        })
        assert response["ok"] is True
        assert response["records"] == 2
        with_rows = session.handle({
            "op": "query",
            "results": str(store_path),
            "aggregate": "summary",
            "include_records": True,
        })
        assert len(with_rows["matched"]) == 4
        assert with_rows["summary_rows"]

    def test_query_refuses_jsonl(self, session, tmp_path):
        results = tmp_path / "c.jsonl"
        run_campaign(pair_spec(), workers=1, results=results)
        response = session.handle({"op": "query", "results": str(results)})
        assert response["ok"] is False
        assert "migrate" in response["error"]

    def test_campaigns_listing(self, session, tmp_path):
        store_path = tmp_path / "c.sqlite"
        result = run_campaign(pair_spec(), workers=1, results=store_path)
        response = session.handle({"op": "campaigns", "results": str(store_path)})
        [row] = response["campaigns"]
        assert row["campaign_id"] == result.campaign_id

    def test_stats_reports_warm_state(self, session, tmp_path):
        store_path = tmp_path / "c.sqlite"
        run_campaign(pair_spec(), workers=1, results=store_path)
        session.handle({"op": "warm", "topology": "abilene",
                        "schemes": ["reconvergence"]})
        session.handle({"op": "query", "results": str(store_path)})
        stats = session.handle({"op": "stats"})
        assert stats["requests_served"] == 2
        assert any("abilene" in key for key in stats["warm_schemes"])
        assert str(store_path) in stats["open_stores"]


class TestSocketTransport:
    def test_request_response_over_unix_socket(self, tmp_path):
        socket_path = tmp_path / "serve.sock"
        ready = threading.Event()
        served = {}

        def run():
            served["count"] = serve_forever(socket_path, ready=ready)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(timeout=10)

        assert request(socket_path, {"op": "ping"})["pong"] is True
        bad = request(socket_path, {"op": "nope"})
        assert bad["ok"] is False
        shutdown = request(socket_path, {"op": "shutdown"})
        assert shutdown["shutdown"] is True
        thread.join(timeout=10)
        assert not thread.is_alive()
        # the unknown op is not counted as served — ping + shutdown only
        assert served["count"] == 2
        assert not socket_path.exists(), "socket must be unlinked on exit"
