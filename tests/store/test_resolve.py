"""resolve_results: the one results-argument resolver the CLI shares."""

import pytest

from repro.errors import ExperimentError
from repro.runner.executor import run_campaign
from repro.store.resolve import classify_results_path, resolve_results
from repro.telemetry import merge as telemetry

from tests.store.conftest import pair_spec


class TestClassification:
    @pytest.mark.parametrize("name,kind", [
        ("c.sqlite", "store"),
        ("c.sqlite3", "store"),
        ("c.db", "store"),
        ("c.jsonl", "jsonl"),
        ("c.telemetry.json", "manifest"),
        ("manifest.json", "manifest"),
        ("results.out", "jsonl"),
    ])
    def test_suffix_classification(self, name, kind):
        assert classify_results_path(name) == kind

    def test_missing_file_errors_by_default(self, tmp_path):
        with pytest.raises(ExperimentError, match="no such"):
            resolve_results(tmp_path / "absent.jsonl")
        resolved = resolve_results(tmp_path / "absent.jsonl", must_exist=False)
        assert resolved.kind == "jsonl"


class TestResolvedViews:
    def test_jsonl_records_and_manifest(self, tmp_path):
        results = tmp_path / "c.jsonl"
        run_campaign(pair_spec(), workers=1, results=results)
        with resolve_results(results) as resolved:
            assert resolved.kind == "jsonl"
            assert len(resolved.records()) == 4
            assert len(resolved.records("scheme=fcp")) == 2
            assert resolved.manifest()["campaign"]["cells"] == 4
            [row] = resolved.campaigns()
            assert row["records"] == 4

    def test_jsonl_manifest_rebuilt_without_sidecar(self, tmp_path):
        results = tmp_path / "c.jsonl"
        run_campaign(pair_spec(), workers=1, results=results)
        telemetry.manifest_path_for(results).unlink()
        with resolve_results(results) as resolved:
            # rebuilt from records: no campaign identity, but full counters
            manifest = resolved.manifest()
            assert manifest["records"]["total"] == 4
            assert manifest["counters"]["cells/executed"] == 4

    def test_store_records_and_manifest(self, tmp_path):
        store_path = tmp_path / "c.sqlite"
        result = run_campaign(pair_spec(), workers=1, results=store_path)
        with resolve_results(store_path) as resolved:
            assert resolved.kind == "store"
            assert len(resolved.records("campaign:last1")) == 4
            assert resolved.manifest()["campaign"]["spec_hash"] == result.campaign_id
            [row] = resolved.campaigns()
            assert row["campaign_id"] == result.campaign_id

    def test_manifest_file_directly(self, tmp_path):
        results = tmp_path / "c.jsonl"
        run_campaign(pair_spec(), workers=1, results=results)
        sidecar = telemetry.manifest_path_for(results)
        with resolve_results(sidecar) as resolved:
            assert resolved.kind == "manifest"
            assert resolved.manifest()["campaign"]["cells"] == 4
            with pytest.raises(ExperimentError):
                resolved.records()

    def test_jsonl_store_property_refused(self, tmp_path):
        results = tmp_path / "c.jsonl"
        run_campaign(pair_spec(), workers=1, results=results)
        with resolve_results(results) as resolved:
            with pytest.raises(ExperimentError, match="not a SQLite"):
                resolved.store
