"""Manifest determinism: serial == parallel == resumed, telemetry on/off."""

import json

import pytest

from repro import telemetry
from repro.graph.spcache import clear_engines
from repro.runner.executor import _TOPOLOGY_CACHE, run_campaign, telemetry_manifest
from repro.runner.spec import CampaignSpec, ScenarioSpec


@pytest.fixture(autouse=True)
def enabled_telemetry():
    telemetry.set_enabled(True)
    yield
    telemetry.set_enabled(True)


def reset_process_caches():
    """Cold-start the per-process caches, like a fresh CLI invocation."""
    clear_engines()
    _TOPOLOGY_CACHE.clear()


def small_spec():
    return CampaignSpec(
        topologies=("fig1-example", "abilene"),
        schemes=("reconvergence", "pr"),
        scenarios=(ScenarioSpec("single-link"),),
        embedding_seed=0,
    )


def payload_lines(records):
    return [json.dumps(r["payload"], sort_keys=True) for r in records]


def run_fresh(tmp_path, name, workers, **kwargs):
    reset_process_caches()
    return run_campaign(
        small_spec(),
        workers=workers,
        cache_dir=tmp_path / f"cache-{name}",
        results=tmp_path / f"{name}.jsonl",
        **kwargs,
    )


class TestManifestSidecar:
    def test_sidecar_written_next_to_results(self, tmp_path):
        result = run_fresh(tmp_path, "serial", workers=1)
        assert result.telemetry_path == tmp_path / "serial.telemetry.json"
        manifest = telemetry.load_manifest(result.telemetry_path)
        assert manifest["schema"] == telemetry.MANIFEST_SCHEMA
        assert telemetry.validate_manifest(manifest) == []
        assert manifest["records"]["total"] == len(result.records)
        assert manifest["records"]["with_telemetry"] == len(result.records)
        assert manifest["campaign"]["spec_hash"] == small_spec().spec_hash()

    def test_manifest_path_for(self):
        from pathlib import Path

        assert telemetry.manifest_path_for("out/run.jsonl") == Path(
            "out/run.telemetry.json"
        )
        assert telemetry.manifest_path_for("run.results") == Path(
            "run.results.telemetry.json"
        )

    def test_expected_counters_present(self, tmp_path):
        result = run_fresh(tmp_path, "serial", workers=1)
        counters = telemetry.load_manifest(result.telemetry_path)["counters"]
        assert counters["cells/executed"] == len(result.records)
        assert counters["engine/builds"] > 0
        assert counters["engine/hits"] > 0
        assert counters["outcome_memo/misses"] > 0
        # pr cells went through the artifact cache (cold: one miss + store).
        assert counters["artifact_cache/misses"] > 0
        assert counters["artifact_cache/write_bytes"] > 0


class TestDeterminism:
    def test_serial_parallel_resumed_merge_identically(self, tmp_path):
        serial = run_fresh(tmp_path, "serial", workers=1)
        parallel = run_fresh(tmp_path, "parallel", workers=2)

        # Resumed: truncate the serial JSONL at the topology boundary (the
        # per-topology caches make within-topology hit/miss attribution
        # depend on which sibling cells already ran) and re-run the rest
        # from cold caches.
        resumed_path = tmp_path / "resumed.jsonl"
        first_topology = small_spec().topologies[0]
        kept = [
            line
            for line in (tmp_path / "serial.jsonl").read_text().splitlines()
            if json.loads(line)["topology"] == first_topology
        ]
        assert 0 < len(kept) < len(serial.records)
        resumed_path.write_text("".join(line + "\n" for line in kept))
        reset_process_caches()
        resumed = run_campaign(
            small_spec(),
            workers=1,
            cache_dir=tmp_path / "cache-resumed",
            results=resumed_path,
            resume=True,
        )
        assert resumed.skipped == len(kept)
        assert resumed.executed == len(serial.records) - len(kept)

        views = [
            telemetry.canonical_bytes(
                telemetry.deterministic_view(telemetry.load_manifest(r.telemetry_path))
            )
            for r in (serial, parallel, resumed)
        ]
        assert views[0] == views[1]
        assert views[0] == views[2]

    def test_payloads_identical_with_telemetry_on_or_off(self, tmp_path):
        on = run_fresh(tmp_path, "on", workers=1)
        telemetry.set_enabled(False)
        off = run_fresh(tmp_path, "off", workers=1)
        telemetry.set_enabled(True)
        assert payload_lines(on.records) == payload_lines(off.records)
        assert all("telemetry" in r["meta"] for r in on.records)
        assert all("telemetry" not in r["meta"] for r in off.records)
        manifest = telemetry.load_manifest(off.telemetry_path)
        assert manifest["records"]["with_telemetry"] == 0
        assert manifest["counters"] == {}

    def test_parallel_payloads_identical_with_telemetry_off(self, tmp_path):
        on = run_fresh(tmp_path, "on", workers=2)
        telemetry.set_enabled(False)
        off = run_fresh(tmp_path, "off", workers=2)
        telemetry.set_enabled(True)
        assert payload_lines(on.records) == payload_lines(off.records)
        assert all("telemetry" not in r["meta"] for r in off.records)


class TestCampaignResultViews:
    def test_merged_counters_cross_worker(self, tmp_path):
        """The satellite fix: parallel totals come from the merged snapshots.

        ``aggregate_cache_info()`` only ever sees the parent process's
        engines, which in a parallel campaign did none of the work; the
        merged per-cell snapshots carry every worker's counters.
        """
        parallel = run_fresh(tmp_path, "parallel", workers=2)
        counters = parallel.merged_counters()
        assert counters["engine/builds"] > 0
        assert counters["engine/hits"] > 0
        engine = parallel.engine_counters()
        assert engine["builds"] == counters["engine/builds"]
        assert set(engine) >= {"builds", "hits", "misses", "repair_hits",
                               "repair_fallbacks", "evictions"}

    def test_result_telemetry_matches_sidecar_counters(self, tmp_path):
        result = run_fresh(tmp_path, "serial", workers=1)
        in_memory = result.telemetry()
        on_disk = telemetry.load_manifest(result.telemetry_path)
        assert telemetry.deterministic_view(in_memory) == telemetry.deterministic_view(
            on_disk
        )
        assert in_memory is not None
        assert telemetry_manifest(result)["counters"] == on_disk["counters"]


class TestSlowestCells:
    def test_rows_sorted_by_elapsed_with_stable_ties(self):
        records = [
            {"cell_id": c, "topology": "t", "scheme": "s",
             "scenario_family": "single-link", "meta": {"elapsed_s": e}}
            for c, e in [("a", 1.0), ("b", 3.0), ("c", 1.0)]
        ]
        rows = telemetry.slowest_cells(records, limit=3)
        assert [row["cell_id"] for row in rows] == ["b", "a", "c"]
        assert telemetry.slowest_cells(records, limit=1)[0]["cell_id"] == "b"

    def test_phases_come_from_snapshot_spans(self, tmp_path):
        result = run_fresh(tmp_path, "serial", workers=1)
        rows = telemetry.slowest_cells(result.records, limit=2)
        assert rows[0]["elapsed_s"] >= rows[1]["elapsed_s"]
        assert any("delivery" in phase for row in rows for phase in row["phases"])


class TestValidation:
    def test_real_manifest_validates(self, tmp_path):
        result = run_fresh(tmp_path, "serial", workers=1)
        assert telemetry.validate_manifest(result.telemetry()) == []

    def test_problems_detected(self):
        manifest = {
            "schema": "bogus/v9",
            "counters": {"engine/hits": -1},
            "spans": {"weird": {"count": 1}},
            "campaign": [],
        }
        problems = telemetry.validate_manifest(manifest)
        text = "\n".join(problems)
        assert "schema" in text
        assert "cells/executed" in text
        assert "non-negative" in text
        assert "cell/" in text
        assert "missing required keys" in text
        assert "campaign" in text

    def test_empty_manifest_fails(self):
        assert telemetry.validate_manifest({}) != []


class TestReportRendering:
    def test_render_report_smoke(self, tmp_path):
        result = run_fresh(tmp_path, "serial", workers=1)
        text = telemetry.render_report(result.telemetry(), slowest=3)
        assert "phase-time breakdown" in text
        assert "cache efficiency" in text
        assert "slowest cells" in text
        assert "delivery/scheme=pr" in text

    def test_render_report_empty_manifest(self):
        text = telemetry.render_report(telemetry.build_manifest([]))
        assert "no telemetry recorded" in text
