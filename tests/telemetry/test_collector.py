"""Collector unit tests: spans, counters, distributions, enable/disable."""

import pytest

from repro import telemetry
from repro.telemetry.collector import (
    RESERVOIR_SIZE,
    Distribution,
    TelemetryCollector,
    _NULL_SPAN,
    _percentile,
)


@pytest.fixture(autouse=True)
def enabled_telemetry():
    """Every test starts (and leaves the process) with telemetry enabled."""
    telemetry.set_enabled(True)
    yield
    telemetry.set_enabled(True)


class TestCounters:
    def test_count_accumulates(self):
        collector = TelemetryCollector()
        with telemetry.collector_scope(collector):
            telemetry.count("a/b")
            telemetry.count("a/b", 4)
            telemetry.count("c")
        assert collector.counters == {"a/b": 5, "c": 1}

    def test_counters_with_prefix(self):
        counters = {"engine/hits": 3, "engine/misses": 1, "cells/executed": 2}
        assert telemetry.counters_with_prefix(counters, "engine/") == {
            "engine/hits": 3,
            "engine/misses": 1,
        }


class TestSpans:
    def test_span_records_under_its_name(self):
        collector = TelemetryCollector()
        with telemetry.collector_scope(collector):
            with telemetry.span("cell/topology_load"):
                pass
        [(path, entry)] = collector.spans.items()
        assert path == "cell/topology_load"
        assert entry[0] == 1
        assert entry[1] >= 0.0

    def test_nested_spans_join_paths(self):
        collector = TelemetryCollector()
        with telemetry.collector_scope(collector):
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    pass
        assert set(collector.spans) == {"outer", "outer/inner"}

    def test_span_aggregates_min_max(self):
        collector = TelemetryCollector()
        collector.record_span("x", 2.0)
        collector.record_span("x", 1.0)
        collector.record_span("x", 3.0)
        assert collector.spans["x"] == [3, 6.0, 1.0, 3.0]

    def test_exception_still_records_and_pops(self):
        collector = TelemetryCollector()
        with telemetry.collector_scope(collector):
            with pytest.raises(ValueError):
                with telemetry.span("boom"):
                    raise ValueError("x")
        assert collector.spans["boom"][0] == 1
        assert collector._span_stack == []


class TestDisabledFastPath:
    def test_disabled_span_is_shared_null(self):
        telemetry.set_enabled(False)
        assert telemetry.span("anything") is _NULL_SPAN
        assert telemetry.span("other") is _NULL_SPAN

    def test_disabled_primitives_are_noops(self):
        telemetry.set_enabled(False)
        telemetry.count("x")
        telemetry.record_value("y", 1.0)
        with telemetry.span("z"):
            pass
        assert telemetry.active_collector() is None
        assert not telemetry.enabled()

    def test_scope_restores_previous_collector(self):
        outer = telemetry.active_collector()
        inner = TelemetryCollector()
        with telemetry.collector_scope(inner):
            assert telemetry.active_collector() is inner
            with telemetry.collector_scope(None):
                assert not telemetry.enabled()
            assert telemetry.active_collector() is inner
        assert telemetry.active_collector() is outer


class TestDistribution:
    def test_add_and_summary(self):
        dist = Distribution()
        for value in [3.0, 1.0, 2.0]:
            dist.add(value)
        summary = dist.summary()
        assert summary["count"] == 3
        assert summary["sum"] == 6.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["p50"] == 2.0

    def test_reservoir_is_first_k(self):
        dist = Distribution()
        for value in range(RESERVOIR_SIZE + 100):
            dist.add(float(value))
        assert dist.count == RESERVOIR_SIZE + 100
        assert len(dist.reservoir) == RESERVOIR_SIZE
        assert dist.reservoir[0] == 0.0
        assert dist.reservoir[-1] == float(RESERVOIR_SIZE - 1)

    def test_merge_from_snapshot(self):
        a, b = Distribution(), Distribution()
        a.add(1.0)
        b.add(5.0)
        b.add(3.0)
        a.merge(b.to_dict())
        assert a.count == 3
        assert a.total == 9.0
        assert a.minimum == 1.0
        assert a.maximum == 5.0

    def test_merge_empty_is_noop(self):
        a = Distribution()
        a.add(2.0)
        a.merge(Distribution().to_dict())
        assert a.count == 1

    def test_percentile_nearest_rank(self):
        ordered = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(ordered, 0.0) == 1.0
        assert _percentile(ordered, 1.0) == 4.0
        assert _percentile(ordered, 0.5) == 3.0


class TestSnapshotMerge:
    def test_snapshot_round_trips_through_merge(self):
        collector = TelemetryCollector()
        collector.count("a", 2)
        collector.record_span("s", 1.5)
        collector.record_value("v", 4.0)
        merged = telemetry.merge_snapshots([collector.snapshot()])
        assert merged.counters == {"a": 2}
        assert merged.spans["s"] == [1, 1.5, 1.5, 1.5]
        assert merged.values["v"].total == 4.0

    def test_merge_order_independent_for_counters_and_spans(self):
        def snap(seconds):
            c = TelemetryCollector()
            c.count("n")
            c.record_span("s", seconds)
            return c.snapshot()

        one, two = snap(1.0), snap(2.0)
        forward = telemetry.merge_snapshots([one, two])
        backward = telemetry.merge_snapshots([two, one])
        assert forward.counters == backward.counters
        assert forward.spans == backward.spans
