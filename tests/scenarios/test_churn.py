"""Churn processes and the churn snapshot model."""

import random

import pytest

from repro.errors import ExperimentError
from repro.scenarios import (
    churn_events,
    churn_traces,
    down_links_at,
    get_scenario_model,
    gilbert_elliott_events,
    weibull_events,
)


def events_alternate(events, initially_up=True):
    state = initially_up
    for event in events:
        if event.up == state:
            return False
        state = event.up
    return True


class TestProcesses:
    @pytest.mark.parametrize("process", ["gilbert-elliott", "weibull"])
    def test_events_sorted_alternating_and_inside_horizon(self, process):
        events = churn_events(
            process, rng=random.Random(5), horizon=500.0, mean_up=10.0, mean_down=2.0
        )
        assert events  # 500s at ~12s per cycle flaps many times
        times = [event.time for event in events]
        assert times == sorted(times)
        assert all(0.0 < time < 500.0 for time in times)
        assert events_alternate(events)

    @pytest.mark.parametrize("process", ["gilbert-elliott", "weibull"])
    def test_deterministic_for_equal_rng_state(self, process):
        first = churn_events(
            process, rng=random.Random(9), horizon=200.0, mean_up=10.0, mean_down=2.0
        )
        second = churn_events(
            process, rng=random.Random(9), horizon=200.0, mean_up=10.0, mean_down=2.0
        )
        assert first == second

    def test_downtime_fraction_tracks_mean_ratio(self):
        # mean_down / (mean_up + mean_down) = 1/6; a long horizon should land
        # in the right neighbourhood for both processes.
        for process in ("gilbert-elliott", "weibull"):
            events = churn_events(
                process,
                rng=random.Random(1),
                horizon=50_000.0,
                mean_up=10.0,
                mean_down=2.0,
                step=0.1,
            )
            down = 0.0
            up_state, last = True, 0.0
            for event in events:
                if not up_state:
                    down += event.time - last
                up_state, last = event.up, event.time
            if not up_state:
                down += 50_000.0 - last
            assert 0.1 < down / 50_000.0 < 0.25, process

    def test_unknown_process_rejected(self):
        with pytest.raises(ExperimentError):
            churn_events(
                "markov", rng=random.Random(0), horizon=1.0, mean_up=1.0, mean_down=1.0
            )

    def test_bad_parameters_rejected(self):
        rng = random.Random(0)
        with pytest.raises(ExperimentError):
            gilbert_elliott_events(rng, horizon=0.0, mean_up=1.0, mean_down=1.0)
        with pytest.raises(ExperimentError):
            gilbert_elliott_events(rng, horizon=1.0, mean_up=-1.0, mean_down=1.0)
        with pytest.raises(ExperimentError):
            weibull_events(rng, horizon=1.0, mean_up=1.0, mean_down=1.0, shape=0.0)

    def test_non_finite_parameters_rejected(self):
        """A nan/inf horizon would make the event loops never terminate."""
        rng = random.Random(0)
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ExperimentError):
                gilbert_elliott_events(rng, horizon=bad, mean_up=1.0, mean_down=1.0)
            with pytest.raises(ExperimentError):
                weibull_events(rng, horizon=100.0, mean_up=bad, mean_down=1.0)


class TestTraces:
    def test_one_trace_per_link_and_seed_stability(self, abilene_graph):
        kwargs = dict(
            seed=3, process="weibull", horizon=100.0, mean_up=20.0, mean_down=4.0
        )
        traces = churn_traces(abilene_graph, **kwargs)
        assert sorted(traces) == abilene_graph.edge_ids()
        assert traces == churn_traces(abilene_graph, **kwargs)

    def test_down_links_at_start_is_empty(self, abilene_graph):
        traces = churn_traces(
            abilene_graph, seed=3, process="weibull", horizon=100.0,
            mean_up=20.0, mean_down=4.0,
        )
        assert down_links_at(traces, 0.0) == ()

    def test_down_links_follow_the_trace(self):
        from repro.failures.flapping import FlapEvent

        traces = {7: [FlapEvent(1.0, up=False), FlapEvent(3.0, up=True)]}
        assert down_links_at(traces, 0.5) == ()
        assert down_links_at(traces, 2.0) == (7,)
        assert down_links_at(traces, 3.5) == ()


class TestChurnModel:
    def test_snapshots_are_unique_failure_sets(self, geant_graph):
        model = get_scenario_model("churn")
        scenarios = model.generate(
            geant_graph,
            seed=11,
            samples=20,
            non_disconnecting=True,
            params=model.resolve_params({}),
        )
        sets = [s.failed_links for s in scenarios]
        assert len(set(sets)) == len(sets)
        assert all(sets)

    def test_process_param_changes_the_scenarios(self, geant_graph):
        model = get_scenario_model("churn")

        def run(process):
            return [
                s.failed_links
                for s in model.generate(
                    geant_graph,
                    seed=11,
                    samples=15,
                    non_disconnecting=True,
                    params=model.resolve_params({"process": process}),
                )
            ]

        assert run("gilbert-elliott") != run("weibull")
