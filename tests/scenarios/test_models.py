"""The built-in scenario models: determinism, validity, parameter handling."""

import pytest

from repro.errors import ExperimentError
from repro.failures.scenarios import validate_scenario
from repro.graph.connectivity import is_connected
from repro.scenarios import (
    available_scenario_models,
    edge_betweenness,
    get_scenario_model,
    hop_ball,
    registered_models,
)


def generate(name, graph, seed=1, samples=10, non_disconnecting=True, **params):
    model = get_scenario_model(name)
    resolved = model.resolve_params(params)
    return model.generate(
        graph,
        seed=seed,
        samples=samples,
        non_disconnecting=non_disconnecting,
        params=resolved,
    )


def failure_sets(scenarios):
    return [scenario.failed_links for scenario in scenarios]


class TestEveryModel:
    """Contract tests that every registered model must satisfy."""

    @pytest.fixture(params=available_scenario_models())
    def model_name(self, request):
        return request.param

    def test_deterministic_in_the_seed(self, model_name, abilene_graph):
        first = generate(model_name, abilene_graph, seed=7)
        second = generate(model_name, abilene_graph, seed=7)
        assert failure_sets(first) == failure_sets(second)
        assert [s.description for s in first] == [s.description for s in second]

    def test_produces_scenarios_with_defaults(self, model_name, abilene_graph):
        scenarios = generate(model_name, abilene_graph, samples=5)
        assert scenarios
        assert len(scenarios) <= 5

    def test_failed_links_exist_in_the_topology(self, model_name, geant_graph):
        for scenario in generate(model_name, geant_graph, samples=8):
            validate_scenario(geant_graph, scenario)
            assert len(scenario) >= 1

    def test_unknown_param_rejected(self, model_name):
        model = get_scenario_model(model_name)
        with pytest.raises(ExperimentError, match="unknown parameters"):
            model.resolve_params({"not-a-param": 1})

    def test_resolved_params_cover_declared_defaults(self, model_name):
        model = get_scenario_model(model_name)
        assert model.resolve_params({}) == model.default_params()
        assert model.summary

    def test_kind_matches_family(self, model_name, abilene_graph):
        for scenario in generate(model_name, abilene_graph, samples=3):
            assert scenario.kind == model_name


class TestParamCoercion:
    def test_string_numbers_coerce(self):
        model = get_scenario_model("srlg")
        assert model.resolve_params({"group_size": "4"})["group_size"] == 4

    def test_int_to_float_coerces(self):
        model = get_scenario_model("churn")
        assert model.resolve_params({"horizon": 100})["horizon"] == 100.0

    def test_fractional_to_int_rejected(self):
        model = get_scenario_model("srlg")
        with pytest.raises(ExperimentError, match="expects a int"):
            model.resolve_params({"group_size": 2.5})

    def test_infinite_value_on_int_param_rejected(self):
        """int(float('inf')) raises OverflowError, which must surface as the
        same clean error every other bad value gets."""
        model = get_scenario_model("srlg")
        with pytest.raises(ExperimentError, match="expects a int"):
            model.resolve_params({"group_size": float("inf")})

    def test_non_finite_floats_rejected(self):
        """nan/inf satisfy no ordering constraint and would spin the churn
        time loops forever."""
        model = get_scenario_model("churn")
        for bad in (float("nan"), float("inf"), "nan", "inf", "-inf"):
            with pytest.raises(ExperimentError, match="expects a float"):
                model.resolve_params({"horizon": bad})

    def test_bad_value_constraint_rejected(self):
        with pytest.raises(ExperimentError):
            get_scenario_model("srlg").resolve_params({"group_size": 0})
        with pytest.raises(ExperimentError):
            get_scenario_model("weighted").resolve_params({"by": "astrology"})
        with pytest.raises(ExperimentError):
            get_scenario_model("churn").resolve_params({"process": "markov"})
        with pytest.raises(ExperimentError):
            get_scenario_model("regional").resolve_params({"radius": 0})
        with pytest.raises(ExperimentError):
            get_scenario_model("maintenance").resolve_params({"stride": 0})

    def test_every_declared_param_documented(self):
        for model in registered_models():
            for param in model.params:
                assert param.doc


class TestSrlg:
    def test_groups_partition_the_links(self, abilene_graph):
        scenarios = generate(
            "srlg", abilene_graph, samples=100, non_disconnecting=False
        )
        covered = [e for s in scenarios for e in s.failed_links]
        assert sorted(covered) == abilene_graph.edge_ids()

    def test_group_size_respected(self, geant_graph):
        for scenario in generate("srlg", geant_graph, samples=5, group_size=4):
            assert len(scenario) <= 4

    def test_non_disconnecting_filter(self, abilene_graph):
        for scenario in generate("srlg", abilene_graph, samples=100):
            assert is_connected(abilene_graph, scenario.failed_links)


class TestRegional:
    def test_radius_one_is_a_node_failure(self, abilene_graph):
        scenarios = generate(
            "regional", abilene_graph, samples=100, non_disconnecting=False
        )
        incident_sets = {
            tuple(sorted(abilene_graph.incident_edge_ids(node)))
            for node in abilene_graph.nodes()
        }
        for scenario in scenarios:
            assert scenario.failed_links in incident_sets

    def test_radius_two_contains_radius_one(self, abilene_graph):
        narrow = generate("regional", abilene_graph, seed=3, samples=1)
        wide = generate("regional", abilene_graph, seed=3, samples=1, radius=2)
        assert set(narrow[0].failed_links) <= set(wide[0].failed_links)

    def test_epicenters_not_repeated(self, geant_graph):
        scenarios = generate("regional", geant_graph, samples=1000)
        descriptions = [s.description for s in scenarios]
        assert len(set(descriptions)) == len(descriptions)
        assert len(scenarios) <= geant_graph.number_of_nodes()

    def test_hop_ball(self, abilene_graph):
        assert hop_ball(abilene_graph, "Seattle", 0) == {"Seattle"}
        ball = hop_ball(abilene_graph, "Seattle", 1)
        assert ball == {"Seattle", "Sunnyvale", "Denver"}

    def test_no_duplicate_failure_sets(self, abilene_graph):
        """Overlapping balls from distinct epicenters must not be measured
        twice (radius 4 on Abilene collapses many epicenters to one set)."""
        scenarios = generate(
            "regional", abilene_graph, samples=100, radius=4,
            non_disconnecting=False,
        )
        sets = [s.failed_links for s in scenarios]
        assert len(set(sets)) == len(sets)

    def test_total_outage_rejected_when_non_disconnecting(self, abilene_graph):
        """A region swallowing the whole network is the strongest possible
        disconnection, not a vacuously acceptable one."""
        every_link = tuple(abilene_graph.edge_ids())
        for scenario in generate(
            "regional", abilene_graph, samples=100, radius=4
        ):
            assert scenario.failed_links != every_link


class TestWeighted:
    def test_betweenness_counts_paths(self, square_graph):
        counts = edge_betweenness(square_graph)
        # On the 4-cycle the 8 adjacent ordered pairs use 1 edge and the 4
        # opposite pairs use 2, so the edge counts total 16.  Deterministic
        # tie-breaking concentrates the opposite-pair paths on the
        # lexicographically favoured edges, but every edge carries at least
        # its own two adjacent pairs.
        assert sum(counts.values()) == 8 * 1 + 4 * 2
        assert all(count >= 2 for count in counts.values())

    def test_failures_param_sets_scenario_size(self, geant_graph):
        for scenario in generate("weighted", geant_graph, samples=6, failures=3):
            assert len(scenario) == 3

    def test_too_many_failures_rejected(self, abilene_graph):
        with pytest.raises(ExperimentError, match="cannot fail"):
            generate("weighted", abilene_graph, failures=100)

    def test_zero_weight_pool_exhaustion_rejected(self):
        """A heavy edge bypassed by every shortest path has betweenness 0;
        asking for more failures than there are drawable links must error,
        not silently emit a milder scenario."""
        from repro.graph.multigraph import Graph

        triangle = Graph.from_edge_list(
            [("a", "b", 1.0), ("b", "c", 1.0), ("a", "c", 9.0)], name="triangle"
        )
        with pytest.raises(ExperimentError, match="positive betweenness"):
            generate(
                "weighted", triangle, failures=3, non_disconnecting=False
            )

    def test_high_weight_links_sampled_more_often(self, abilene_graph):
        counts = edge_betweenness(abilene_graph)
        hottest = max(counts, key=lambda e: (counts[e], e))
        coldest = min(counts, key=lambda e: (counts[e], e))
        hot = cold = 0
        # 2-link scenarios so the sampler has 91 combinations to draw from
        # (single failures would exhaust all 14 links and equalise counts).
        for scenario in generate(
            "weighted", abilene_graph, samples=30, failures=2,
            non_disconnecting=False,
        ):
            hot += hottest in scenario.failed_links
            cold += coldest in scenario.failed_links
        assert hot > cold


class TestMaintenance:
    def test_stride_one_windows_overlap(self, abilene_graph):
        scenarios = generate(
            "maintenance", abilene_graph, samples=100, non_disconnecting=False,
            window=3, stride=1,
        )
        assert len(scenarios) == abilene_graph.number_of_edges()
        for before, after in zip(scenarios, scenarios[1:]):
            shared = set(before.failed_links) & set(after.failed_links)
            assert len(shared) == 2

    def test_oversized_window_rejected(self, abilene_graph):
        """Clamping would record cells whose params claim a regime the
        generator never measured — fail loudly like the weighted model."""
        with pytest.raises(ExperimentError, match="exceeds the"):
            generate(
                "maintenance", abilene_graph, window=20, non_disconnecting=False
            )

    def test_windows_never_shrink(self, abilene_graph):
        """The schedule is cyclic, so even the trailing windows fail exactly
        `window` links — never a silently milder remainder."""
        scenarios = generate(
            "maintenance", abilene_graph, samples=100, non_disconnecting=False,
            window=5, stride=1,
        )
        assert scenarios
        assert all(len(s) == 5 for s in scenarios)

    def test_stride_equal_window_partitions(self, abilene_graph):
        scenarios = generate(
            "maintenance", abilene_graph, samples=100, non_disconnecting=False,
            window=2, stride=2,
        )
        covered = [e for s in scenarios for e in s.failed_links]
        assert sorted(covered) == abilene_graph.edge_ids()
