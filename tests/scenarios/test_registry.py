"""Registry: lookup, registration, duplicate and unknown-name handling."""

import pytest

from repro.errors import ExperimentError
from repro.scenarios import (
    ScenarioModel,
    available_scenario_models,
    get_scenario_model,
    register_scenario_model,
    registered_models,
)
from repro.scenarios.registry import _REGISTRY

BUILTINS = ("churn", "maintenance", "regional", "srlg", "weighted")


class _Throwaway(ScenarioModel):
    name = "throwaway-test-model"
    summary = "only exists inside one test"

    def generate(self, graph, *, seed, samples, non_disconnecting, params):
        return []


@pytest.fixture
def throwaway():
    model = register_scenario_model(_Throwaway())
    try:
        yield model
    finally:
        _REGISTRY.pop(model.name, None)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_scenario_models()
        for name in BUILTINS:
            assert name in names

    def test_names_sorted_and_objects_aligned(self):
        names = available_scenario_models()
        assert names == sorted(names)
        assert [model.name for model in registered_models()] == names

    def test_lookup_returns_the_registered_object(self, throwaway):
        assert get_scenario_model(throwaway.name) is throwaway

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ExperimentError, match="registered:"):
            get_scenario_model("meteor-strike")

    def test_duplicate_name_rejected(self, throwaway):
        with pytest.raises(ExperimentError, match="already registered"):
            register_scenario_model(_Throwaway())

    def test_empty_name_rejected(self):
        class Nameless(_Throwaway):
            name = ""

        with pytest.raises(ExperimentError):
            register_scenario_model(Nameless())

    def test_custom_model_usable_in_a_spec(self, throwaway):
        from repro.runner.spec import ScenarioSpec

        spec = ScenarioSpec.for_model(throwaway.name)
        assert spec.model == throwaway.name
        assert spec.params == ()
