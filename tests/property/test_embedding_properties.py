"""Property-based tests for the embedding machinery."""

from hypothesis import given, settings

from repro.embedding.builder import CellularEmbedding
from repro.embedding.faces import euler_genus, trace_faces
from repro.embedding.genus import minimise_genus
from repro.embedding.planarity import planar_embedding
from repro.embedding.rotation import RotationSystem
from repro.embedding.serialization import embedding_from_dict, embedding_to_dict
from repro.embedding.validation import validate_embedding

from tests.property.strategies import connected_graphs, planar_two_connected_graphs


@settings(max_examples=25, deadline=None)
@given(graph=connected_graphs())
def test_any_rotation_system_is_a_valid_cellular_embedding(graph):
    """Every rotation system of a connected graph traces into a consistent
    face set satisfying the two-traversals-per-edge invariant and Euler's
    formula — the fact Section 3 relies on."""
    rotation = RotationSystem.from_adjacency_order(graph)
    faces = validate_embedding(graph, rotation)
    assert euler_genus(graph, faces) >= 0


@settings(max_examples=25, deadline=None)
@given(graph=planar_two_connected_graphs())
def test_planar_embedder_always_reaches_genus_zero(graph):
    rotation = planar_embedding(graph)
    faces = validate_embedding(graph, rotation)
    assert euler_genus(graph, faces) == 0
    # 2-connected planar embeddings have simple face boundaries, which is the
    # structural property PR's backup cycles rely on.
    assert all(len(set(face.nodes)) == len(face.nodes) for face in faces)


@settings(max_examples=20, deadline=None)
@given(graph=connected_graphs(max_nodes=8, max_extra_edges=6))
def test_minimise_genus_never_does_worse_than_adjacency_order(graph):
    baseline = trace_faces(RotationSystem.from_adjacency_order(graph))
    optimised = trace_faces(minimise_genus(graph, iterations=60, seed=1))
    assert len(optimised) >= len(baseline)


@settings(max_examples=20, deadline=None)
@given(graph=planar_two_connected_graphs(max_rows=3, max_cols=4))
def test_serialization_round_trip(graph):
    embedding = CellularEmbedding(graph, planar_embedding(graph))
    rebuilt = embedding_from_dict(embedding_to_dict(embedding))
    assert rebuilt.rotation == embedding.rotation
    assert rebuilt.number_of_faces == embedding.number_of_faces


@settings(max_examples=25, deadline=None)
@given(graph=connected_graphs())
def test_face_permutation_is_a_bijection_on_darts(graph):
    """next_in_face is a permutation: every dart has exactly one successor and
    one predecessor along its face."""
    rotation = RotationSystem.from_adjacency_order(graph)
    darts = rotation.darts()
    successors = [rotation.next_in_face(dart) for dart in darts]
    assert sorted(successors) == sorted(darts)
