"""Property-based tests for the graph substrate."""

from hypothesis import given, settings, strategies as st

from repro.graph.connectivity import bridges, is_connected
from repro.graph.shortest_paths import dijkstra

from tests.property.strategies import connected_graphs, weighted_connected_graphs


@settings(max_examples=30, deadline=None)
@given(graph=weighted_connected_graphs(), data=st.data())
def test_shortest_path_costs_are_symmetric(graph, data):
    """Undirected graphs with symmetric weights give symmetric distances."""
    nodes = graph.nodes()
    source = data.draw(st.sampled_from(nodes))
    target = data.draw(st.sampled_from(nodes))
    forward, _ = dijkstra(graph, source)
    backward, _ = dijkstra(graph, target)
    assert abs(forward[target] - backward[source]) < 1e-9


@settings(max_examples=30, deadline=None)
@given(graph=weighted_connected_graphs(), data=st.data())
def test_triangle_inequality(graph, data):
    """dist(a, c) <= dist(a, b) + dist(b, c) for every intermediate b."""
    nodes = graph.nodes()
    a = data.draw(st.sampled_from(nodes))
    b = data.draw(st.sampled_from(nodes))
    c = data.draw(st.sampled_from(nodes))
    dist_a, _ = dijkstra(graph, a)
    dist_b, _ = dijkstra(graph, b)
    assert dist_a[c] <= dist_a[b] + dist_b[c] + 1e-9


@settings(max_examples=30, deadline=None)
@given(graph=weighted_connected_graphs(), data=st.data())
def test_parent_pointers_reconstruct_consistent_costs(graph, data):
    """Walking the parent pointers accumulates exactly the reported distance."""
    nodes = graph.nodes()
    source = data.draw(st.sampled_from(nodes))
    dist, parent = dijkstra(graph, source)
    for node in nodes:
        if node == source:
            continue
        total = 0.0
        walk = node
        while walk != source:
            towards, edge_id = parent[walk]
            total += graph.weight(edge_id)
            walk = towards
        assert abs(total - dist[node]) < 1e-9


@settings(max_examples=30, deadline=None)
@given(graph=connected_graphs())
def test_bridges_are_exactly_the_disconnecting_edges(graph):
    """An edge is reported as a bridge iff removing it disconnects the graph."""
    reported = set(bridges(graph))
    for edge_id in graph.edge_ids():
        disconnects = not is_connected(graph, [edge_id])
        assert (edge_id in reported) == disconnects


@settings(max_examples=30, deadline=None)
@given(graph=connected_graphs())
def test_copy_round_trip_preserves_structure(graph):
    clone = graph.copy()
    assert clone.to_edge_list() == graph.to_edge_list()
    assert clone.nodes() == graph.nodes()
