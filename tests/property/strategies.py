"""Hypothesis strategies shared by the property-based test suites."""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.graph.multigraph import Graph
from repro.topologies.generators import random_connected_graph, random_planar_graph


@st.composite
def connected_graphs(draw, min_nodes: int = 4, max_nodes: int = 10, max_extra_edges: int = 8):
    """Small random connected graphs (spanning tree + random chords)."""
    size = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    extra = draw(st.integers(min_value=0, max_value=max_extra_edges))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_connected_graph(size, extra_edges=extra, seed=seed)


@st.composite
def planar_two_connected_graphs(draw, max_rows: int = 4, max_cols: int = 4):
    """Small random planar 2-edge-connected graphs (grids with diagonals)."""
    rows = draw(st.integers(min_value=2, max_value=max_rows))
    cols = draw(st.integers(min_value=2, max_value=max_cols))
    diagonals = draw(st.integers(min_value=0, max_value=(rows - 1) * (cols - 1)))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_planar_graph(rows, cols, extra_diagonals=diagonals, seed=seed)


@st.composite
def weighted_connected_graphs(draw, min_nodes: int = 4, max_nodes: int = 9):
    """Connected graphs with random positive integer weights."""
    graph = draw(connected_graphs(min_nodes=min_nodes, max_nodes=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    reweighted = Graph(graph.name)
    for node in graph.nodes():
        reweighted.ensure_node(node)
    for edge in graph.edges():
        reweighted.add_edge_with_id(edge.edge_id, edge.u, edge.v, float(rng.randint(1, 10)))
    return reweighted


@st.composite
def non_disconnecting_failure_sets(draw, graph: Graph, max_failures: int = 4):
    """A random failure set that keeps ``graph`` connected (may be empty)."""
    from repro.graph.connectivity import is_connected

    count = draw(st.integers(min_value=0, max_value=max_failures))
    edge_ids = graph.edge_ids()
    chosen: list[int] = []
    order = draw(st.permutations(edge_ids))
    for edge_id in order:
        if len(chosen) >= count:
            break
        if is_connected(graph, chosen + [edge_id]):
            chosen.append(edge_id)
    return tuple(sorted(chosen))
