"""Property-based tests of the Packet Re-cycling protocol guarantees.

The paper's central claims, checked on randomly generated planar
2-edge-connected topologies with randomly sampled non-disconnecting failure
combinations:

* every packet whose destination is still reachable is delivered (full repair
  coverage);
* forwarding terminates (no forwarding loops);
* the delivered path never crosses a failed link and its cost is at least the
  failure-free shortest path cost (stretch >= 1);
* failure-free forwarding is untouched by PR (identical to plain shortest
  paths).
"""

from hypothesis import given, settings, strategies as st

from repro.baselines.fcp import FailureCarryingPackets
from repro.core.scheme import PacketRecycling, SimplePacketRecycling
from repro.graph.connectivity import same_component
from repro.graph.shortest_paths import shortest_path_cost

from tests.property.strategies import non_disconnecting_failure_sets, planar_two_connected_graphs


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_pr_delivers_every_reachable_pair_without_loops(data):
    graph = data.draw(planar_two_connected_graphs(max_rows=3, max_cols=4))
    failures = data.draw(non_disconnecting_failure_sets(graph, max_failures=4))
    scheme = PacketRecycling(graph)
    nodes = graph.nodes()
    source = data.draw(st.sampled_from(nodes))
    destination = data.draw(st.sampled_from([node for node in nodes if node != source]))

    outcome = scheme.deliver(source, destination, failed_links=failures)

    assert outcome.delivered, (
        f"PR failed {source}->{destination} with failures {failures} "
        f"({outcome.status}, path {outcome.path})"
    )
    # The engine forbids forwarding onto failed links, so a delivered path is
    # failure-free by construction; re-check explicitly for documentation.
    for u, v in zip(outcome.path, outcome.path[1:]):
        usable = [
            edge_id for edge_id in graph.edge_ids_between(u, v) if edge_id not in failures
        ]
        assert usable
    assert outcome.cost >= shortest_path_cost(graph, source, destination) - 1e-9


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_pr_failure_free_forwarding_is_plain_shortest_path(data):
    graph = data.draw(planar_two_connected_graphs(max_rows=3, max_cols=3))
    scheme = PacketRecycling(graph)
    nodes = graph.nodes()
    source = data.draw(st.sampled_from(nodes))
    destination = data.draw(st.sampled_from([node for node in nodes if node != source]))
    outcome = scheme.deliver(source, destination)
    assert outcome.delivered
    assert outcome.cost == shortest_path_cost(graph, source, destination)
    assert outcome.counter("recycling_started") == 0


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_simple_pr_covers_every_single_failure(data):
    graph = data.draw(planar_two_connected_graphs(max_rows=3, max_cols=3))
    scheme = SimplePacketRecycling(graph)
    failed_edge = data.draw(st.sampled_from(graph.edge_ids()))
    nodes = graph.nodes()
    source = data.draw(st.sampled_from(nodes))
    destination = data.draw(st.sampled_from([node for node in nodes if node != source]))
    outcome = scheme.deliver(source, destination, failed_links=[failed_edge])
    assert outcome.delivered


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_pr_and_fcp_agree_on_reachability(data):
    """Both multi-failure-capable schemes deliver exactly the reachable pairs."""
    graph = data.draw(planar_two_connected_graphs(max_rows=3, max_cols=3))
    failures = data.draw(non_disconnecting_failure_sets(graph, max_failures=3))
    pr = PacketRecycling(graph)
    fcp = FailureCarryingPackets(graph)
    nodes = graph.nodes()
    source = data.draw(st.sampled_from(nodes))
    destination = data.draw(st.sampled_from([node for node in nodes if node != source]))
    reachable = same_component(graph, source, destination, failures)
    assert pr.deliver(source, destination, failed_links=failures).delivered == reachable
    assert fcp.deliver(source, destination, failed_links=failures).delivered == reachable


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_dd_bits_upper_bound_holds(data):
    """The DD value written by any router fits in the advertised field width."""
    import math

    from repro.routing.discriminator import DiscriminatorKind, discriminator_bits_required

    graph = data.draw(planar_two_connected_graphs(max_rows=3, max_cols=4))
    scheme = PacketRecycling(graph)
    bits = discriminator_bits_required(graph, DiscriminatorKind.HOP_COUNT)
    largest = max(
        scheme.routing.discriminator(node, destination)
        for node in graph.nodes()
        for destination in graph.nodes()
        if node != destination
    )
    assert largest <= 2 ** bits - 1
    assert scheme.header_overhead_bits() == 1 + bits
    assert bits <= math.ceil(math.log2(graph.number_of_nodes())) + 1
