"""Tests for CCDF and distribution summary helpers."""

import pytest

from repro.metrics.ccdf import (
    ccdf,
    ccdf_curve,
    default_stretch_thresholds,
    distribution_summary,
    percentile,
)


class TestCcdf:
    def test_point_ccdf(self):
        values = [1.0, 2.0, 2.0, 4.0]
        assert ccdf(values, 0.5) == 1.0
        assert ccdf(values, 1.0) == 0.75
        assert ccdf(values, 2.0) == 0.25
        assert ccdf(values, 4.0) == 0.0

    def test_empty_sample(self):
        assert ccdf([], 1.0) == 0.0

    def test_curve_is_monotone_decreasing(self):
        values = [1.0, 1.5, 2.0, 3.0, 8.0]
        curve = ccdf_curve(values, default_stretch_thresholds())
        probabilities = [probability for _x, probability in curve]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_curve_matches_point_function(self):
        values = [1.2, 2.5, 3.7, 3.7, 9.0]
        for threshold, probability in ccdf_curve(values, [1, 2, 3, 4, 10]):
            assert probability == pytest.approx(ccdf(values, threshold))

    def test_default_thresholds_span_figure_axis(self):
        thresholds = default_stretch_thresholds()
        assert thresholds[0] == 1.0 and thresholds[-1] == 15.0 and len(thresholds) == 15


class TestPercentile:
    def test_median_of_odd_sample(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_bounds(self):
        assert percentile([5.0, 7.0], 0.0) == 5.0
        assert percentile([5.0, 7.0], 1.0) == 7.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestSummary:
    def test_summary_fields(self):
        summary = distribution_summary([1.0, 2.0, 3.0, 4.0])
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["median"] == pytest.approx(2.5)
        assert summary["max"] == 4.0

    def test_empty_summary(self):
        summary = distribution_summary([])
        assert summary["count"] == 0 and summary["mean"] == 0.0
