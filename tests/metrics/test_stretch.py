"""Tests for stretch measurement."""

import pytest

from repro.forwarding.engine import DeliveryStatus, ForwardingOutcome
from repro.metrics.stretch import (
    StretchSample,
    collect_stretch_samples,
    loss_fraction,
    max_stretch,
    stretch_of_outcome,
    stretch_values,
)
from repro.failures.scenarios import all_affecting_pairs, single_link_failures
from repro.routing.tables import RoutingTables


def _outcome(delivered: bool, cost: float) -> ForwardingOutcome:
    return ForwardingOutcome(
        source="a",
        destination="b",
        status=DeliveryStatus.DELIVERED if delivered else DeliveryStatus.DROPPED,
        path=["a", "b"],
        cost=cost,
        hops=1,
    )


class TestStretchOfOutcome:
    def test_ratio_of_costs(self):
        assert stretch_of_outcome(_outcome(True, 30.0), 10.0) == pytest.approx(3.0)

    def test_undelivered_has_no_stretch(self):
        assert stretch_of_outcome(_outcome(False, 30.0), 10.0) is None

    def test_zero_baseline_guarded(self):
        assert stretch_of_outcome(_outcome(True, 30.0), 0.0) is None


class TestSampleHelpers:
    def _sample(self, stretch, delivered=True):
        return StretchSample(
            scheme="x", source="a", destination="b", failed_links=(0,),
            stretch=stretch, delivered=delivered, hops=1, cost=1.0, baseline_cost=1.0,
        )

    def test_values_ignore_losses(self):
        samples = [self._sample(2.0), self._sample(None, delivered=False)]
        assert stretch_values(samples) == [2.0]

    def test_loss_fraction(self):
        samples = [self._sample(2.0), self._sample(None, delivered=False)]
        assert loss_fraction(samples) == 0.5
        assert loss_fraction([]) == 0.0

    def test_max_stretch(self):
        samples = [self._sample(2.0), self._sample(7.5)]
        assert max_stretch(samples) == 7.5
        assert max_stretch([]) == 0.0


class TestCollectSamples:
    def test_samples_on_abilene_single_failures(self, abilene_graph, abilene_pr):
        tables = RoutingTables(abilene_graph)
        scenarios = single_link_failures(abilene_graph)[:3]
        pairs = {
            tuple(sorted(s.failed_links)): all_affecting_pairs(abilene_graph, s, tables)
            for s in scenarios
        }
        samples = collect_stretch_samples(
            abilene_pr, [s.failed_links for s in scenarios], pairs, tables
        )
        assert samples
        assert all(sample.delivered for sample in samples)
        assert all(sample.stretch >= 1.0 - 1e-9 for sample in samples)

    def test_baseline_cost_is_failure_free_cost(self, abilene_graph, abilene_pr, abilene_tables):
        scenario = single_link_failures(abilene_graph)[0]
        pairs = {tuple(scenario.failed_links): [("Seattle", "Sunnyvale")]}
        samples = collect_stretch_samples(
            abilene_pr, [scenario.failed_links], pairs, abilene_tables
        )
        assert samples[0].baseline_cost == pytest.approx(
            abilene_tables.cost("Seattle", "Sunnyvale")
        )
