"""Tests for the overhead comparison."""

from repro.baselines.fcp import FailureCarryingPackets
from repro.baselines.reconvergence import Reconvergence
from repro.metrics.overhead import overhead_comparison, render_overhead_table


class TestOverheadComparison:
    def test_one_row_per_scheme(self, abilene_graph, abilene_pr):
        rows = overhead_comparison(
            abilene_graph, [Reconvergence(abilene_graph), FailureCarryingPackets(abilene_graph), abilene_pr]
        )
        assert [row.scheme for row in rows] == [
            "Re-convergence",
            "Failure-Carrying Packets",
            "Packet Re-cycling",
        ]

    def test_pr_uses_fewer_header_bits_than_fcp_worst_case(self, abilene_graph, abilene_pr):
        rows = {
            row.scheme: row
            for row in overhead_comparison(
                abilene_graph, [FailureCarryingPackets(abilene_graph), abilene_pr]
            )
        }
        assert rows["Packet Re-cycling"].header_bits < rows["Failure-Carrying Packets"].header_bits

    def test_pr_has_no_online_computation(self, abilene_graph, abilene_pr):
        rows = {row.scheme: row for row in overhead_comparison(abilene_graph, [abilene_pr])}
        assert rows["Packet Re-cycling"].online_computation == 0

    def test_worst_case_failures_default_is_cycle_rank(self, abilene_graph):
        rows = overhead_comparison(abilene_graph, [FailureCarryingPackets(abilene_graph)])
        # cycle rank of Abilene = 14 - 11 + 1 = 4; 4 bits per link id.
        assert rows[0].header_bits == 4 * 4

    def test_render_table_contains_all_schemes(self, abilene_graph, abilene_pr):
        rows = overhead_comparison(abilene_graph, [Reconvergence(abilene_graph), abilene_pr])
        text = render_overhead_table("abilene", rows)
        assert "Re-convergence" in text and "Packet Re-cycling" in text
        assert "Header bits" in text
