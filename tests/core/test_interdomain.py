"""Tests for the multi-homed prefix extension (Section 7)."""

import pytest

from repro.core.interdomain import (
    InterdomainPacketRecycling,
    MultihomedPrefix,
    augment_with_prefixes,
)
from repro.errors import TopologyError


@pytest.fixture(scope="module")
def prefixes():
    return [
        MultihomedPrefix("10.0.0.0/8", (("NewYork", 10.0), ("LosAngeles", 20.0))),
        MultihomedPrefix("192.168.0.0/16", (("Washington", 5.0), ("Seattle", 5.0))),
    ]


@pytest.fixture(scope="module")
def interdomain(request, prefixes):
    abilene_graph = request.getfixturevalue("abilene_graph")
    return InterdomainPacketRecycling(abilene_graph, prefixes)


class TestAugmentation:
    def test_virtual_nodes_and_links_added(self, abilene_graph, prefixes):
        augmented, egress_edges = augment_with_prefixes(abilene_graph, prefixes)
        assert augmented.number_of_nodes() == abilene_graph.number_of_nodes() + 2
        assert augmented.number_of_edges() == abilene_graph.number_of_edges() + 4
        assert ("10.0.0.0/8", "NewYork") in egress_edges

    def test_base_graph_untouched(self, abilene_graph, prefixes):
        before = abilene_graph.number_of_edges()
        augment_with_prefixes(abilene_graph, prefixes)
        assert abilene_graph.number_of_edges() == before

    def test_unknown_egress_rejected(self, abilene_graph):
        bad = [MultihomedPrefix("x", (("Narnia", 1.0),))]
        with pytest.raises(TopologyError):
            augment_with_prefixes(abilene_graph, bad)

    def test_duplicate_prefix_rejected(self, abilene_graph):
        duplicated = [
            MultihomedPrefix("p", (("Seattle", 1.0),)),
            MultihomedPrefix("p", (("Denver", 1.0),)),
        ]
        with pytest.raises(TopologyError):
            augment_with_prefixes(abilene_graph, duplicated)


class TestForwarding:
    def test_failure_free_uses_preferred_egress(self, interdomain):
        outcome = interdomain.deliver("Washington", "10.0.0.0/8")
        assert outcome.delivered
        assert interdomain.exit_router(outcome) == "NewYork"
        assert interdomain.preferred_egress("Washington", "10.0.0.0/8") == "NewYork"

    def test_withdrawn_preferred_egress_falls_back_to_the_other_exit(self, interdomain):
        outcome = interdomain.deliver(
            "Washington", "10.0.0.0/8", withdrawn_egresses=["NewYork"]
        )
        assert outcome.delivered
        assert interdomain.exit_router(outcome) == "LosAngeles"

    def test_internal_failure_on_the_way_to_the_egress_is_recovered(self, interdomain, abilene_graph):
        failed = abilene_graph.edge_ids_between("Chicago", "NewYork")
        outcome = interdomain.deliver("Chicago", "10.0.0.0/8", failed_links=failed)
        assert outcome.delivered

    def test_withdrawing_every_egress_loses_the_packet(self, interdomain):
        outcome = interdomain.deliver(
            "Washington", "10.0.0.0/8", withdrawn_egresses=["NewYork", "LosAngeles"]
        )
        assert not outcome.delivered

    def test_unknown_prefix_rejected(self, interdomain):
        with pytest.raises(TopologyError):
            interdomain.deliver("Washington", "8.8.8.0/24")

    def test_unknown_withdrawal_rejected(self, interdomain):
        with pytest.raises(TopologyError):
            interdomain.deliver("Washington", "10.0.0.0/8", withdrawn_egresses=["Denver"])

    def test_header_budget_still_tiny(self, interdomain):
        assert interdomain.header_overhead_bits() <= 5

    def test_second_prefix_with_equal_cost_exits(self, interdomain):
        outcome = interdomain.deliver("KansasCity", "192.168.0.0/16")
        assert outcome.delivered
        assert interdomain.exit_router(outcome) in {"Washington", "Seattle"}
