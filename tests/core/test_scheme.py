"""Unit tests for the PacketRecycling scheme wrapper (overheads, construction)."""

import pytest

from repro.core.scheme import PacketRecycling, SimplePacketRecycling
from repro.embedding.builder import embed
from repro.routing.discriminator import DiscriminatorKind
from repro.topologies.generators import ring_graph


class TestConstruction:
    def test_embedding_computed_when_not_supplied(self):
        ring = ring_graph(5)
        scheme = PacketRecycling(ring)
        assert scheme.embedding.number_of_faces == 2

    def test_supplied_embedding_is_used(self, abilene_graph, abilene_embedding):
        scheme = PacketRecycling(abilene_graph, embedding=abilene_embedding)
        assert scheme.embedding is abilene_embedding

    def test_discriminator_kind_propagates(self, abilene_graph, abilene_embedding):
        scheme = PacketRecycling(
            abilene_graph,
            embedding=abilene_embedding,
            discriminator_kind=DiscriminatorKind.WEIGHTED_COST,
        )
        assert scheme.routing.discriminator_kind is DiscriminatorKind.WEIGHTED_COST


class TestOverheads:
    def test_header_bits_is_one_plus_dd_bits(self, abilene_pr):
        assert abilene_pr.header_overhead_bits() == 1 + abilene_pr.dd_bits()

    def test_abilene_header_fits_in_four_bits(self, abilene_pr):
        # The paper proposes DSCP pool 2 (4 usable bits); Abilene fits.
        assert abilene_pr.header_overhead_bits() <= 4

    def test_memory_entries_cover_cycle_tables_and_dd_column(self, abilene_graph, abilene_pr):
        expected_cycle_entries = 2 * sum(
            abilene_graph.degree(node) for node in abilene_graph.nodes()
        )
        nodes = abilene_graph.number_of_nodes()
        assert abilene_pr.router_memory_entries() == expected_cycle_entries + nodes * (nodes - 1)

    def test_no_online_computation(self, abilene_pr):
        assert abilene_pr.online_computation_per_failure() == 0

    def test_simple_variant_single_bit(self, abilene_graph, abilene_embedding):
        scheme = SimplePacketRecycling(abilene_graph, embedding=abilene_embedding)
        assert scheme.header_overhead_bits() == 1


class TestFailureFreeForwarding:
    def test_matches_shortest_path_costs(self, abilene_graph, abilene_pr, abilene_tables):
        for source, destination in [("Seattle", "Atlanta"), ("LosAngeles", "NewYork")]:
            outcome = abilene_pr.deliver(source, destination)
            assert outcome.delivered
            assert outcome.cost == pytest.approx(abilene_tables.cost(source, destination))

    def test_no_pr_bit_needed_without_failures(self, abilene_pr):
        outcome = abilene_pr.deliver("Denver", "Washington")
        assert outcome.counter("recycling_started") == 0
