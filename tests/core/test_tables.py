"""Unit tests for cycle-following tables on arbitrary topologies."""

import pytest

from repro.core.tables import CycleFollowingTables
from repro.errors import ProtocolError
from repro.graph.darts import Dart


class TestStructure:
    def test_one_row_per_interface(self, abilene_graph, abilene_embedding):
        tables = CycleFollowingTables(abilene_embedding)
        for node in abilene_graph.nodes():
            assert len(tables.table_at(node)) == abilene_graph.degree(node)

    def test_rows_are_permutations_of_outgoing_interfaces(self, abilene_graph, abilene_embedding):
        """The paper notes the forwarding table is a permutation over the
        output interfaces: every outgoing dart appears exactly once in the
        cycle-following column."""
        tables = CycleFollowingTables(abilene_embedding)
        for node in abilene_graph.nodes():
            column = [row.cycle_following for row in tables.table_at(node).rows()]
            assert sorted(column) == sorted(abilene_graph.darts_out(node))

    def test_memory_entries(self, abilene_graph, abilene_embedding):
        tables = CycleFollowingTables(abilene_embedding)
        assert tables.memory_entries() == 2 * sum(
            abilene_graph.degree(node) for node in abilene_graph.nodes()
        )

    def test_unknown_node_raises(self, abilene_embedding):
        tables = CycleFollowingTables(abilene_embedding)
        with pytest.raises(ProtocolError):
            tables.table_at("Narnia")

    def test_unknown_ingress_raises(self, abilene_graph, abilene_embedding):
        tables = CycleFollowingTables(abilene_embedding)
        with pytest.raises(ProtocolError):
            tables.table_at("Denver").row_for_ingress(Dart(99, "Nowhere", "Denver"))


class TestSemantics:
    def test_cycle_following_stays_on_the_ingress_face(self, abilene_graph, abilene_embedding):
        tables = CycleFollowingTables(abilene_embedding)
        faces = abilene_embedding.faces
        for dart in abilene_graph.darts():
            ingress = dart
            out = tables.cycle_following_next(ingress.head, ingress)
            assert faces.face_of(out) is faces.face_of(ingress)

    def test_complementary_column_is_backup_of_cycle_following_link(
        self, abilene_graph, abilene_embedding
    ):
        tables = CycleFollowingTables(abilene_embedding)
        faces = abilene_embedding.faces
        for node in abilene_graph.nodes():
            for row in tables.table_at(node).rows():
                complementary_face = faces.face_of(row.cycle_following.reversed())
                assert row.complementary in complementary_face.darts

    def test_failure_avoidance_is_rotation_successor(self, abilene_graph, abilene_embedding):
        tables = CycleFollowingTables(abilene_embedding)
        rotation = abilene_embedding.rotation
        for dart in abilene_graph.darts():
            assert tables.failure_avoidance_next(dart.tail, dart) == rotation.successor(dart)

    def test_failure_avoidance_checks_ownership(self, abilene_graph, abilene_embedding):
        tables = CycleFollowingTables(abilene_embedding)
        dart = abilene_graph.darts()[0]
        with pytest.raises(ProtocolError):
            tables.failure_avoidance_next(dart.head, dart)

    def test_repeated_cycle_following_returns_to_start(self, abilene_graph, abilene_embedding):
        """Following the cycle-following column from any ingress walks a full
        cellular cycle and comes back to the same dart."""
        tables = CycleFollowingTables(abilene_embedding)
        start = abilene_graph.darts()[0]
        dart = start
        for _step in range(2 * abilene_graph.number_of_edges() + 1):
            dart = tables.cycle_following_next(dart.head, dart)
            if dart == start:
                break
        assert dart == start
