"""End-to-end reproduction of the paper's worked examples (Sections 4.1–4.3).

These tests pin the implementation to the exact artefacts printed in the
paper: Table 1, the single-failure walk-through of Figure 1(b) and the
multi-failure walk-through of Figure 1(c).
"""

import pytest

from repro.core.tables import CycleFollowingTables


def _dart(graph, tail, head):
    return graph.dart(graph.edge_ids_between(tail, head)[0], tail)


def _edge(graph, u, v):
    return graph.edge_ids_between(u, v)[0]


class TestTable1:
    """Table 1: cycle following table at node D."""

    @pytest.fixture()
    def table_at_d(self, fig1_embedding):
        return CycleFollowingTables(fig1_embedding).table_at("D")

    def test_number_of_rows_matches_interfaces(self, table_at_d, fig1_graph):
        assert len(table_at_d) == fig1_graph.degree("D") == 3

    def test_row_ibd(self, table_at_d, fig1_graph):
        row = table_at_d.row_for_ingress(_dart(fig1_graph, "B", "D"))
        assert row.cycle_following == _dart(fig1_graph, "D", "F")
        assert row.complementary == _dart(fig1_graph, "D", "E")

    def test_row_ied(self, table_at_d, fig1_graph):
        row = table_at_d.row_for_ingress(_dart(fig1_graph, "E", "D"))
        assert row.cycle_following == _dart(fig1_graph, "D", "B")
        assert row.complementary == _dart(fig1_graph, "D", "F")

    def test_row_ifd(self, table_at_d, fig1_graph):
        row = table_at_d.row_for_ingress(_dart(fig1_graph, "F", "D"))
        assert row.cycle_following == _dart(fig1_graph, "D", "E")
        assert row.complementary == _dart(fig1_graph, "D", "B")

    def test_render_matches_paper_layout(self, table_at_d):
        rendered = table_at_d.render()
        assert "Cycle following table at node D." in rendered
        assert "IBD | IDF | IDE" in rendered
        assert "IED | IDB | IDF" in rendered
        assert "IFD | IDE | IDB" in rendered


class TestPaperCycles:
    """The named cycles c1–c4 of Figure 1(a)."""

    def test_c1_is_the_main_cycle_of_d_to_e(self, fig1_graph, fig1_embedding):
        face = fig1_embedding.main_cycle(_dart(fig1_graph, "D", "E"))
        assert set(face.nodes) == {"F", "D", "E"}

    def test_c2_is_the_complementary_cycle_of_d_to_e(self, fig1_graph, fig1_embedding):
        face = fig1_embedding.complementary_cycle(_dart(fig1_graph, "D", "E"))
        assert set(face.nodes) == {"D", "B", "C", "E"}

    def test_c3_contains_b_a_c(self, fig1_graph, fig1_embedding):
        face = fig1_embedding.main_cycle(_dart(fig1_graph, "B", "A"))
        assert set(face.nodes) == {"A", "B", "C"}

    def test_c4_is_the_outer_face(self, fig1_graph, fig1_embedding):
        face = fig1_embedding.main_cycle(_dart(fig1_graph, "A", "B"))
        assert len(face) == 6

    def test_every_link_on_exactly_two_cycles(self, fig1_graph, fig1_embedding):
        for edge in fig1_graph.edges():
            forward, backward = edge.darts()
            main = fig1_embedding.faces.face_of(forward)
            complementary = fig1_embedding.faces.face_of(backward)
            assert main is not complementary


class TestSingleFailureWalkthrough:
    """Section 4.2 / Figure 1(b): link D-E fails, packet A -> F."""

    def test_failure_free_path(self, fig1_graph, fig1_pr):
        outcome = fig1_pr.deliver("A", "F")
        assert outcome.path == ["A", "B", "D", "E", "F"]

    def test_packet_follows_cycle_c2_and_is_delivered(self, fig1_graph, fig1_pr):
        outcome = fig1_pr.deliver("A", "F", failed_links=[_edge(fig1_graph, "D", "E")])
        assert outcome.delivered
        # A->B->D (shortest path), D detects the failure and sends the packet
        # along c2 (D->B->C->E); E clears the PR bit and delivers via E->F.
        assert outcome.path == ["A", "B", "D", "B", "C", "E", "F"]

    def test_second_failure_on_a_b_also_recovered(self, fig1_graph, fig1_pr):
        failed = [_edge(fig1_graph, "D", "E"), _edge(fig1_graph, "A", "B")]
        outcome = fig1_pr.deliver("A", "F", failed_links=failed)
        assert outcome.delivered
        # Section 4.2: the packet first follows c3 (A->C->B) to reach B, then
        # recovery proceeds exactly as in the single-failure case.
        assert outcome.path[:4] == ["A", "C", "B", "D"]


class TestMultipleFailureWalkthrough:
    """Section 4.3 / Figure 1(c): links D-E and B-C fail, packet A -> F."""

    def test_dd_walkthrough_path(self, fig1_graph, fig1_pr):
        failed = [_edge(fig1_graph, "D", "E"), _edge(fig1_graph, "B", "C")]
        outcome = fig1_pr.deliver("A", "F", failed_links=failed)
        assert outcome.delivered
        # D marks the packet (DD = 2) and sends it along c2; B hits the B-C
        # failure, keeps cycle following over IBA (c3); A forwards to C; C
        # keeps cycle following onto c2; E terminates and delivers.
        assert outcome.path == ["A", "B", "D", "B", "A", "C", "E", "F"]

    def test_dd_value_written_by_d_is_two(self, fig1_graph, fig1_pr):
        # Verified indirectly: D's discriminator to F on the failure-free
        # topology is the value the protocol writes into the DD bits.
        assert fig1_pr.routing.discriminator("D", "F") == 2.0

    def test_all_pairs_delivered_under_the_fig1c_failures(self, fig1_graph, fig1_pr):
        failed = [_edge(fig1_graph, "D", "E"), _edge(fig1_graph, "B", "C")]
        nodes = fig1_graph.nodes()
        for source in nodes:
            for destination in nodes:
                if source == destination:
                    continue
                assert fig1_pr.deliver(source, destination, failed_links=failed).delivered
