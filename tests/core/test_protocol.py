"""Unit tests for the PR forwarding logics (1-bit and DD variants)."""

import pytest

from repro.core.protocol import PacketRecyclingLogic, SimplePacketRecyclingLogic
from repro.core.scheme import PacketRecycling, SimplePacketRecycling
from repro.core.tables import CycleFollowingTables
from repro.errors import ProtocolError
from repro.forwarding.engine import DeliveryStatus
from repro.forwarding.network_state import NetworkState
from repro.forwarding.packets import Packet
from repro.forwarding.router import Action
from repro.routing.tables import RoutingTables


def _edge(graph, u, v):
    return graph.edge_ids_between(u, v)[0]


class TestNormalRouting:
    def test_failure_free_forwarding_uses_routing_table(self, fig1_graph, fig1_embedding):
        state = NetworkState(fig1_graph)
        logic = PacketRecyclingLogic(
            RoutingTables(fig1_graph), CycleFollowingTables(fig1_embedding), state
        )
        packet = Packet("A", "F")
        decision = logic.decide("A", None, packet, state)
        assert decision.action is Action.FORWARD
        assert decision.egress.head == "B"
        assert not packet.header.pr_bit

    def test_failure_detection_sets_pr_bit_and_dd(self, fig1_graph, fig1_embedding):
        state = NetworkState(fig1_graph, [_edge(fig1_graph, "D", "E")])
        logic = PacketRecyclingLogic(
            RoutingTables(fig1_graph), CycleFollowingTables(fig1_embedding), state
        )
        packet = Packet("D", "F")
        decision = logic.decide("D", None, packet, state)
        assert decision.action is Action.FORWARD
        assert decision.egress.head == "B"  # complementary interface of IDE
        assert packet.header.pr_bit
        assert packet.header.dd_value == 2.0
        assert decision.counters.get("recycling_started") == 1

    def test_isolated_router_drops(self, fig1_graph, fig1_embedding):
        failures = [edge.edge_id for edge in fig1_graph.incident_edges("D")]
        state = NetworkState(fig1_graph, failures)
        logic = PacketRecyclingLogic(
            RoutingTables(fig1_graph), CycleFollowingTables(fig1_embedding), state
        )
        decision = logic.decide("D", None, Packet("D", "F"), state)
        assert decision.action is Action.DROP

    def test_mismatched_state_rejected(self, fig1_graph, fig1_embedding):
        state = NetworkState(fig1_graph)
        other_state = NetworkState(fig1_graph)
        logic = PacketRecyclingLogic(
            RoutingTables(fig1_graph), CycleFollowingTables(fig1_embedding), state
        )
        with pytest.raises(ProtocolError):
            logic.decide("A", None, Packet("A", "F"), other_state)

    def test_marked_packet_without_ingress_rejected(self, fig1_graph, fig1_embedding):
        state = NetworkState(fig1_graph)
        logic = PacketRecyclingLogic(
            RoutingTables(fig1_graph), CycleFollowingTables(fig1_embedding), state
        )
        packet = Packet("A", "F")
        packet.header.mark_recycling(1.0)
        with pytest.raises(ProtocolError):
            logic.decide("A", None, packet, state)


class TestCycleFollowing:
    def test_marked_packet_follows_cycle_table(self, fig1_graph, fig1_embedding):
        state = NetworkState(fig1_graph, [_edge(fig1_graph, "D", "E")])
        logic = PacketRecyclingLogic(
            RoutingTables(fig1_graph), CycleFollowingTables(fig1_embedding), state
        )
        packet = Packet("A", "F")
        packet.header.mark_recycling(2.0)
        ingress = fig1_graph.dart(_edge(fig1_graph, "B", "D"), "D").reversed()
        # Packet arrived at B over D->B while cycle following c2.
        decision = logic.decide("B", fig1_graph.dart(_edge(fig1_graph, "B", "D"), "D"), packet, state)
        assert decision.action is Action.FORWARD
        assert decision.egress.head == "C"
        assert packet.header.pr_bit

    def test_termination_clears_pr_bit(self, fig1_graph, fig1_embedding):
        state = NetworkState(fig1_graph, [_edge(fig1_graph, "D", "E")])
        logic = PacketRecyclingLogic(
            RoutingTables(fig1_graph), CycleFollowingTables(fig1_embedding), state
        )
        packet = Packet("A", "F")
        packet.header.mark_recycling(2.0)
        # Packet arrives at E over C->E while following c2; the next cycle hop
        # E->D is down; E's discriminator (1) < DD (2) so routing resumes.
        ingress = fig1_graph.dart(_edge(fig1_graph, "C", "E"), "C")
        decision = logic.decide("E", ingress, packet, state)
        assert decision.action is Action.FORWARD
        assert decision.egress.head == "F"
        assert not packet.header.pr_bit
        assert packet.header.dd_value is None

    def test_equal_discriminator_keeps_cycle_following(self, fig1_graph, fig1_embedding):
        state = NetworkState(
            fig1_graph, [_edge(fig1_graph, "D", "E"), _edge(fig1_graph, "B", "C")]
        )
        logic = PacketRecyclingLogic(
            RoutingTables(fig1_graph), CycleFollowingTables(fig1_embedding), state
        )
        packet = Packet("A", "F")
        packet.header.mark_recycling(2.0)
        # C's discriminator to F is 2 == DD, so it must keep cycle following.
        ingress = fig1_graph.dart(_edge(fig1_graph, "A", "C"), "A")
        decision = logic.decide("C", ingress, packet, state)
        assert decision.action is Action.FORWARD
        assert packet.header.pr_bit
        assert decision.egress.head == "E"


class TestSimpleProtocol:
    def test_single_failure_recovery(self, fig1_graph, fig1_embedding):
        scheme = SimplePacketRecycling(fig1_graph, embedding=fig1_embedding)
        outcome = scheme.deliver("A", "F", failed_links=[_edge(fig1_graph, "D", "E")])
        assert outcome.delivered
        assert outcome.path == ["A", "B", "D", "B", "C", "E", "F"]

    def test_simple_protocol_has_no_dd_bits(self, fig1_graph, fig1_embedding):
        scheme = SimplePacketRecycling(fig1_graph, embedding=fig1_embedding)
        assert scheme.header_overhead_bits() == 1

    def test_fig1c_multi_failure_loops_without_dd(self, fig1_graph, fig1_embedding):
        """Figure 1(c)'s point: without the DD termination condition the
        packet loops between the two failures."""
        scheme = SimplePacketRecycling(fig1_graph, embedding=fig1_embedding)
        failed = [_edge(fig1_graph, "D", "E"), _edge(fig1_graph, "B", "C")]
        outcome = scheme.deliver("A", "F", failed_links=failed)
        assert outcome.status is DeliveryStatus.TTL_EXCEEDED

    def test_full_protocol_fixes_the_same_scenario(self, fig1_graph, fig1_pr):
        failed = [_edge(fig1_graph, "D", "E"), _edge(fig1_graph, "B", "C")]
        assert fig1_pr.deliver("A", "F", failed_links=failed).delivered

    def test_simple_logic_marks_without_dd(self, fig1_graph, fig1_embedding):
        state = NetworkState(fig1_graph, [_edge(fig1_graph, "D", "E")])
        logic = SimplePacketRecyclingLogic(
            RoutingTables(fig1_graph), CycleFollowingTables(fig1_embedding), state
        )
        packet = Packet("D", "F")
        logic.decide("D", None, packet, state)
        assert packet.header.pr_bit
        assert packet.header.dd_value is None
