"""Coverage analysis: the paper's full-repair-coverage claim, measured."""

import pytest

from repro.baselines.noprotection import NoProtection
from repro.core.coverage import coverage_report, reachable_pairs
from repro.core.scheme import PacketRecycling, SimplePacketRecycling
from repro.failures.sampling import all_multi_link_failures, sample_multi_link_failures
from repro.failures.scenarios import single_link_failures
from repro.topologies.generators import grid_graph, random_planar_graph, ring_graph


class TestReachablePairs:
    def test_all_pairs_when_no_failures(self, abilene_graph):
        pairs = reachable_pairs(abilene_graph, [])
        nodes = abilene_graph.number_of_nodes()
        assert len(pairs) == nodes * (nodes - 1)

    def test_disconnected_pairs_removed(self):
        ring = ring_graph(4)
        pairs = reachable_pairs(ring, [0, 2])  # two opposite links: splits the ring
        assert all(
            (source, destination) not in pairs
            for source in ("n0",)
            for destination in ("n2",)
        ) or len(pairs) < 12


class TestSingleFailureCoverage:
    def test_pr_full_coverage_on_abilene(self, abilene_pr):
        scenarios = [s.failed_links for s in single_link_failures(abilene_pr.graph)]
        report = coverage_report(abilene_pr, scenarios)
        assert report.full_coverage
        assert report.looped == 0

    def test_simple_pr_full_single_failure_coverage_on_2_connected_graphs(self):
        grid = grid_graph(3, 3)
        scheme = SimplePacketRecycling(grid)
        scenarios = [s.failed_links for s in single_link_failures(grid, only_non_disconnecting=True)]
        report = coverage_report(scheme, scenarios)
        assert report.full_coverage

    def test_no_protection_loses_packets(self, abilene_graph):
        scheme = NoProtection(abilene_graph)
        scenarios = [s.failed_links for s in single_link_failures(abilene_graph)]
        report = coverage_report(scheme, scenarios)
        assert not report.full_coverage
        assert report.dropped > 0
        assert "next-hop link failed" in report.drop_reasons


class TestMultiFailureCoverage:
    def test_pr_covers_all_dual_failures_on_abilene(self, abilene_pr):
        scenarios = [
            s.failed_links
            for s in all_multi_link_failures(abilene_pr.graph, 2, require_connected=True)
        ]
        report = coverage_report(abilene_pr, scenarios)
        assert report.full_coverage

    def test_pr_covers_sampled_four_failures_on_planar_graph(self):
        graph = random_planar_graph(4, 4, extra_diagonals=3, seed=2)
        scheme = PacketRecycling(graph)
        scenarios = [
            s.failed_links
            for s in sample_multi_link_failures(graph, failures=4, samples=15, seed=3)
        ]
        report = coverage_report(scheme, scenarios)
        assert report.full_coverage

    def test_report_summary_format(self, abilene_pr):
        scenarios = [s.failed_links for s in single_link_failures(abilene_pr.graph)][:3]
        report = coverage_report(abilene_pr, scenarios)
        summary = report.summary()
        assert "delivered" in summary and "%" in summary
