"""Unit tests for the re-convergence model."""

import pytest

from repro.routing.reconvergence import (
    ReconvergenceModel,
    affected_destinations,
    converged_tables,
)
from repro.routing.tables import RoutingTables


class TestConvergedTables:
    def test_routes_avoid_failed_links(self, abilene_graph):
        edge = abilene_graph.edge_ids_between("Denver", "KansasCity")[0]
        converged = converged_tables(abilene_graph, [edge])
        for node in abilene_graph.nodes():
            for destination in abilene_graph.nodes():
                if node == destination or not converged.has_route(node, destination):
                    continue
                assert converged.egress(node, destination).edge_id != edge

    def test_costs_never_improve_after_failure(self, abilene_graph, abilene_tables):
        edge = abilene_graph.edge_ids_between("Chicago", "NewYork")[0]
        converged = converged_tables(abilene_graph, [edge])
        for node in abilene_graph.nodes():
            if node == "NewYork" or not converged.has_route(node, "NewYork"):
                continue
            assert converged.cost(node, "NewYork") >= abilene_tables.cost(node, "NewYork") - 1e-9


class TestReconvergenceModel:
    def test_timeline_ordering(self, abilene_graph):
        model = ReconvergenceModel()
        edge = abilene_graph.edge_ids_between("Denver", "KansasCity")[0]
        timeline = model.convergence_delay(abilene_graph, edge, failure_time=1.0)
        assert timeline.failure_time == 1.0
        assert timeline.detection_time > timeline.failure_time
        assert timeline.converged_time >= timeline.detection_time

    def test_adjacent_routers_converge_first(self, abilene_graph):
        model = ReconvergenceModel()
        edge_id = abilene_graph.edge_ids_between("Denver", "KansasCity")[0]
        timeline = model.convergence_delay(abilene_graph, edge_id)
        assert timeline.updated_at["Denver"] <= timeline.updated_at["Seattle"]
        assert timeline.updated_at["KansasCity"] <= timeline.updated_at["NewYork"]

    def test_network_convergence_time_positive_and_subsecond_default(self, abilene_graph):
        model = ReconvergenceModel()
        edge_id = abilene_graph.edge_ids_between("Atlanta", "Washington")[0]
        total = model.network_convergence_time(abilene_graph, edge_id)
        assert 0.5 < total < 2.0

    def test_blackhole_duration(self, abilene_graph):
        model = ReconvergenceModel()
        edge_id = abilene_graph.edge_ids_between("Atlanta", "Washington")[0]
        timeline = model.convergence_delay(abilene_graph, edge_id)
        assert timeline.blackhole_duration("Atlanta") > 0.0


class TestAffectedDestinations:
    def test_only_destinations_behind_the_failure(self, abilene_graph):
        tables = RoutingTables(abilene_graph)
        edge_id = abilene_graph.edge_ids_between("Chicago", "NewYork")[0]
        affected = affected_destinations(tables, "Chicago", [edge_id])
        assert "NewYork" in affected
        assert "Indianapolis" not in affected

    def test_no_failures_means_nothing_affected(self, abilene_graph):
        tables = RoutingTables(abilene_graph)
        assert affected_destinations(tables, "Chicago", []) == []
