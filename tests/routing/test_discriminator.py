"""Unit tests for distance discriminators."""

import pytest

from repro.errors import RoutingError
from repro.routing.discriminator import (
    DiscriminatorKind,
    compare_discriminators,
    discriminator_bits_required,
    discriminator_value,
)
from repro.topologies.generators import ring_graph


class TestDiscriminatorValue:
    def test_hop_count_kind(self):
        assert discriminator_value(DiscriminatorKind.HOP_COUNT, hops=3, cost=17.0) == 3.0

    def test_weighted_cost_kind(self):
        assert discriminator_value(DiscriminatorKind.WEIGHTED_COST, hops=3, cost=17.0) == 17.0

    def test_unknown_kind_raises(self):
        with pytest.raises(RoutingError):
            discriminator_value("bogus", hops=1, cost=1.0)  # type: ignore[arg-type]


class TestBitsRequired:
    def test_matches_log2_of_diameter(self, abilene_graph):
        bits = discriminator_bits_required(abilene_graph, DiscriminatorKind.HOP_COUNT)
        # Abilene's hop diameter is 5 (e.g. Seattle to Washington), so 3 bits.
        assert bits == 3

    def test_single_node_graph(self):
        from repro.graph.multigraph import Graph

        graph = Graph()
        graph.add_node("only")
        assert discriminator_bits_required(graph, DiscriminatorKind.HOP_COUNT) == 1

    def test_ring_bits(self):
        ring = ring_graph(8)  # hop diameter 4
        assert discriminator_bits_required(ring, DiscriminatorKind.HOP_COUNT) == 3

    def test_weighted_bits_at_least_hop_bits_for_unit_weights(self, abilene_graph):
        weighted = discriminator_bits_required(abilene_graph, DiscriminatorKind.WEIGHTED_COST)
        hops = discriminator_bits_required(abilene_graph, DiscriminatorKind.HOP_COUNT)
        assert weighted >= hops


class TestComparison:
    def test_strictly_smaller_resumes_routing(self):
        assert compare_discriminators(own=1.0, in_packet=2.0)

    def test_equal_keeps_cycle_following(self):
        assert not compare_discriminators(own=2.0, in_packet=2.0)

    def test_larger_keeps_cycle_following(self):
        assert not compare_discriminators(own=5.0, in_packet=2.0)
