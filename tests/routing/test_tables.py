"""Unit tests for routing tables with the distance-discriminator column."""

import pytest

from repro.errors import NoPathExists, RoutingError
from repro.graph.multigraph import Graph
from repro.graph.shortest_paths import shortest_path_cost
from repro.routing.discriminator import DiscriminatorKind
from repro.routing.tables import RoutingTables, build_routing_tables


class TestFigureOneTables:
    """The example weights make the shortest path tree to F match Figure 1."""

    def test_shortest_path_tree_to_f(self, fig1_graph):
        tables = RoutingTables(fig1_graph)
        assert tables.next_hop("A", "F") == "B"
        assert tables.next_hop("B", "F") == "D"
        assert tables.next_hop("D", "F") == "E"
        assert tables.next_hop("E", "F") == "F"
        assert tables.next_hop("C", "F") == "E"

    def test_paper_dd_value_at_d(self, fig1_graph):
        tables = RoutingTables(fig1_graph)
        # Section 4.3: "it will set the PR bit and set 2 as the value of the DD bits".
        assert tables.discriminator("D", "F") == 2.0

    def test_dd_strictly_decreases_along_path(self, fig1_graph):
        tables = RoutingTables(fig1_graph)
        path = tables.shortest_path("A", "F")
        values = [tables.discriminator(node, "F") for node in path[:-1]] + [0.0]
        assert values == sorted(values, reverse=True)
        assert len(set(values)) == len(values)


class TestLookups:
    def test_cost_matches_dijkstra(self, abilene_graph, abilene_tables):
        for destination in ("Atlanta", "Seattle"):
            for node in abilene_graph.nodes():
                if node == destination:
                    continue
                expected = shortest_path_cost(abilene_graph, node, destination)
                assert abilene_tables.cost(node, destination) == pytest.approx(expected)

    def test_self_lookups(self, abilene_tables):
        assert abilene_tables.cost("Denver", "Denver") == 0.0
        assert abilene_tables.hops("Denver", "Denver") == 0
        assert abilene_tables.discriminator("Denver", "Denver") == 0.0
        with pytest.raises(RoutingError):
            abilene_tables.entry("Denver", "Denver")

    def test_egress_leaves_the_node(self, abilene_graph, abilene_tables):
        for node in abilene_graph.nodes():
            for destination in abilene_graph.nodes():
                if node == destination:
                    continue
                egress = abilene_tables.egress(node, destination)
                assert egress.tail == node
                assert egress.head == abilene_tables.next_hop(node, destination)

    def test_unreachable_destination_raises(self):
        graph = Graph.from_edge_list([("a", "b")])
        graph.ensure_node("island")
        tables = RoutingTables(graph)
        assert not tables.has_route("a", "island")
        with pytest.raises(NoPathExists):
            tables.entry("a", "island")

    def test_shortest_path_following_next_hops(self, abilene_tables):
        path = abilene_tables.shortest_path("Seattle", "Atlanta")
        assert path[0] == "Seattle" and path[-1] == "Atlanta"
        assert len(path) == abilene_tables.hops("Seattle", "Atlanta") + 1

    def test_memory_entries_counts_all_pairs(self, abilene_graph, abilene_tables):
        nodes = abilene_graph.number_of_nodes()
        assert abilene_tables.memory_entries() == nodes * (nodes - 1)

    def test_table_of_is_sorted(self, abilene_tables):
        table = abilene_tables.table_of("Denver")
        destinations = [entry.destination for entry in table]
        assert destinations == sorted(destinations)


class TestDiscriminatorKinds:
    def test_hop_count_discriminator(self, fig1_graph):
        tables = build_routing_tables(fig1_graph, DiscriminatorKind.HOP_COUNT)
        assert tables.discriminator("A", "F") == tables.hops("A", "F")

    def test_weighted_cost_discriminator(self, fig1_graph):
        tables = build_routing_tables(fig1_graph, DiscriminatorKind.WEIGHTED_COST)
        assert tables.discriminator("A", "F") == pytest.approx(tables.cost("A", "F"))

    def test_excluded_edges_build_converged_tables(self, fig1_graph):
        edge_de = fig1_graph.edge_ids_between("D", "E")[0]
        converged = RoutingTables(fig1_graph, excluded_edges=[edge_de])
        assert converged.next_hop("D", "F") != "E"
