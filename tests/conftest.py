"""Shared fixtures for the test suite.

Expensive artefacts (ISP topologies, their embeddings, PR instances) are
session-scoped: they are immutable for the purposes of the tests that use
them, and rebuilding the Teleglobe embedding for every test would dominate
the suite's runtime.
"""

from __future__ import annotations

import pytest

from repro.core.scheme import PacketRecycling
from repro.embedding.builder import embed
from repro.graph.multigraph import Graph
from repro.routing.tables import RoutingTables
from repro.topologies.abilene import abilene
from repro.topologies.example import example_fig1, example_fig1_embedding
from repro.topologies.geant import geant
from repro.topologies.teleglobe import teleglobe


@pytest.fixture(scope="session")
def fig1_graph() -> Graph:
    """The six-node example network of Figure 1(a)."""
    return example_fig1()


@pytest.fixture(scope="session")
def fig1_embedding():
    """The exact embedding (cycles c1–c4) of Figure 1(a)."""
    return example_fig1_embedding()


@pytest.fixture(scope="session")
def fig1_pr(fig1_embedding) -> PacketRecycling:
    """Packet Re-cycling on the paper's example network."""
    return PacketRecycling(fig1_embedding.graph, embedding=fig1_embedding)


@pytest.fixture(scope="session")
def abilene_graph() -> Graph:
    return abilene()

@pytest.fixture(scope="session")
def teleglobe_graph() -> Graph:
    return teleglobe()


@pytest.fixture(scope="session")
def geant_graph() -> Graph:
    return geant()


@pytest.fixture(scope="session")
def abilene_embedding(abilene_graph):
    return embed(abilene_graph, seed=0)


@pytest.fixture(scope="session")
def teleglobe_embedding(teleglobe_graph):
    return embed(teleglobe_graph, seed=0)


@pytest.fixture(scope="session")
def abilene_pr(abilene_graph, abilene_embedding) -> PacketRecycling:
    return PacketRecycling(abilene_graph, embedding=abilene_embedding)


@pytest.fixture(scope="session")
def teleglobe_pr(teleglobe_graph, teleglobe_embedding) -> PacketRecycling:
    return PacketRecycling(teleglobe_graph, embedding=teleglobe_embedding)


@pytest.fixture(scope="session")
def abilene_tables(abilene_graph) -> RoutingTables:
    return RoutingTables(abilene_graph)


@pytest.fixture()
def square_graph() -> Graph:
    """A 4-node cycle, the smallest useful 2-edge-connected test graph."""
    return Graph.from_edge_list([("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")], name="square")


@pytest.fixture()
def diamond_graph() -> Graph:
    """K4: planar, 3-connected, every face a triangle."""
    return Graph.from_edge_list(
        [("a", "b"), ("a", "c"), ("a", "d"), ("b", "c"), ("b", "d"), ("c", "d")],
        name="k4",
    )
