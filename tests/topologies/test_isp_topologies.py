"""Tests for the three ISP topologies of the paper's evaluation."""

import pytest

from repro.graph.connectivity import is_connected, is_two_edge_connected
from repro.graph.shortest_paths import diameter
from repro.topologies.abilene import ABILENE_LINKS, abilene, great_circle_km
from repro.topologies.geant import GEANT_LINKS, geant
from repro.topologies.teleglobe import TELEGLOBE_LINKS, teleglobe


class TestAbilene:
    def test_size_matches_published_backbone(self, abilene_graph):
        assert abilene_graph.number_of_nodes() == 11
        assert abilene_graph.number_of_edges() == 14

    def test_two_edge_connected(self, abilene_graph):
        assert is_two_edge_connected(abilene_graph)

    def test_unit_weight_variant(self):
        unit = abilene(unit_weights=True)
        assert all(edge.weight == 1.0 for edge in unit.edges())

    def test_distance_weights_are_plausible(self, abilene_graph):
        weights = [edge.weight for edge in abilene_graph.edges()]
        assert all(100 < weight < 4000 for weight in weights)

    def test_hop_diameter(self, abilene_graph):
        assert diameter(abilene_graph, hop_count=True) == 5.0

    def test_known_link_present(self, abilene_graph):
        assert abilene_graph.has_edge_between("Denver", "KansasCity")
        assert not abilene_graph.has_edge_between("Seattle", "NewYork")


class TestGeant:
    def test_size(self, geant_graph):
        assert geant_graph.number_of_nodes() == 34
        assert geant_graph.number_of_edges() == len(GEANT_LINKS) == 54

    def test_connected_and_resilient(self, geant_graph):
        assert is_connected(geant_graph)
        assert is_two_edge_connected(geant_graph)

    def test_every_country_has_degree_at_least_two(self, geant_graph):
        assert min(geant_graph.degree(node) for node in geant_graph.nodes()) >= 2

    def test_unit_weights_variant(self):
        assert all(edge.weight == 1.0 for edge in geant(unit_weights=True).edges())


class TestTeleglobe:
    def test_size(self, teleglobe_graph):
        assert teleglobe_graph.number_of_nodes() == 26
        assert teleglobe_graph.number_of_edges() == len(TELEGLOBE_LINKS) == 40

    def test_connected_and_resilient(self, teleglobe_graph):
        assert is_connected(teleglobe_graph)
        assert is_two_edge_connected(teleglobe_graph)

    def test_mean_degree_matches_tier1_profile(self, teleglobe_graph):
        mean_degree = 2 * teleglobe_graph.number_of_edges() / teleglobe_graph.number_of_nodes()
        assert 2.5 < mean_degree < 4.0

    def test_transoceanic_links_are_long(self, teleglobe_graph):
        edge_ids = teleglobe_graph.edge_ids_between("NewYork", "London")
        assert teleglobe_graph.weight(edge_ids[0]) > 5000

    def test_unit_weights_variant(self):
        assert all(edge.weight == 1.0 for edge in teleglobe(unit_weights=True).edges())


class TestGreatCircle:
    def test_zero_distance_for_same_point(self):
        assert great_circle_km((10.0, 20.0), (10.0, 20.0)) == pytest.approx(0.0)

    def test_known_distance_new_york_london(self):
        new_york = (40.71, -74.01)
        london = (51.51, -0.13)
        assert great_circle_km(new_york, london) == pytest.approx(5570, rel=0.02)

    def test_symmetry(self):
        a, b = (47.61, -122.33), (33.75, -84.39)
        assert great_circle_km(a, b) == pytest.approx(great_circle_km(b, a))


class TestLinkListsAreConsistent:
    @pytest.mark.parametrize(
        "links", [ABILENE_LINKS, GEANT_LINKS, TELEGLOBE_LINKS], ids=["abilene", "geant", "teleglobe"]
    )
    def test_no_duplicate_links(self, links):
        normalised = {tuple(sorted(link)) for link in links}
        assert len(normalised) == len(links)

    @pytest.mark.parametrize(
        "links", [ABILENE_LINKS, GEANT_LINKS, TELEGLOBE_LINKS], ids=["abilene", "geant", "teleglobe"]
    )
    def test_no_self_links(self, links):
        assert all(u != v for u, v in links)
