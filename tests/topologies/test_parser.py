"""Tests for the topology file parser and the registry."""

import pytest

from repro.errors import TopologyError
from repro.topologies.parser import graph_from_text, graph_to_text, load_graph, save_graph
from repro.topologies.registry import available_topologies, by_name


class TestParser:
    def test_basic_edge_list(self):
        graph = graph_from_text("a b 2.5\nb c\n")
        assert graph.number_of_edges() == 2
        assert graph.edge(0).weight == 2.5
        assert graph.edge(1).weight == 1.0

    def test_comments_and_blank_lines_ignored(self):
        graph = graph_from_text("# header\n\na b 1 # inline comment\n")
        assert graph.number_of_edges() == 1

    def test_isolated_node_declaration(self):
        graph = graph_from_text("node lonely\na b\n")
        assert graph.has_node("lonely")
        assert graph.degree("lonely") == 0

    def test_invalid_weight_rejected(self):
        with pytest.raises(TopologyError):
            graph_from_text("a b heavy\n")

    def test_negative_weight_rejected(self):
        with pytest.raises(TopologyError):
            graph_from_text("a b -3\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(TopologyError):
            graph_from_text("a b 1 extra\n")

    def test_duplicate_node_declaration_rejected(self):
        with pytest.raises(TopologyError, match="duplicate node name"):
            graph_from_text("node lonely\nnode lonely\n")

    def test_redeclaring_an_edge_endpoint_rejected(self):
        with pytest.raises(TopologyError, match="duplicate node name"):
            graph_from_text("a b 1\nnode a\n")

    def test_round_trip(self, abilene_graph):
        text = graph_to_text(abilene_graph)
        rebuilt = graph_from_text(text, name="abilene")
        assert rebuilt.to_edge_list() == abilene_graph.to_edge_list()

    def test_file_round_trip(self, tmp_path, fig1_graph):
        path = save_graph(fig1_graph, tmp_path / "fig1.topo")
        loaded = load_graph(path)
        assert loaded.to_edge_list() == fig1_graph.to_edge_list()
        assert loaded.name == "fig1"


class TestRegistry:
    def test_available_topologies(self):
        names = available_topologies()
        assert {"abilene", "teleglobe", "geant"} <= set(names)

    def test_by_name_case_insensitive(self):
        assert by_name("Abilene").number_of_nodes() == 11

    def test_unknown_name_rejected(self):
        with pytest.raises(TopologyError):
            by_name("arpanet-1969")

    def test_available_topologies_is_a_sorted_copy(self):
        names = available_topologies()
        assert names == sorted(names)
        assert available_topologies() is not names
