"""Tests for the topology corpus: families, specs, sets and validation."""

import hashlib
import subprocess
import sys

import pytest

from repro.errors import TopologyError
from repro.runner import CampaignSpec
from repro.topologies import corpus
from repro.topologies.registry import available_topologies, by_name


def edge_list_digest(graph) -> str:
    payload = repr((graph.nodes(), graph.to_edge_list()))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class TestSpecParsing:
    def test_bare_name_canonicalises_to_itself(self):
        assert corpus.parse_topology_spec("abilene").canonical == "abilene"

    def test_params_resolve_sort_and_round_trip(self):
        spec = corpus.parse_topology_spec("WAXMAN:seed=3,size=40")
        assert spec.canonical == "waxman:alpha=0.6,beta=0.4,seed=3,size=40"
        assert corpus.parse_topology_spec(spec.canonical) == spec

    def test_default_spelled_out_matches_implicit(self):
        implicit = corpus.parse_topology_spec("fat-tree")
        explicit = corpus.parse_topology_spec("fat-tree:k=4")
        assert implicit == explicit

    def test_unknown_family_reports_attempted_name(self):
        with pytest.raises(TopologyError, match="'meteor-net'"):
            corpus.parse_topology_spec("meteor-net:size=3")

    def test_unknown_param_rejected(self):
        with pytest.raises(TopologyError, match="blast"):
            corpus.parse_topology_spec("ring:blast=4")

    def test_param_on_parameterless_family_rejected(self):
        with pytest.raises(TopologyError, match="takes no parameters"):
            corpus.parse_topology_spec("abilene:size=4")

    def test_uncoercible_value_rejected(self):
        with pytest.raises(TopologyError, match="expects a int"):
            corpus.parse_topology_spec("ring:size=many")

    def test_malformed_pair_rejected(self):
        with pytest.raises(TopologyError, match="use name=value"):
            corpus.parse_topology_spec("ring:size")

    def test_try_parse_passes_paths_through(self):
        assert corpus.try_parse_spec("some/where/net.topo") is None
        assert corpus.canonical_topology("some/where/net.topo") == "some/where/net.topo"

    def test_try_parse_still_raises_for_known_family_bad_params(self):
        with pytest.raises(TopologyError):
            corpus.try_parse_spec("ring:blast=4")


class TestBuilding:
    def test_graph_named_by_canonical_spec(self):
        graph = corpus.build_topology("ring:size=5")
        assert graph.name == "ring:size=5"
        assert graph.number_of_nodes() == 5

    def test_legacy_names_build_unchanged(self):
        graph = corpus.build_topology("abilene")
        assert graph.name == "abilene"
        assert graph.number_of_nodes() == 11
        assert graph.number_of_edges() == 14

    def test_zoo_snapshot_builds_connected(self):
        graph = corpus.build_topology("nsfnet1991")
        assert graph.name == "nsfnet1991"
        assert graph.number_of_nodes() == 14
        assert graph.number_of_edges() == 21

    def test_zoo_weights_flow_through_graphml(self):
        graph = corpus.build_topology("switch2003")
        weights = {edge.weight for edge in graph.edges()}
        assert 5.0 in weights

    def test_same_spec_same_content(self):
        one = corpus.build_topology("barabasi-albert:size=20,seed=9")
        two = corpus.build_topology("barabasi-albert:seed=9,size=20")
        assert edge_list_digest(one) == edge_list_digest(two)

    def test_different_seed_different_content(self):
        one = corpus.build_topology("waxman:size=20,seed=1")
        two = corpus.build_topology("waxman:size=20,seed=2")
        assert edge_list_digest(one) != edge_list_digest(two)


class TestRegistration:
    def test_colliding_family_name_rejected(self):
        with pytest.raises(TopologyError, match="already registered"):
            corpus.register_family(
                corpus.TopologyFamily(
                    name="abilene",
                    kind="zoo",
                    summary="shadowing attempt",
                    build=lambda: None,
                )
            )

    def test_uppercase_family_name_rejected(self):
        with pytest.raises(TopologyError, match="lowercase"):
            corpus.register_family(
                corpus.TopologyFamily(
                    name="Camel", kind="synthetic", summary="", build=lambda: None
                )
            )


class TestSets:
    def test_zoo_set_matches_committed_snapshots(self):
        zoo = corpus.topology_set("zoo")
        assert len(zoo) >= 8
        assert "nsfnet1991" in zoo and "arpanet196912" in zoo

    def test_all_set_spans_at_least_twelve(self):
        combined = corpus.topology_set("all")
        assert len(combined) >= 12
        assert len(set(combined)) == len(combined)

    def test_synthetic_members_are_canonical(self):
        for member in corpus.topology_set("synthetic"):
            assert corpus.canonical_topology(member) == member

    def test_unknown_set_rejected(self):
        with pytest.raises(TopologyError, match="unknown topology set"):
            corpus.topology_set("galactic")


class TestValidation:
    def test_whole_corpus_validates(self):
        for spec in corpus.topology_set("all"):
            report = corpus.validate_topology(spec)
            assert report.ok, report.describe()
            assert report.nodes >= 3

    def test_unbuildable_spec_fails_validation(self):
        report = corpus.validate_topology("no/such/file.topo")
        assert not report.ok
        assert report.problems

    def test_disconnected_file_fails_validation(self, tmp_path):
        path = tmp_path / "split.topo"
        path.write_text("a b 1\nc d 1\n")
        report = corpus.validate_topology(str(path))
        assert not report.ok
        assert any("disconnected" in problem for problem in report.problems)


class TestRegistryFacade:
    def test_available_topologies_sorted_copy(self):
        names = available_topologies()
        assert names == sorted(names)
        names.append("mutation")
        assert "mutation" not in available_topologies()

    def test_by_name_case_insensitive(self):
        assert by_name("ABILENE").number_of_nodes() == 11

    def test_by_name_error_reports_attempted_spelling(self):
        with pytest.raises(TopologyError, match="'Arpanet-1969'"):
            by_name("Arpanet-1969")

    def test_by_name_builds_parameterized_family_defaults(self):
        assert by_name("fat-tree").number_of_nodes() == 20


class TestCampaignCanonicalisation:
    def test_spellings_collapse_to_one_grid_entry(self):
        spec = CampaignSpec(
            topologies=("WAXMAN:seed=3,size=40", "waxman:size=40,seed=3"),
            schemes=("reconvergence",),
        )
        assert spec.topologies == ("waxman:alpha=0.6,beta=0.4,seed=3,size=40",)

    def test_legacy_names_keep_their_cell_ids(self):
        legacy = CampaignSpec(topologies=("abilene",), schemes=("reconvergence",))
        mixed = CampaignSpec(topologies=("Abilene",), schemes=("reconvergence",))
        [a], [b] = legacy.cells(), mixed.cells()
        assert legacy.topologies == ("abilene",)
        assert a.cell_id == b.cell_id

    def test_bad_params_fail_at_spec_construction(self):
        with pytest.raises(TopologyError):
            CampaignSpec(topologies=("ring:blast=9",), schemes=("reconvergence",))


class TestCrossProcessDeterminism:
    #: Parameterized synthetic instances must hash identically in a fresh
    #: interpreter: campaign workers build topologies independently and any
    #: process-dependent state (hash randomisation, import order) leaking
    #: into generation would silently shear the grid.
    SPECS = (
        "waxman:size=20,seed=5",
        "barabasi-albert:m=2,seed=5,size=20",
        "er-giant:probability=0.15,seed=5,size=24",
        "random-connected:extra=8,seed=5,size=16",
    )

    def test_fresh_interpreter_builds_identical_graphs(self):
        script = (
            "import hashlib\n"
            "from repro.topologies import corpus\n"
            f"for spec in {self.SPECS!r}:\n"
            "    graph = corpus.build_topology(spec)\n"
            "    payload = repr((graph.nodes(), graph.to_edge_list()))\n"
            "    print(hashlib.sha256(payload.encode('utf-8')).hexdigest())\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        remote = completed.stdout.split()
        local = [edge_list_digest(corpus.build_topology(spec)) for spec in self.SPECS]
        assert remote == local
