"""Tests for the GraphML topology reader and its error paths."""

import pytest

from repro.errors import TopologyError
from repro.topologies.corpus import DATA_DIR, load_topology_file
from repro.topologies.graphml import graph_from_graphml, load_graphml


def document(nodes: str, edges: str, keys: str = "") -> str:
    default_keys = (
        '<key id="d0" for="node" attr.name="label" attr.type="string"/>'
        '<key id="d1" for="edge" attr.name="weight" attr.type="double"/>'
    )
    return (
        '<?xml version="1.0" encoding="utf-8"?>'
        '<graphml xmlns="http://graphml.graphdrawing.org/xmlns">'
        f"{keys or default_keys}"
        '<graph edgedefault="undirected">'
        f"{nodes}{edges}"
        "</graph></graphml>"
    )


TRIANGLE = document(
    '<node id="0"><data key="d0">A</data></node>'
    '<node id="1"><data key="d0">B</data></node>'
    '<node id="2"><data key="d0">C</data></node>',
    '<edge source="0" target="1"><data key="d1">2.5</data></edge>'
    '<edge source="1" target="2"/>'
    '<edge source="2" target="0"/>',
)


class TestParsing:
    def test_labels_become_node_names(self):
        graph = graph_from_graphml(TRIANGLE, name="tri")
        assert sorted(graph.nodes()) == ["A", "B", "C"]
        assert graph.name == "tri"

    def test_weight_attribute_parsed_and_defaulted(self):
        graph = graph_from_graphml(TRIANGLE)
        weights = sorted(edge.weight for edge in graph.edges())
        assert weights == [1.0, 1.0, 2.5]

    def test_missing_labels_fall_back_to_ids(self):
        text = document(
            '<node id="n0"/><node id="n1"/>',
            '<edge source="n0" target="n1"/>',
        )
        assert sorted(graph_from_graphml(text).nodes()) == ["n0", "n1"]

    def test_duplicate_labels_fall_back_to_ids(self):
        text = document(
            '<node id="0"><data key="d0">X</data></node>'
            '<node id="1"><data key="d0">X</data></node>',
            '<edge source="0" target="1"/>',
        )
        assert sorted(graph_from_graphml(text).nodes()) == ["0", "1"]

    def test_directed_export_reciprocal_edges_collapse(self):
        text = (
            '<?xml version="1.0" encoding="utf-8"?>'
            '<graphml xmlns="http://graphml.graphdrawing.org/xmlns">'
            '<graph edgedefault="directed">'
            '<node id="a"/><node id="b"/><node id="c"/>'
            '<edge source="a" target="b"/><edge source="b" target="a"/>'
            '<edge source="b" target="c"/><edge source="c" target="b"/>'
            '<edge source="c" target="a"/>'
            "</graph></graphml>"
        )
        graph = graph_from_graphml(text)
        assert graph.number_of_edges() == 3

    def test_self_loops_dropped(self):
        text = document(
            '<node id="0"/><node id="1"/>',
            '<edge source="0" target="0"/><edge source="0" target="1"/>',
        )
        assert graph_from_graphml(text).number_of_edges() == 1


class TestErrorPaths:
    def test_malformed_xml_rejected(self):
        with pytest.raises(TopologyError, match="malformed GraphML"):
            graph_from_graphml("<graphml><graph><node id=0 /></graphml>")

    def test_non_graphml_root_rejected(self):
        with pytest.raises(TopologyError, match="not a GraphML document"):
            graph_from_graphml("<svg><graph/></svg>")

    def test_document_without_graph_rejected(self):
        with pytest.raises(TopologyError, match="no <graph>"):
            graph_from_graphml(
                '<graphml xmlns="http://graphml.graphdrawing.org/xmlns"></graphml>'
            )

    def test_duplicate_node_id_rejected(self):
        text = document(
            '<node id="0"/><node id="0"/>', '<edge source="0" target="0"/>'
        )
        with pytest.raises(TopologyError, match="duplicate GraphML node id"):
            graph_from_graphml(text)

    def test_node_without_id_rejected(self):
        text = document("<node/>", "")
        with pytest.raises(TopologyError, match="without an id"):
            graph_from_graphml(text)

    def test_edge_to_undeclared_node_rejected(self):
        text = document(
            '<node id="0"/>', '<edge source="0" target="ghost"/>'
        )
        with pytest.raises(TopologyError, match="undeclared node ids"):
            graph_from_graphml(text)

    def test_negative_weight_rejected(self):
        text = document(
            '<node id="0"/><node id="1"/>',
            '<edge source="0" target="1"><data key="d1">-3</data></edge>',
        )
        with pytest.raises(TopologyError, match="must be positive"):
            graph_from_graphml(text)

    def test_non_numeric_weight_rejected(self):
        text = document(
            '<node id="0"/><node id="1"/>',
            '<edge source="0" target="1"><data key="d1">heavy</data></edge>',
        )
        with pytest.raises(TopologyError, match="is not a number"):
            graph_from_graphml(text)

    def test_edgeless_graph_rejected(self):
        with pytest.raises(TopologyError, match="no usable links"):
            graph_from_graphml(document('<node id="0"/>', ""))


class TestMultiEdgeHandling:
    PARALLEL = document(
        '<node id="0"/><node id="1"/>',
        '<edge source="0" target="1"><data key="d1">3</data></edge>'
        '<edge source="1" target="0"><data key="d1">2</data></edge>',
    )

    def test_keep_preserves_parallel_links(self):
        graph = graph_from_graphml(self.PARALLEL, multi="keep")
        assert graph.number_of_edges() == 2

    def test_merge_keeps_the_cheapest(self):
        graph = graph_from_graphml(self.PARALLEL, multi="merge")
        assert graph.number_of_edges() == 1
        assert graph.edges()[0].weight == 2.0

    def test_error_mode_rejects(self):
        with pytest.raises(TopologyError, match="parallel link"):
            graph_from_graphml(self.PARALLEL, multi="error")

    def test_unknown_mode_rejected(self):
        with pytest.raises(TopologyError, match="unknown multi-edge mode"):
            graph_from_graphml(self.PARALLEL, multi="average")


class TestFileLoading:
    def test_load_graphml_names_by_stem(self, tmp_path):
        path = tmp_path / "mini.graphml"
        path.write_text(TRIANGLE)
        assert load_graphml(path).name == "mini"

    def test_load_topology_file_dispatches_on_suffix(self, tmp_path):
        graphml_path = tmp_path / "net.graphml"
        graphml_path.write_text(TRIANGLE)
        edges_path = tmp_path / "net.edges"
        edges_path.write_text("a b 1\nb c 2\nc a 1\n")
        assert load_topology_file(graphml_path).number_of_edges() == 3
        assert load_topology_file(edges_path).number_of_edges() == 3

    def test_require_connected_rejects_split_graphml(self, tmp_path):
        text = document(
            '<node id="0"/><node id="1"/><node id="2"/><node id="3"/>',
            '<edge source="0" target="1"/><edge source="2" target="3"/>',
        )
        path = tmp_path / "split.graphml"
        path.write_text(text)
        with pytest.raises(TopologyError, match="disconnected"):
            load_topology_file(path, require_connected=True)

    def test_every_committed_graphml_snapshot_parses(self):
        for path in sorted(DATA_DIR.glob("*.graphml")):
            graph = load_graphml(path)
            assert graph.number_of_edges() >= 3, path.name
