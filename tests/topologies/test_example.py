"""Tests for the Figure 1(a) example network and its embedding."""

import pytest

from repro.embedding.validation import validate_embedding
from repro.routing.tables import RoutingTables
from repro.topologies.example import example_face_names, example_fig1, example_fig1_embedding


class TestExampleGraph:
    def test_six_nodes_eight_links(self, fig1_graph):
        assert fig1_graph.number_of_nodes() == 6
        assert fig1_graph.number_of_edges() == 8

    def test_node_d_has_three_interfaces(self, fig1_graph):
        assert fig1_graph.degree("D") == 3
        assert set(fig1_graph.neighbors("D")) == {"B", "E", "F"}

    def test_shortest_path_tree_matches_figure(self, fig1_graph):
        tables = RoutingTables(fig1_graph)
        assert tables.shortest_path("A", "F") == ["A", "B", "D", "E", "F"]
        assert tables.shortest_path("C", "F") == ["C", "E", "F"]


class TestExampleEmbedding:
    def test_four_cycles_on_the_sphere(self, fig1_embedding):
        assert fig1_embedding.number_of_faces == 4
        assert fig1_embedding.genus == 0

    def test_embedding_is_valid(self, fig1_embedding):
        validate_embedding(fig1_embedding.graph, fig1_embedding.rotation, fig1_embedding.faces)

    def test_face_names_match_cycle_walks(self, fig1_embedding):
        names = example_face_names()
        node_sets = {frozenset(nodes) for nodes in names.values()}
        traced = {face.node_set for face in fig1_embedding.faces}
        assert node_sets == traced

    def test_fresh_instances_are_equal_but_independent(self):
        first = example_fig1()
        second = example_fig1()
        assert first.to_edge_list() == second.to_edge_list()
        first.remove_edge(0)
        assert second.number_of_edges() == 8

    def test_embedding_builder_reproducible(self):
        first = example_fig1_embedding()
        second = example_fig1_embedding()
        assert first.rotation == second.rotation
