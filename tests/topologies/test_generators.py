"""Tests for the synthetic topology generators."""

import pytest

from repro.errors import TopologyError
from repro.graph.connectivity import is_connected, is_two_edge_connected
from repro.embedding.planarity import is_planar
from repro.topologies.generators import (
    barbell_graph,
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    k33_graph,
    k5_graph,
    ladder_graph,
    petersen_graph,
    random_connected_graph,
    random_planar_graph,
    ring_graph,
    torus_grid_graph,
    waxman_graph,
    wheel_graph,
)


class TestDeterministicFamilies:
    def test_ring(self):
        ring = ring_graph(5)
        assert ring.number_of_nodes() == 5 and ring.number_of_edges() == 5
        assert all(ring.degree(node) == 2 for node in ring.nodes())

    def test_ring_too_small(self):
        with pytest.raises(TopologyError):
            ring_graph(2)

    def test_grid(self):
        grid = grid_graph(3, 4)
        assert grid.number_of_nodes() == 12
        assert grid.number_of_edges() == 3 * 3 + 2 * 4

    def test_torus_grid_is_regular(self):
        torus = torus_grid_graph(3, 4)
        assert all(torus.degree(node) == 4 for node in torus.nodes())

    def test_complete_graph(self):
        k6 = complete_graph(6)
        assert k6.number_of_edges() == 15

    def test_wheel(self):
        wheel = wheel_graph(5)
        assert wheel.degree("hub") == 5
        assert is_two_edge_connected(wheel)

    def test_ladder(self):
        ladder = ladder_graph(4)
        assert ladder.number_of_nodes() == 8
        assert is_two_edge_connected(ladder)

    def test_barbell_has_a_bridge(self):
        from repro.graph.connectivity import bridges

        assert len(bridges(barbell_graph(3, path_length=2))) >= 2

    def test_kuratowski_and_petersen_are_non_planar(self):
        assert not is_planar(k5_graph())
        assert not is_planar(k33_graph())
        assert not is_planar(petersen_graph())

    def test_petersen_is_three_regular(self):
        petersen = petersen_graph()
        assert all(petersen.degree(node) == 3 for node in petersen.nodes())


class TestRandomFamilies:
    def test_erdos_renyi_is_seed_deterministic(self):
        first = erdos_renyi_graph(12, 0.3, seed=5)
        second = erdos_renyi_graph(12, 0.3, seed=5)
        assert first.to_edge_list() == second.to_edge_list()

    def test_erdos_renyi_connectivity_patch(self):
        sparse = erdos_renyi_graph(15, 0.01, seed=1, ensure_connectivity=True)
        assert is_connected(sparse)

    def test_erdos_renyi_invalid_probability(self):
        with pytest.raises(TopologyError):
            erdos_renyi_graph(5, 1.5)

    def test_waxman_connected_and_weighted(self):
        graph = waxman_graph(20, seed=3)
        assert is_connected(graph)
        assert all(edge.weight >= 1.0 for edge in graph.edges())

    def test_random_planar_stays_planar(self):
        graph = random_planar_graph(4, 4, extra_diagonals=5, seed=2)
        assert is_planar(graph)
        assert is_connected(graph)

    def test_random_connected_graph(self):
        graph = random_connected_graph(15, extra_edges=10, seed=4)
        assert is_connected(graph)
        assert graph.number_of_edges() == 14 + 10
