"""Unit tests for the engine's tiny LRU (`_LruDict`).

Every memo in :mod:`repro.graph.spcache` — SSSP trees, APSP tables,
component labels, consumer caches — sits on this class, so its eviction
order and edge cases deserve direct coverage rather than only being
exercised incidentally through the engine.
"""

from repro.graph.spcache import _LruDict


class TestLruEviction:
    def test_put_evicts_oldest_beyond_maxsize(self):
        lru = _LruDict(3)
        for key in "abcd":
            lru.put(key, key.upper())
        assert list(lru) == ["b", "c", "d"]
        assert lru.get_or_none("a") is None

    def test_get_refreshes_recency(self):
        lru = _LruDict(3)
        for key in "abc":
            lru.put(key, key.upper())
        # Touching "a" makes "b" the eviction candidate.
        assert lru.get_or_none("a") == "A"
        lru.put("d", "D")
        assert list(lru) == ["c", "a", "d"]
        assert lru.get_or_none("b") is None

    def test_put_existing_key_refreshes_and_keeps_size(self):
        lru = _LruDict(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("a", 3)  # refresh, not grow
        lru.put("c", 4)  # evicts "b", the least recently put
        assert list(lru) == ["a", "c"]
        assert lru.get_or_none("a") == 3
        assert lru.get_or_none("b") is None

    def test_miss_returns_none_without_inserting(self):
        lru = _LruDict(2)
        assert lru.get_or_none("ghost") is None
        assert len(lru) == 0

    def test_none_values_are_indistinguishable_from_misses(self):
        # Engine memos never store None — get_or_none treats it as a miss,
        # which this pins down as the documented (if sharp-edged) contract.
        lru = _LruDict(2)
        lru.put("a", None)
        assert lru.get_or_none("a") is None
        assert "a" in lru

    def test_maxsize_zero_stores_nothing(self):
        lru = _LruDict(0)
        lru.put("a", 1)
        assert len(lru) == 0
        assert lru.get_or_none("a") is None
        # Repeated puts must not leak entries either.
        for key in "abc":
            lru.put(key, key)
        assert len(lru) == 0

    def test_maxsize_one_keeps_only_latest(self):
        lru = _LruDict(1)
        lru.put("a", 1)
        lru.put("b", 2)
        assert list(lru) == ["b"]
        assert lru.get_or_none("a") is None
        assert lru.get_or_none("b") == 2
