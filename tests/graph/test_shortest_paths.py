"""Unit tests for shortest-path computations."""

import pytest

from repro.errors import NodeNotFound, NoPathExists
from repro.graph.multigraph import Graph
from repro.graph.shortest_paths import (
    all_pairs_shortest_costs,
    diameter,
    dijkstra,
    eccentricity,
    path_cost,
    shortest_path,
    shortest_path_cost,
    shortest_path_dag,
    shortest_path_tree_to,
)


@pytest.fixture()
def weighted_graph() -> Graph:
    # a --1-- b --1-- c
    #  \------5------/
    return Graph.from_edge_list([("a", "b", 1.0), ("b", "c", 1.0), ("a", "c", 5.0)])


class TestDijkstra:
    def test_distances(self, weighted_graph):
        dist, _parent = dijkstra(weighted_graph, "a")
        assert dist == {"a": 0.0, "b": 1.0, "c": 2.0}

    def test_parents_form_tree(self, weighted_graph):
        _dist, parent = dijkstra(weighted_graph, "a")
        assert parent["c"][0] == "b"
        assert parent["b"][0] == "a"

    def test_excluded_edges_change_route(self, weighted_graph):
        edge_ab = weighted_graph.edge_ids_between("a", "b")[0]
        dist, _parent = dijkstra(weighted_graph, "a", excluded_edges={edge_ab})
        assert dist["b"] == pytest.approx(6.0)

    def test_unknown_source_raises(self, weighted_graph):
        with pytest.raises(NodeNotFound):
            dijkstra(weighted_graph, "zzz")

    def test_unreachable_nodes_absent(self):
        graph = Graph.from_edge_list([("a", "b")])
        graph.ensure_node("island")
        dist, _parent = dijkstra(graph, "a")
        assert "island" not in dist

    def test_parallel_edges_use_cheapest(self):
        graph = Graph()
        graph.add_edge("a", "b", 10.0)
        graph.add_edge("a", "b", 2.0)
        dist, parent = dijkstra(graph, "a")
        assert dist["b"] == pytest.approx(2.0)
        assert parent["b"][1] == 1

    def test_deterministic_tie_breaking(self):
        # Two equal-cost paths a-b-d and a-c-d: the lexicographically smaller
        # predecessor must win, on every call.
        graph = Graph.from_edge_list([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        parents = {dijkstra(graph, "a")[1]["d"][0] for _ in range(5)}
        assert parents == {"b"}


class TestShortestPath:
    def test_node_sequence(self, weighted_graph):
        assert shortest_path(weighted_graph, "a", "c") == ["a", "b", "c"]

    def test_cost(self, weighted_graph):
        assert shortest_path_cost(weighted_graph, "a", "c") == pytest.approx(2.0)

    def test_no_path_raises(self):
        graph = Graph.from_edge_list([("a", "b")])
        graph.ensure_node("island")
        with pytest.raises(NoPathExists):
            shortest_path(graph, "a", "island")

    def test_path_to_self(self, weighted_graph):
        assert shortest_path(weighted_graph, "a", "a") == ["a"]

    def test_path_cost_hop_count(self, weighted_graph):
        assert path_cost(weighted_graph, ["a", "b", "c"], hop_count=True) == 2.0
        assert path_cost(weighted_graph, ["a", "c"], hop_count=False) == pytest.approx(5.0)

    def test_path_cost_invalid_hop_raises(self, weighted_graph):
        with pytest.raises(NoPathExists):
            path_cost(weighted_graph, ["a", "zzz"])


class TestTreesAndDags:
    def test_tree_to_destination(self, weighted_graph):
        tree = shortest_path_tree_to(weighted_graph, "c")
        assert tree["a"][0] == "b"
        assert tree["b"][0] == "c"
        assert "c" not in tree

    def test_tree_respects_failures(self, weighted_graph):
        edge_bc = weighted_graph.edge_ids_between("b", "c")[0]
        tree = shortest_path_tree_to(weighted_graph, "c", excluded_edges={edge_bc})
        assert tree["a"][0] == "c"
        assert tree["b"][0] == "a"

    def test_dag_contains_all_equal_cost_next_hops(self):
        graph = Graph.from_edge_list([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        dag = shortest_path_dag(graph, "d")
        assert {hop for hop, _e in dag["a"]} == {"b", "c"}

    def test_all_pairs(self, weighted_graph):
        costs = all_pairs_shortest_costs(weighted_graph)
        assert costs["a"]["c"] == pytest.approx(2.0)
        assert costs["c"]["a"] == pytest.approx(2.0)


class TestDiameter:
    def test_hop_diameter_ignores_weights(self, weighted_graph):
        assert diameter(weighted_graph, hop_count=True) == 1.0 or diameter(
            weighted_graph, hop_count=True
        ) == 2.0
        # Triangle: every node reaches every other in one hop.
        assert diameter(weighted_graph, hop_count=True) == 1.0

    def test_weighted_diameter(self, weighted_graph):
        # Costliest shortest path is a->c (or c->a) at cost 2 via b.
        assert diameter(weighted_graph, hop_count=False) == pytest.approx(2.0)

    def test_eccentricity(self, weighted_graph):
        assert eccentricity(weighted_graph, "a", hop_count=True) == 1.0

    def test_empty_graph(self):
        assert diameter(Graph()) == 0.0

    def test_path_graph_diameter(self):
        graph = Graph.from_edge_list([("a", "b"), ("b", "c"), ("c", "d")])
        assert diameter(graph, hop_count=True) == 3.0
