"""Unit tests for traversals, spanning trees and cycle finding."""

import pytest

from repro.errors import NodeNotFound
from repro.graph.multigraph import Graph
from repro.graph.traversal import bfs_order, bfs_tree, dfs_order, find_cycle, spanning_tree_edges
from repro.topologies.generators import grid_graph, ring_graph


@pytest.fixture()
def path_graph() -> Graph:
    return Graph.from_edge_list([("a", "b"), ("b", "c"), ("c", "d")])


class TestBfs:
    def test_order_starts_at_source(self, path_graph):
        assert bfs_order(path_graph, "a") == ["a", "b", "c", "d"]

    def test_order_respects_exclusions(self, path_graph):
        edge_bc = path_graph.edge_ids_between("b", "c")[0]
        assert bfs_order(path_graph, "a", {edge_bc}) == ["a", "b"]

    def test_unknown_source_raises(self, path_graph):
        with pytest.raises(NodeNotFound):
            bfs_order(path_graph, "zzz")

    def test_tree_has_one_entry_per_reachable_node(self, path_graph):
        tree = bfs_tree(path_graph, "a")
        assert set(tree) == {"b", "c", "d"}
        assert tree["d"][0] == "c"


class TestDfs:
    def test_visits_every_node(self):
        grid = grid_graph(3, 3)
        assert len(dfs_order(grid, "r0c0")) == 9

    def test_prefers_lexicographic_neighbors(self, path_graph):
        order = dfs_order(path_graph, "b")
        assert order[0] == "b"
        assert order[1] == "a"


class TestSpanningTree:
    def test_tree_size(self):
        grid = grid_graph(3, 4)
        assert len(spanning_tree_edges(grid)) == 11

    def test_tree_of_empty_graph(self):
        assert spanning_tree_edges(Graph()) == []

    def test_tree_edges_exist(self, path_graph):
        assert sorted(spanning_tree_edges(path_graph)) == [0, 1, 2]


class TestFindCycle:
    def test_tree_has_no_cycle(self, path_graph):
        assert find_cycle(path_graph) is None

    def test_ring_cycle_found(self):
        ring = ring_graph(5)
        cycle = find_cycle(ring)
        assert cycle is not None
        assert sorted(cycle) == ring.edge_ids()

    def test_parallel_edges_form_cycle(self):
        graph = Graph()
        graph.add_edge("a", "b")
        graph.add_edge("a", "b")
        cycle = find_cycle(graph)
        assert cycle is not None and len(cycle) == 2

    def test_cycle_edges_form_closed_walk(self):
        graph = Graph.from_edge_list(
            [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("a", "e")]
        )
        cycle = find_cycle(graph)
        assert cycle is not None
        # Every node on the cycle must have even degree within the cycle edges.
        degree = {}
        for edge_id in cycle:
            edge = graph.edge(edge_id)
            degree[edge.u] = degree.get(edge.u, 0) + 1
            degree[edge.v] = degree.get(edge.v, 0) + 1
        assert all(count == 2 for count in degree.values())
