"""Unit tests for darts (directed half-edges)."""

from repro.graph.darts import Dart


def test_reversed_swaps_endpoints_and_keeps_edge_id():
    dart = Dart(3, "u", "v")
    back = dart.reversed()
    assert back == Dart(3, "v", "u")
    assert back.reversed() == dart


def test_endpoints_property():
    assert Dart(0, "a", "b").endpoints == ("a", "b")


def test_darts_are_hashable_and_comparable():
    forward = Dart(1, "a", "b")
    duplicate = Dart(1, "a", "b")
    other = Dart(2, "a", "b")
    assert forward == duplicate
    assert len({forward, duplicate, other}) == 2
    assert sorted([other, forward])[0] == forward


def test_dart_ordering_is_by_edge_then_tail():
    assert Dart(0, "z", "a") < Dart(1, "a", "b")
    assert Dart(2, "a", "b") < Dart(2, "b", "a")
