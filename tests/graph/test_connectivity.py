"""Unit tests for connectivity analysis."""

import pytest

from repro.graph.connectivity import (
    articulation_points,
    biconnected_edge_components,
    bridges,
    connected_components,
    edge_connectivity_at_least,
    is_connected,
    is_two_edge_connected,
    non_disconnecting,
    same_component,
)
from repro.graph.multigraph import Graph
from repro.topologies.generators import barbell_graph, ring_graph


@pytest.fixture()
def two_triangles_with_bridge() -> Graph:
    """Two triangles joined by one bridge edge."""
    return Graph.from_edge_list(
        [
            ("a", "b"), ("b", "c"), ("a", "c"),
            ("c", "d"),  # the bridge
            ("d", "e"), ("e", "f"), ("d", "f"),
        ]
    )


class TestComponents:
    def test_connected_graph_single_component(self, two_triangles_with_bridge):
        assert len(connected_components(two_triangles_with_bridge)) == 1
        assert is_connected(two_triangles_with_bridge)

    def test_components_after_failures(self, two_triangles_with_bridge):
        bridge_edge = two_triangles_with_bridge.edge_ids_between("c", "d")[0]
        components = connected_components(two_triangles_with_bridge, {bridge_edge})
        assert len(components) == 2

    def test_empty_graph_is_connected(self):
        assert is_connected(Graph())

    def test_isolated_node_disconnects(self):
        graph = Graph.from_edge_list([("a", "b")])
        graph.ensure_node("island")
        assert not is_connected(graph)

    def test_same_component(self, two_triangles_with_bridge):
        bridge_edge = two_triangles_with_bridge.edge_ids_between("c", "d")[0]
        assert same_component(two_triangles_with_bridge, "a", "f")
        assert not same_component(two_triangles_with_bridge, "a", "f", {bridge_edge})
        assert same_component(two_triangles_with_bridge, "a", "a", {bridge_edge})


class TestBridgesAndArticulation:
    def test_bridge_detection(self, two_triangles_with_bridge):
        bridge_edge = two_triangles_with_bridge.edge_ids_between("c", "d")[0]
        assert bridges(two_triangles_with_bridge) == [bridge_edge]

    def test_cycle_has_no_bridges(self):
        assert bridges(ring_graph(6)) == []

    def test_every_tree_edge_is_a_bridge(self):
        graph = Graph.from_edge_list([("a", "b"), ("b", "c"), ("b", "d")])
        assert sorted(bridges(graph)) == [0, 1, 2]

    def test_parallel_edges_are_not_bridges(self):
        graph = Graph()
        graph.add_edge("a", "b")
        graph.add_edge("a", "b")
        assert bridges(graph) == []

    def test_articulation_points(self, two_triangles_with_bridge):
        assert articulation_points(two_triangles_with_bridge) == {"c", "d"}

    def test_no_articulation_in_ring(self):
        assert articulation_points(ring_graph(5)) == set()

    def test_barbell_articulation(self):
        graph = barbell_graph(3, path_length=1)
        cut_vertices = articulation_points(graph)
        assert "m0" in cut_vertices
        assert "l0" in cut_vertices and "r0" in cut_vertices


class TestBiconnectedComponents:
    def test_partition_of_edges(self, two_triangles_with_bridge):
        components = biconnected_edge_components(two_triangles_with_bridge)
        all_edges = sorted(edge for component in components for edge in component)
        assert all_edges == two_triangles_with_bridge.edge_ids()

    def test_triangles_and_bridge_are_separate_components(self, two_triangles_with_bridge):
        components = biconnected_edge_components(two_triangles_with_bridge)
        sizes = sorted(len(component) for component in components)
        assert sizes == [1, 3, 3]

    def test_ring_is_one_component(self):
        components = biconnected_edge_components(ring_graph(7))
        assert len(components) == 1
        assert len(components[0]) == 7


class TestEdgeConnectivity:
    def test_two_edge_connected_ring(self):
        assert is_two_edge_connected(ring_graph(4))

    def test_bridge_breaks_two_edge_connectivity(self, two_triangles_with_bridge):
        assert not is_two_edge_connected(two_triangles_with_bridge)

    def test_single_node_is_two_edge_connected(self):
        graph = Graph()
        graph.add_node("a")
        assert is_two_edge_connected(graph)

    def test_edge_connectivity_at_least(self):
        ring = ring_graph(5)
        assert edge_connectivity_at_least(ring, 1)
        assert edge_connectivity_at_least(ring, 2)
        assert not edge_connectivity_at_least(ring, 3)

    def test_non_disconnecting(self, two_triangles_with_bridge):
        triangle_edge = two_triangles_with_bridge.edge_ids_between("a", "b")[0]
        bridge_edge = two_triangles_with_bridge.edge_ids_between("c", "d")[0]
        assert non_disconnecting(two_triangles_with_bridge, [triangle_edge])
        assert not non_disconnecting(two_triangles_with_bridge, [bridge_edge])

    def test_abilene_is_two_edge_connected(self, abilene_graph):
        assert is_two_edge_connected(abilene_graph)
