"""Unit tests for the multigraph substrate."""

import pytest

from repro.errors import DuplicateNode, EdgeNotFound, GraphError, NodeNotFound
from repro.graph.multigraph import Edge, Graph


class TestNodeManagement:
    def test_add_node_returns_name(self):
        graph = Graph()
        assert graph.add_node("a") == "a"

    def test_add_duplicate_node_raises(self):
        graph = Graph()
        graph.add_node("a")
        with pytest.raises(DuplicateNode):
            graph.add_node("a")

    def test_ensure_node_is_idempotent(self):
        graph = Graph()
        graph.ensure_node("a")
        graph.ensure_node("a")
        assert graph.nodes() == ["a"]

    def test_contains_and_len(self):
        graph = Graph()
        graph.add_node("a")
        graph.add_node("b")
        assert "a" in graph
        assert "c" not in graph
        assert len(graph) == 2

    def test_remove_node_removes_incident_edges(self):
        graph = Graph.from_edge_list([("a", "b"), ("b", "c"), ("a", "c")])
        removed = graph.remove_node("b")
        assert len(removed) == 2
        assert graph.number_of_edges() == 1
        assert not graph.has_node("b")

    def test_remove_missing_node_raises(self):
        graph = Graph()
        with pytest.raises(NodeNotFound):
            graph.remove_node("ghost")


class TestEdgeManagement:
    def test_add_edge_creates_endpoints(self):
        graph = Graph()
        edge_id = graph.add_edge("a", "b", 2.0)
        assert graph.has_node("a") and graph.has_node("b")
        assert graph.edge(edge_id).weight == 2.0

    def test_edge_ids_are_sequential_and_stable(self):
        graph = Graph()
        first = graph.add_edge("a", "b")
        second = graph.add_edge("b", "c")
        graph.remove_edge(first)
        third = graph.add_edge("c", "d")
        assert (first, second, third) == (0, 1, 2)

    def test_self_loop_rejected(self):
        graph = Graph()
        with pytest.raises(GraphError):
            graph.add_edge("a", "a")

    def test_non_positive_weight_rejected(self):
        with pytest.raises(GraphError):
            Edge(0, "a", "b", 0.0)

    def test_parallel_edges_supported(self):
        graph = Graph()
        graph.add_edge("a", "b", 1.0)
        graph.add_edge("a", "b", 5.0)
        assert graph.number_of_edges() == 2
        assert len(graph.edge_ids_between("a", "b")) == 2

    def test_edge_lookup_missing_raises(self):
        graph = Graph()
        with pytest.raises(EdgeNotFound):
            graph.edge(42)

    def test_add_edge_with_id(self):
        graph = Graph()
        graph.add_edge_with_id(10, "a", "b", 3.0)
        assert graph.edge(10).weight == 3.0
        # Automatic ids continue above the explicit one.
        assert graph.add_edge("b", "c") == 11

    def test_add_edge_with_duplicate_id_raises(self):
        graph = Graph()
        graph.add_edge_with_id(3, "a", "b")
        with pytest.raises(GraphError):
            graph.add_edge_with_id(3, "b", "c")

    def test_edge_other_and_dart(self):
        graph = Graph()
        edge_id = graph.add_edge("a", "b")
        edge = graph.edge(edge_id)
        assert edge.other("a") == "b"
        assert edge.other("b") == "a"
        with pytest.raises(GraphError):
            edge.other("c")
        dart = edge.dart_from("b")
        assert dart.tail == "b" and dart.head == "a"


class TestInspection:
    @pytest.fixture()
    def triangle(self) -> Graph:
        return Graph.from_edge_list([("a", "b", 1.0), ("b", "c", 2.0), ("a", "c", 3.0)])

    def test_degree_and_neighbors(self, triangle):
        assert triangle.degree("a") == 2
        assert set(triangle.neighbors("a")) == {"b", "c"}

    def test_darts_out_and_all_darts(self, triangle):
        darts = triangle.darts_out("a")
        assert all(dart.tail == "a" for dart in darts)
        assert len(triangle.darts()) == 2 * triangle.number_of_edges()

    def test_total_weight(self, triangle):
        assert triangle.total_weight() == pytest.approx(6.0)

    def test_iter_adjacent_respects_exclusions(self, triangle):
        edge_ab = triangle.edge_ids_between("a", "b")[0]
        visible = list(triangle.iter_adjacent("a", excluded_edges={edge_ab}))
        assert [neighbor for neighbor, _e, _w in visible] == ["c"]

    def test_has_edge_between(self, triangle):
        assert triangle.has_edge_between("a", "b")
        assert not triangle.has_edge_between("a", "z")

    def test_incident_edges_missing_node(self, triangle):
        with pytest.raises(NodeNotFound):
            triangle.incident_edge_ids("zzz")

    def test_adjacency_mapping(self, triangle):
        mapping = triangle.adjacency_mapping()
        assert sorted(mapping["b"]) == ["a", "c"]


class TestDerivedGraphs:
    @pytest.fixture()
    def square(self) -> Graph:
        return Graph.from_edge_list([("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")])

    def test_copy_is_independent(self, square):
        clone = square.copy()
        clone.remove_edge(0)
        assert square.number_of_edges() == 4
        assert clone.number_of_edges() == 3

    def test_copy_preserves_edge_ids_and_weights(self, square):
        clone = square.copy()
        assert clone.to_edge_list() == square.to_edge_list()
        assert clone.edge_ids() == square.edge_ids()

    def test_without_edges(self, square):
        pruned = square.without_edges([0, 2])
        assert pruned.number_of_edges() == 2
        assert square.number_of_edges() == 4

    def test_subgraph_keeps_ids(self, square):
        sub = square.subgraph(["a", "b", "c"])
        assert sub.number_of_nodes() == 3
        assert sub.number_of_edges() == 2
        assert set(sub.edge_ids()) <= set(square.edge_ids())

    def test_edge_subgraph(self, square):
        sub = square.edge_subgraph([1, 3])
        assert sub.number_of_edges() == 2
        assert sub.number_of_nodes() == 4
        assert sub.edge(1).endpoints == square.edge(1).endpoints

    def test_from_edge_list_with_and_without_weights(self):
        graph = Graph.from_edge_list([("a", "b"), ("b", "c", 4.0)])
        assert graph.edge(0).weight == 1.0
        assert graph.edge(1).weight == 4.0
