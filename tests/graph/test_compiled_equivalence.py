"""Randomized equivalence: the compiled engine vs. the reference algorithms.

The compiled shortest-path core (:mod:`repro.graph.compiled`) and its
memoizing engine (:mod:`repro.graph.spcache`) exist purely for speed; every
answer must be **bit-identical** to the pure reference implementations in
:mod:`repro.graph.shortest_paths` and :mod:`repro.graph.connectivity` —
including deterministic equal-cost tie-breaking and even the insertion order
of the returned dicts (equal-cost sorts downstream rely on it).  This suite
checks that over randomized multigraphs (parallel edges, random weights,
disconnected pieces), random exclusion sets, and the real topologies.
"""

import random

import pytest

from repro.failures.scenarios import FailureScenario, all_affecting_pairs
from repro.graph.compiled import CompiledGraph
from repro.graph.connectivity import connected_components, same_component
from repro.graph.multigraph import Graph
from repro.graph.shortest_paths import (
    all_pairs_shortest_costs,
    dijkstra,
    shortest_path_cost,
)
from repro.graph.spcache import ShortestPathEngine, engine_for
from repro.errors import NoPathExists
from repro.routing.tables import RoutingTables
from repro.topologies.corpus import parse_topology_spec, topology_set
from repro.topologies.registry import by_name


def random_graph(seed: int, nodes: int = 10, extra_edges: int = 14) -> Graph:
    """A random connected-ish multigraph; some seeds leave isolated pieces."""
    rng = random.Random(seed)
    names = [f"n{i:02d}" for i in range(nodes)]
    rng.shuffle(names)
    graph = Graph(f"random-{seed}")
    for name in names:
        graph.ensure_node(name)
    # A spanning path over a random subset keeps most seeds connected while
    # leaving the rest as isolated nodes (the disconnected case).
    backbone = names[: rng.randint(max(2, nodes - 3), nodes)]
    for u, v in zip(backbone, backbone[1:]):
        graph.add_edge(u, v, rng.choice([1.0, 1.0, 2.0, 2.5, 7.0]))
    for _ in range(extra_edges):
        u, v = rng.sample(names, 2)
        graph.add_edge(u, v, rng.choice([1.0, 1.0, 1.0, 3.0, 10.0]))
    return graph


def random_exclusions(rng: random.Random, graph: Graph):
    edge_ids = graph.edge_ids()
    k = rng.randint(0, min(4, len(edge_ids)))
    return frozenset(rng.sample(edge_ids, k))


@pytest.mark.parametrize("seed", range(12))
def test_engine_sssp_matches_reference_dijkstra(seed):
    graph = random_graph(seed)
    engine = ShortestPathEngine(graph)
    rng = random.Random(1000 + seed)
    for _ in range(8):
        excluded = random_exclusions(rng, graph)
        source = rng.choice(graph.nodes())
        ref_dist, ref_parent = dijkstra(graph, source, excluded)
        dist, parent = engine.sssp(source, excluded)
        assert dist == ref_dist
        assert parent == ref_parent
        # Insertion order matters too: RoutingTables' equal-cost hop sort is
        # stable in it.
        assert list(dist) == list(ref_dist)
        assert list(parent) == list(ref_parent)


@pytest.mark.parametrize("topology", ["abilene", "teleglobe", "geant"])
def test_engine_sssp_matches_reference_on_real_topologies(topology):
    graph = by_name(topology)
    engine = engine_for(graph)
    rng = random.Random(7)
    for _ in range(5):
        excluded = random_exclusions(rng, graph)
        for source in graph.nodes():
            ref = dijkstra(graph, source, excluded)
            fast = engine.sssp(source, excluded)
            assert fast[0] == ref[0] and fast[1] == ref[1]
            assert list(fast[1]) == list(ref[1])


@pytest.mark.parametrize("seed", range(6))
def test_all_pairs_costs_match(seed):
    graph = random_graph(seed, nodes=8, extra_edges=10)
    engine = ShortestPathEngine(graph)
    rng = random.Random(2000 + seed)
    excluded = random_exclusions(rng, graph)
    assert engine.all_pairs_shortest_costs(excluded) == all_pairs_shortest_costs(
        graph, excluded
    )


@pytest.mark.parametrize("seed", range(8))
def test_cost_between_matches_reference(seed):
    graph = random_graph(seed)
    engine = ShortestPathEngine(graph)
    rng = random.Random(3000 + seed)
    nodes = graph.nodes()
    for _ in range(10):
        excluded = random_exclusions(rng, graph)
        source, destination = rng.sample(nodes, 2)
        try:
            expected = shortest_path_cost(graph, source, destination, excluded)
        except NoPathExists:
            with pytest.raises(NoPathExists):
                engine.cost_between(source, destination, excluded)
            continue
        assert engine.cost_between(source, destination, excluded) == expected


@pytest.mark.parametrize("seed", range(8))
def test_component_labels_match_connectivity(seed):
    graph = random_graph(seed)
    engine = ShortestPathEngine(graph)
    rng = random.Random(4000 + seed)
    nodes = graph.nodes()
    for _ in range(6):
        excluded = random_exclusions(rng, graph)
        components = connected_components(graph, excluded)
        assert engine.is_connected(excluded) == (len(components) == 1)
        for _ in range(15):
            u, v = rng.choice(nodes), rng.choice(nodes)
            assert engine.same_component(u, v, excluded) == same_component(
                graph, u, v, excluded
            )


def _legacy_affecting_pairs(graph, scenario, tables):
    """The pre-engine hop-walk implementation, verbatim."""
    failed = set(scenario.failed_links)
    pairs = []
    for source in graph.nodes():
        for destination in graph.nodes():
            if source == destination or not tables.has_route(source, destination):
                continue
            node = source
            affected = False
            while node != destination:
                entry = tables.entry(node, destination)
                if entry.egress.edge_id in failed:
                    affected = True
                    break
                node = entry.next_hop
            if affected:
                pairs.append((source, destination))
    return pairs


@pytest.mark.parametrize("seed", range(8))
def test_affecting_pairs_fast_path_matches_table_walk(seed):
    graph = random_graph(seed)
    tables = RoutingTables(graph)
    rng = random.Random(5000 + seed)
    for _ in range(6):
        excluded = random_exclusions(rng, graph)
        scenario = FailureScenario(tuple(excluded), kind="custom")
        fast = all_affecting_pairs(graph, scenario)
        assert fast == _legacy_affecting_pairs(graph, scenario, tables)
        # Same answer (and order) whether or not the default tables are
        # passed explicitly.
        assert fast == all_affecting_pairs(graph, scenario, tables)


def test_affecting_pairs_with_excluded_tables_uses_walk():
    graph = by_name("abilene")
    pre_failed = frozenset([graph.edge_ids()[0]])
    tables = RoutingTables(graph, excluded_edges=pre_failed)
    scenario = FailureScenario((graph.edge_ids()[1],), kind="custom")
    assert all_affecting_pairs(graph, scenario, tables) == _legacy_affecting_pairs(
        graph, scenario, tables
    )


# ----------------------------------------------------------------------
# incremental SSSP repair vs. full recompute, across the whole corpus
# ----------------------------------------------------------------------
@pytest.mark.parametrize("topology", topology_set("all"))
def test_repaired_sssp_matches_full_recompute_across_corpus(topology):
    """Repaired trees must be field-for-field identical to full Dijkstra.

    Randomized excluded-edge sets over every corpus topology; the engine
    route exercises the repair layer (zero-work aliasing, frontier repair,
    threshold fallback and the ``repair_safe`` guard for non-exact weights)
    while the reference runs the pure Dijkstra.  Identity covers distances,
    parents, tie-breaking and dict insertion order.
    """
    graph = parse_topology_spec(topology).build()
    engine = ShortestPathEngine(graph)
    rng = random.Random(topology)  # str seeds are process-stable
    edge_ids = graph.edge_ids()
    nodes = graph.nodes()
    for _trial in range(12):
        k = rng.randint(1, min(5, len(edge_ids)))
        excluded = frozenset(rng.sample(edge_ids, k))
        for source in rng.sample(nodes, min(4, len(nodes))):
            ref_dist, ref_parent = dijkstra(graph, source, excluded)
            dist, parent = engine.sssp(source, excluded)
            assert dist == ref_dist and parent == ref_parent
            assert list(dist) == list(ref_dist)
            assert list(parent) == list(ref_parent)
    info = engine.cache_info()
    if info["repair_safe"]:
        # Every corpus topology with exact weights must actually exercise
        # the repair layer in this workload, not silently fall back.
        assert info["repair_hits"] > 0
    else:
        assert info["repair_hits"] == 0 and info["repair_fallbacks"] == 0


@pytest.mark.parametrize("topology", topology_set("all"))
def test_content_tree_matches_full_recompute_across_corpus(topology):
    """``sssp_tree`` (order-free repair) must agree on values and parents."""
    graph = parse_topology_spec(topology).build()
    engine = ShortestPathEngine(graph)
    rng = random.Random("tree:" + topology)
    edge_ids = graph.edge_ids()
    compiled = engine.compiled
    names = compiled.names
    for _trial in range(10):
        k = rng.randint(1, min(4, len(edge_ids)))
        excluded = frozenset(rng.sample(edge_ids, k))
        source = rng.choice(graph.nodes())
        ref_dist, ref_parent = dijkstra(graph, source, excluded)
        dist, parent = engine.sssp_tree(source, excluded)
        assert {names[v]: c for v, c in dist.items()} == ref_dist
        assert {
            names[v]: (names[t], e) for v, (t, e) in parent.items()
        } == ref_parent


def test_repair_falls_back_above_affected_threshold():
    """A failure hitting most of a tree must recompute, not repair."""
    graph = by_name("abilene")
    engine = ShortestPathEngine(graph)
    source = graph.nodes()[0]
    # Excluding every edge on the source's failure-free tree affects every
    # reachable vertex — far beyond the fallback fraction.
    _dist, parent = engine.sssp(source)
    tree_edges = frozenset(edge_id for (_towards, edge_id) in parent.values())
    before = engine.repair_fallbacks
    ref = dijkstra(graph, source, tree_edges)
    fast = engine.sssp(source, tree_edges)
    assert fast[0] == ref[0] and fast[1] == ref[1]
    assert list(fast[0]) == list(ref[0])
    assert engine.repair_fallbacks == before + 1


def test_repair_disabled_on_inexact_weights():
    """Graphs with non-dyadic weights must never attempt a repair."""
    graph = parse_topology_spec("garr1999").build()
    engine = ShortestPathEngine(graph)
    assert not engine.compiled.repair_safe
    rng = random.Random(5)
    edge_ids = graph.edge_ids()
    for _ in range(6):
        excluded = frozenset(rng.sample(edge_ids, 2))
        source = rng.choice(graph.nodes())
        ref = dijkstra(graph, source, excluded)
        fast = engine.sssp(source, excluded)
        assert fast[0] == ref[0] and fast[1] == ref[1]
        assert list(fast[1]) == list(ref[1])
    assert engine.repair_hits == 0
    assert engine.repair_fallbacks == 0


def test_cache_info_reports_repair_counters():
    graph = by_name("abilene")
    engine = ShortestPathEngine(graph)
    info = engine.cache_info()
    for key in ("repair_hits", "repair_fallbacks", "repair_bases", "repair_safe"):
        assert key in info
    assert info["repair_safe"] == 1
    assert info["repair_hits"] == 0
    engine.sssp(graph.nodes()[0], frozenset({graph.edge_ids()[0]}))
    info = engine.cache_info()
    assert info["repair_hits"] + info["repair_fallbacks"] == 1
    assert info["repair_bases"] == 1


def test_engine_is_content_addressed():
    one = by_name("abilene")
    two = by_name("abilene")
    assert one is not two
    assert engine_for(one) is engine_for(two)
    # Mutating a graph changes its content signature and thus its engine.
    mutated = by_name("abilene")
    engine_before = engine_for(mutated)
    mutated.add_edge(mutated.nodes()[0], mutated.nodes()[-1], 5.0)
    assert engine_for(mutated) is not engine_before


def test_compiled_graph_exclusion_mask_round_trip():
    graph = by_name("abilene")
    compiled = CompiledGraph(graph)
    edge_ids = graph.edge_ids()[:3]
    mask = compiled.exclusion_mask(edge_ids)
    for edge_id in graph.edge_ids():
        assert bool((mask >> edge_id) & 1) == (edge_id in edge_ids)
