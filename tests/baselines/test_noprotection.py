"""Unit tests for the no-protection baseline."""

from repro.baselines.noprotection import NoProtection
from repro.core.coverage import coverage_report
from repro.failures.scenarios import all_affecting_pairs, single_link_failures


def _edge(graph, u, v):
    return graph.edge_ids_between(u, v)[0]


class TestNoProtection:
    def test_delivers_when_path_unaffected(self, abilene_graph):
        scheme = NoProtection(abilene_graph)
        failed = _edge(abilene_graph, "Seattle", "Denver")
        outcome = scheme.deliver("Atlanta", "Washington", failed_links=[failed])
        assert outcome.delivered

    def test_drops_at_the_failure_point(self, abilene_graph):
        scheme = NoProtection(abilene_graph)
        failed = _edge(abilene_graph, "Chicago", "NewYork")
        outcome = scheme.deliver("Indianapolis", "NewYork", failed_links=[failed])
        assert not outcome.delivered
        assert outcome.path[-1] == "Chicago"

    def test_loses_every_affected_pair(self, abilene_graph):
        scheme = NoProtection(abilene_graph)
        scenario = single_link_failures(abilene_graph)[0]
        affected = all_affecting_pairs(abilene_graph, scenario)
        outcomes = scheme.deliver_many(affected, failed_links=scenario.failed_links)
        assert all(not outcome.delivered for outcome in outcomes.values())

    def test_coverage_is_the_floor(self, abilene_graph, abilene_pr):
        scenarios = [s.failed_links for s in single_link_failures(abilene_graph)]
        floor = coverage_report(NoProtection(abilene_graph), scenarios)
        pr = coverage_report(abilene_pr, scenarios)
        assert floor.coverage < pr.coverage
