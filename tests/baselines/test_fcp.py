"""Unit tests for the Failure-Carrying Packets baseline."""

import pytest

from repro.baselines.fcp import FailureCarryingPackets
from repro.failures.sampling import all_multi_link_failures
from repro.failures.scenarios import single_link_failures
from repro.core.coverage import coverage_report
from repro.graph.shortest_paths import shortest_path_cost


def _edge(graph, u, v):
    return graph.edge_ids_between(u, v)[0]


class TestFailureFreeBehaviour:
    def test_matches_shortest_path(self, abilene_graph):
        scheme = FailureCarryingPackets(abilene_graph)
        outcome = scheme.deliver("Seattle", "Washington")
        assert outcome.delivered
        assert outcome.cost == pytest.approx(
            shortest_path_cost(abilene_graph, "Seattle", "Washington")
        )
        assert outcome.counter("spf_computations") == 0


class TestFailureHandling:
    def test_single_failure_recovered_with_one_recorded_failure(self, abilene_graph):
        scheme = FailureCarryingPackets(abilene_graph)
        failed = _edge(abilene_graph, "Denver", "KansasCity")
        outcome = scheme.deliver("Seattle", "KansasCity", failed_links=[failed])
        assert outcome.delivered
        assert outcome.counter("failures_recorded") == 1
        assert outcome.counter("spf_computations") >= 1

    def test_full_coverage_single_failures(self, abilene_graph):
        scheme = FailureCarryingPackets(abilene_graph)
        scenarios = [s.failed_links for s in single_link_failures(abilene_graph)]
        report = coverage_report(scheme, scenarios)
        assert report.full_coverage

    def test_full_coverage_dual_failures(self, abilene_graph):
        scheme = FailureCarryingPackets(abilene_graph)
        scenarios = [
            s.failed_links
            for s in all_multi_link_failures(abilene_graph, 2, require_connected=True, limit=40)
        ]
        report = coverage_report(scheme, scenarios)
        assert report.full_coverage

    def test_unreachable_destination_dropped(self):
        from repro.graph.multigraph import Graph

        graph = Graph.from_edge_list([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
        scheme = FailureCarryingPackets(graph)
        bridge = graph.edge_ids_between("c", "d")[0]
        outcome = scheme.deliver("a", "d", failed_links=[bridge])
        assert not outcome.delivered
        assert "unreachable" in outcome.drop_reason

    def test_stretch_never_below_one(self, abilene_graph):
        scheme = FailureCarryingPackets(abilene_graph)
        failed = _edge(abilene_graph, "Houston", "Atlanta")
        outcome = scheme.deliver("LosAngeles", "Atlanta", failed_links=[failed])
        baseline = shortest_path_cost(abilene_graph, "LosAngeles", "Atlanta")
        assert outcome.cost >= baseline - 1e-9


class TestOverheads:
    def test_header_bits_grow_with_carried_failures(self, abilene_graph):
        scheme = FailureCarryingPackets(abilene_graph)
        assert scheme.header_overhead_bits(1) == 4
        assert scheme.header_overhead_bits(3) == 12

    def test_online_computation_nonzero(self, abilene_graph):
        scheme = FailureCarryingPackets(abilene_graph)
        assert scheme.online_computation_per_failure() >= 1
