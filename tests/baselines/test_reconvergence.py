"""Unit tests for the re-convergence baseline scheme."""

import pytest

from repro.baselines.reconvergence import Reconvergence
from repro.core.coverage import coverage_report
from repro.failures.scenarios import single_link_failures
from repro.graph.shortest_paths import shortest_path_cost


def _edge(graph, u, v):
    return graph.edge_ids_between(u, v)[0]


class TestReconvergence:
    def test_follows_post_convergence_shortest_path(self, abilene_graph):
        scheme = Reconvergence(abilene_graph)
        failed = _edge(abilene_graph, "Chicago", "NewYork")
        outcome = scheme.deliver("Chicago", "NewYork", failed_links=[failed])
        assert outcome.delivered
        expected = shortest_path_cost(abilene_graph, "Chicago", "NewYork", excluded_edges=[failed])
        assert outcome.cost == pytest.approx(expected)

    def test_optimal_stretch_among_schemes(self, abilene_graph, abilene_pr):
        """Re-convergence is the stretch lower bound: no scheme can do better."""
        failed = [_edge(abilene_graph, "Denver", "KansasCity")]
        reconv = Reconvergence(abilene_graph).deliver("Seattle", "KansasCity", failed_links=failed)
        pr = abilene_pr.deliver("Seattle", "KansasCity", failed_links=failed)
        assert reconv.cost <= pr.cost + 1e-9

    def test_full_coverage(self, abilene_graph):
        scheme = Reconvergence(abilene_graph)
        scenarios = [s.failed_links for s in single_link_failures(abilene_graph)]
        assert coverage_report(scheme, scenarios).full_coverage

    def test_unreachable_destination_dropped(self):
        from repro.graph.multigraph import Graph

        graph = Graph.from_edge_list([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
        scheme = Reconvergence(graph)
        outcome = scheme.deliver("a", "d", failed_links=[graph.edge_ids_between("c", "d")[0]])
        assert not outcome.delivered

    def test_no_extra_overheads(self, abilene_graph):
        scheme = Reconvergence(abilene_graph)
        assert scheme.header_overhead_bits() == 0
        assert scheme.router_memory_entries() == 0
        assert scheme.online_computation_per_failure() == abilene_graph.number_of_nodes()
