"""Fast-path ``deliver_many`` overrides vs. the hop-by-hop engine.

Re-convergence, FCP, LFA and both Packet Re-cycling variants override
``deliver_many`` with flat walks (plus cross-scenario outcome memoization)
for sweep speed.  ``ForwardingScheme.deliver_many`` — the generic
implementation driving the real :class:`HopByHopEngine` — remains the
reference; every override must produce outcomes that are field-for-field
identical: status, path, hop-order cost summation, hop count, drop reason
and accounting counters.  Randomized over topologies, failure sets and pair
subsets, with repeated rounds per scheme instance so the memoized paths are
exercised as hard as the cold ones.
"""

import random

import pytest

from repro.baselines.fcp import FailureCarryingPackets
from repro.baselines.lfa import LoopFreeAlternates
from repro.baselines.reconvergence import Reconvergence
from repro.core.scheme import PacketRecycling, SimplePacketRecycling
from repro.forwarding.scheme import ForwardingScheme
from repro.topologies.registry import by_name

SCHEME_FACTORIES = {
    "reconvergence": lambda graph: Reconvergence(graph),
    "fcp": lambda graph: FailureCarryingPackets(graph),
    "lfa": lambda graph: LoopFreeAlternates(graph),
    "pr": lambda graph: PacketRecycling(graph, embedding_seed=7),
    "pr-1bit": lambda graph: SimplePacketRecycling(graph, embedding_seed=7),
}


def assert_outcomes_identical(fast, reference, context):
    assert fast.keys() == reference.keys(), context
    for pair in reference:
        a, b = fast[pair], reference[pair]
        assert a.source == b.source and a.destination == b.destination, context
        assert a.status == b.status, (context, pair, a.status, b.status)
        assert a.path == b.path, (context, pair, a.path, b.path)
        assert a.cost == b.cost, (context, pair, a.cost, b.cost)
        assert a.hops == b.hops, (context, pair)
        assert a.drop_reason == b.drop_reason, (context, pair)
        assert a.counters == b.counters, (context, pair, a.counters, b.counters)


@pytest.mark.parametrize("scheme_key", sorted(SCHEME_FACTORIES))
@pytest.mark.parametrize("topology", ["abilene", "teleglobe", "geant"])
def test_fast_path_matches_engine(topology, scheme_key):
    graph = by_name(topology)
    scheme = SCHEME_FACTORIES[scheme_key](graph)
    nodes = graph.nodes()
    pairs = [(u, v) for u in nodes for v in nodes if u != v]
    edge_ids = graph.edge_ids()
    rng = random.Random(hash((topology, scheme_key)) & 0xFFFF)
    for _round in range(8):
        failures = rng.choice([0, 1, 1, 2, 3, 5])
        failed = tuple(sorted(rng.sample(edge_ids, failures)))
        subset = rng.sample(pairs, min(40, len(pairs)))
        fast = scheme.deliver_many(subset, failed_links=failed)
        reference = ForwardingScheme.deliver_many(scheme, subset, failed_links=failed)
        assert_outcomes_identical(fast, reference, (topology, scheme_key, failed))


@pytest.mark.parametrize("scheme_key", sorted(SCHEME_FACTORIES))
def test_fast_path_memo_is_scenario_safe(scheme_key):
    """Outcomes memoized under one scenario must not leak into another.

    Alternating between failure sets that overlap on some edges is the
    adversarial case for the touched-edge pattern memo: a reused outcome is
    only legal when the new scenario agrees on every edge the original walk
    consulted.
    """
    graph = by_name("abilene")
    scheme = SCHEME_FACTORIES[scheme_key](graph)
    nodes = graph.nodes()
    pairs = [(u, v) for u in nodes for v in nodes if u != v]
    edge_ids = graph.edge_ids()
    rng = random.Random(99)
    scenario_pool = [
        tuple(sorted(rng.sample(edge_ids, rng.choice([1, 2, 4])))) for _ in range(6)
    ]
    for _round in range(3):
        for failed in scenario_pool:
            fast = scheme.deliver_many(pairs, failed_links=failed)
            reference = ForwardingScheme.deliver_many(scheme, pairs, failed_links=failed)
            assert_outcomes_identical(fast, reference, (scheme_key, failed))


def test_fresh_instances_share_memo_but_stay_correct():
    """Two PR instances with identical offline state share the engine memo."""
    graph = by_name("geant")
    first = PacketRecycling(graph, embedding_seed=7)
    second = PacketRecycling(graph, embedding_seed=7)
    edge_ids = graph.edge_ids()
    nodes = graph.nodes()
    pairs = [(u, v) for u in nodes for v in nodes if u != v][:60]
    failed = tuple(edge_ids[:2])
    warm = first.deliver_many(pairs, failed_links=failed)
    again = second.deliver_many(pairs, failed_links=failed)
    reference = ForwardingScheme.deliver_many(second, pairs, failed_links=failed)
    assert_outcomes_identical(again, reference, "shared-memo")
    assert_outcomes_identical(warm, reference, "first-instance")
