"""Unit tests for the Loop-Free Alternates baseline."""

import pytest

from repro.baselines.lfa import LoopFreeAlternates
from repro.core.coverage import coverage_report
from repro.failures.scenarios import single_link_failures
from repro.graph.multigraph import Graph
from repro.topologies.generators import ring_graph


def _edge(graph, u, v):
    return graph.edge_ids_between(u, v)[0]


class TestAlternateComputation:
    def test_alternates_satisfy_loop_free_condition(self, abilene_graph):
        scheme = LoopFreeAlternates(abilene_graph)
        for (node, destination), darts in scheme.alternates.items():
            for dart in darts:
                neighbor = dart.head
                assert (
                    scheme._costs[neighbor][destination]
                    < scheme._costs[neighbor][node] + scheme._costs[node][destination]
                )

    def test_primary_next_hop_never_listed_as_alternate(self, abilene_graph):
        scheme = LoopFreeAlternates(abilene_graph)
        for (node, destination), darts in scheme.alternates.items():
            primary = scheme.routing.next_hop(node, destination)
            assert all(dart.head != primary for dart in darts)


class TestForwarding:
    def test_failure_free_forwarding_matches_shortest_path(self, abilene_graph):
        scheme = LoopFreeAlternates(abilene_graph)
        outcome = scheme.deliver("Seattle", "NewYork")
        assert outcome.delivered
        assert outcome.counter("lfa_activations") == 0

    def test_protected_failure_uses_alternate(self, diamond_graph):
        # In K4 every neighbor of the source is a loop-free alternate towards
        # the destination, so the failed primary link is always repairable.
        scheme = LoopFreeAlternates(diamond_graph)
        failed = _edge(diamond_graph, "a", "d")
        outcome = scheme.deliver("a", "d", failed_links=[failed])
        assert outcome.delivered
        assert outcome.counter("lfa_activations") >= 1

    def test_ring_adjacent_destination_has_no_loop_free_alternate(self):
        """On a ring the LFA inequality fails for the neighbor destination
        (the alternate's own path is exactly as long as going back through
        the protecting router), so that failure is not repairable — the
        coverage gap the paper's mechanism closes."""
        ring = ring_graph(6)
        scheme = LoopFreeAlternates(ring)
        assert ("n0", "n1") not in scheme.alternates
        outcome = scheme.deliver("n0", "n1", failed_links=[_edge(ring, "n0", "n1")])
        assert not outcome.delivered

    def test_lower_coverage_than_pr(self, abilene_graph, abilene_pr):
        scenarios = [s.failed_links for s in single_link_failures(abilene_graph)]
        lfa_report = coverage_report(LoopFreeAlternates(abilene_graph), scenarios)
        pr_report = coverage_report(abilene_pr, scenarios)
        assert pr_report.coverage == 1.0
        assert lfa_report.coverage <= pr_report.coverage

    def test_no_header_overhead(self, abilene_graph):
        scheme = LoopFreeAlternates(abilene_graph)
        assert scheme.header_overhead_bits() == 0
        assert scheme.router_memory_entries() == len(scheme.alternates)
