"""Tests for the class-based deployment policy of Section 7."""

import pytest

from repro.baselines.lfa import LoopFreeAlternates
from repro.forwarding.policy import DEFAULT_PROTECTED_CLASSES, ClassBasedProtection


def _edge(graph, u, v):
    return graph.edge_ids_between(u, v)[0]


class TestClassBasedProtection:
    @pytest.fixture(scope="class")
    def policy(self, request):
        abilene_pr = request.getfixturevalue("abilene_pr")
        return ClassBasedProtection(abilene_pr)

    def test_protected_class_is_recycled(self, policy, abilene_graph):
        failed = [_edge(abilene_graph, "KansasCity", "Indianapolis")]
        outcome = policy.deliver("Seattle", "Atlanta", failed_links=failed, dscp=46)
        assert outcome.delivered

    def test_unprotected_class_is_dropped_at_the_failure(self, policy, abilene_graph):
        failed = [_edge(abilene_graph, "KansasCity", "Indianapolis")]
        outcome = policy.deliver("Seattle", "Atlanta", failed_links=failed, dscp=0)
        assert not outcome.delivered
        assert outcome.path[-1] == "KansasCity"

    def test_failure_free_forwarding_identical_for_both_classes(self, policy):
        protected = policy.deliver("Seattle", "Atlanta", dscp=46)
        best_effort = policy.deliver("Seattle", "Atlanta", dscp=0)
        assert protected.path == best_effort.path

    def test_default_protected_classes_include_ef(self, policy):
        assert 46 in DEFAULT_PROTECTED_CLASSES
        assert policy.is_protected(46)
        assert not policy.is_protected(0)

    def test_custom_protected_classes(self, abilene_pr, abilene_graph):
        policy = ClassBasedProtection(abilene_pr, protected_classes={7})
        failed = [_edge(abilene_graph, "KansasCity", "Indianapolis")]
        assert policy.deliver("Seattle", "Atlanta", failed_links=failed, dscp=7).delivered
        assert not policy.deliver("Seattle", "Atlanta", failed_links=failed, dscp=46).delivered

    def test_custom_fallback_scheme(self, abilene_pr, abilene_graph):
        policy = ClassBasedProtection(abilene_pr, fallback_scheme=LoopFreeAlternates(abilene_graph))
        # With an LFA fallback, unprotected traffic gets best-effort repair
        # where an alternate exists, and PR still covers the protected class.
        failed = [_edge(abilene_graph, "KansasCity", "Indianapolis")]
        assert policy.deliver("Seattle", "Atlanta", failed_links=failed, dscp=46).delivered

    def test_overheads_come_from_the_protected_scheme(self, policy, abilene_pr):
        assert policy.header_overhead_bits() == abilene_pr.header_overhead_bits()
        assert policy.router_memory_entries() == abilene_pr.router_memory_entries()

    def test_name_mentions_policy(self, policy):
        assert "protected classes" in policy.name
