"""Unit tests for packet headers and the DSCP codec."""

import pytest

from repro.errors import HeaderFieldOverflow
from repro.forwarding.headers import DscpCodec, PacketHeader, link_identifier_bits


class TestPacketHeader:
    def test_initial_state(self):
        header = PacketHeader("F")
        assert header.destination == "F"
        assert not header.pr_bit
        assert header.dd_value is None
        assert header.known_failures() == frozenset()

    def test_mark_and_clear_recycling(self):
        header = PacketHeader("F")
        header.mark_recycling(3.0)
        assert header.pr_bit and header.dd_value == 3.0
        header.clear_recycling()
        assert not header.pr_bit and header.dd_value is None

    def test_fcp_failure_accumulation(self):
        header = PacketHeader("F")
        header.record_failure(4)
        header.record_failure(4)
        header.record_failure(9)
        assert header.known_failures() == frozenset({4, 9})

    def test_overhead_accounting(self):
        header = PacketHeader("F")
        assert header.pr_overhead_bits(dd_bits=3) == 4
        header.record_failure(1)
        header.record_failure(2)
        assert header.fcp_overhead_bits(link_id_bits=5) == 10

    def test_copy_is_deep(self):
        header = PacketHeader("F")
        header.mark_recycling(2.0)
        header.record_failure(1)
        clone = header.copy()
        clone.clear_recycling()
        clone.record_failure(2)
        assert header.pr_bit and header.known_failures() == frozenset({1})


class TestDscpCodec:
    def test_pool2_default_capacity(self):
        codec = DscpCodec()
        assert codec.available_bits == 4
        assert codec.max_dd_value == 7

    def test_encode_decode_round_trip(self):
        codec = DscpCodec(available_bits=5)
        for pr_bit in (False, True):
            for dd in range(codec.max_dd_value + 1):
                assert codec.decode(codec.encode(pr_bit, dd)) == (pr_bit, dd)

    def test_none_dd_encodes_as_zero(self):
        codec = DscpCodec()
        assert codec.decode(codec.encode(False, None)) == (False, 0)

    def test_overflow_rejected(self):
        codec = DscpCodec()
        with pytest.raises(HeaderFieldOverflow):
            codec.encode(True, codec.max_dd_value + 1)

    def test_negative_dd_rejected(self):
        with pytest.raises(HeaderFieldOverflow):
            DscpCodec().encode(True, -1)

    def test_decode_range_checked(self):
        with pytest.raises(HeaderFieldOverflow):
            DscpCodec().decode(16)

    def test_zero_bits_rejected(self):
        with pytest.raises(HeaderFieldOverflow):
            DscpCodec(available_bits=0)

    def test_bits_for_diameter(self):
        assert DscpCodec.bits_for_diameter(5) == 1 + 3
        assert DscpCodec.bits_for_diameter(1) == 2
        assert DscpCodec.bits_for_diameter(0) == 2

    def test_abilene_fits_in_dscp_pool2(self, abilene_graph):
        from repro.routing.discriminator import DiscriminatorKind, discriminator_bits_required

        dd_bits = discriminator_bits_required(abilene_graph, DiscriminatorKind.HOP_COUNT)
        codec = DscpCodec()
        assert 1 + dd_bits <= codec.available_bits


class TestLinkIdentifierBits:
    def test_small_and_large_networks(self):
        assert link_identifier_bits(1) == 1
        assert link_identifier_bits(14) == 4
        assert link_identifier_bits(54) == 6
        assert link_identifier_bits(1024) == 10
