"""Unit tests for the hop-by-hop forwarding engine and decisions."""

import pytest

from repro.errors import ForwardingError, ProtocolError
from repro.forwarding.engine import DeliveryStatus, ForwardingOutcome, HopByHopEngine
from repro.forwarding.network_state import NetworkState
from repro.forwarding.packets import Packet
from repro.forwarding.router import Action, ForwardingDecision, RouterLogic
from repro.graph.multigraph import Graph
from repro.routing.tables import RoutingTables


class _ShortestPathLogic(RouterLogic):
    """Minimal logic used to exercise the engine: plain shortest paths."""

    name = "test-shortest-path"

    def __init__(self, tables: RoutingTables) -> None:
        self.tables = tables

    def decide(self, node, ingress, packet, state):
        if not self.tables.has_route(node, packet.header.destination):
            return ForwardingDecision.drop("no route")
        egress = self.tables.egress(node, packet.header.destination)
        if not state.dart_usable(egress):
            return ForwardingDecision.drop("link down", failures_detected=1)
        return ForwardingDecision.forward(egress, forwarded=1)


class _BouncingLogic(RouterLogic):
    """Pathological logic that ping-pongs forever (for TTL testing)."""

    name = "test-bouncer"

    def decide(self, node, ingress, packet, state):
        if ingress is not None:
            return ForwardingDecision.forward(ingress.reversed())
        return ForwardingDecision.forward(state.graph.darts_out(node)[0])


class _BrokenLogic(RouterLogic):
    """Logic that forwards onto a failed link (a protocol bug the engine must catch)."""

    name = "test-broken"

    def decide(self, node, ingress, packet, state):
        return ForwardingDecision.forward(state.graph.darts_out(node)[0])


@pytest.fixture()
def line_graph() -> Graph:
    return Graph.from_edge_list([("a", "b"), ("b", "c"), ("c", "d")])


class TestForwardingDecision:
    def test_forward_requires_egress(self):
        with pytest.raises(ForwardingError):
            ForwardingDecision(Action.FORWARD)

    def test_deliver_must_not_carry_egress(self, line_graph):
        with pytest.raises(ForwardingError):
            ForwardingDecision(Action.DELIVER, egress=line_graph.darts()[0])

    def test_constructors(self, line_graph):
        dart = line_graph.darts()[0]
        assert ForwardingDecision.forward(dart).action is Action.FORWARD
        assert ForwardingDecision.deliver().action is Action.DELIVER
        assert ForwardingDecision.drop("x").drop_reason == "x"


class TestEngine:
    def test_delivery_along_shortest_path(self, line_graph):
        state = NetworkState(line_graph)
        engine = HopByHopEngine(state, _ShortestPathLogic(RoutingTables(line_graph)))
        outcome = engine.forward("a", "d")
        assert outcome.delivered
        assert outcome.path == ["a", "b", "c", "d"]
        assert outcome.hops == 3
        assert outcome.cost == pytest.approx(3.0)
        assert outcome.counter("forwarded") == 3

    def test_source_equals_destination_is_delivered_immediately(self, line_graph):
        state = NetworkState(line_graph)
        engine = HopByHopEngine(state, _ShortestPathLogic(RoutingTables(line_graph)))
        outcome = engine.forward_packet(Packet("a", "a"))
        assert outcome.delivered and outcome.hops == 0

    def test_drop_reported(self, line_graph):
        state = NetworkState(line_graph, [1])  # b--c down
        engine = HopByHopEngine(state, _ShortestPathLogic(RoutingTables(line_graph)))
        outcome = engine.forward("a", "d")
        assert outcome.status is DeliveryStatus.DROPPED
        assert outcome.drop_reason == "link down"
        assert outcome.path == ["a", "b"]

    def test_ttl_exceeded_detected(self, line_graph):
        state = NetworkState(line_graph)
        engine = HopByHopEngine(state, _BouncingLogic())
        outcome = engine.forward("a", "d", ttl=10)
        assert outcome.status is DeliveryStatus.TTL_EXCEEDED
        assert outcome.hops == 10

    def test_forwarding_onto_failed_link_is_a_protocol_error(self, line_graph):
        state = NetworkState(line_graph, [0])
        engine = HopByHopEngine(state, _BrokenLogic())
        with pytest.raises(ProtocolError):
            engine.forward("a", "d")

    def test_outcome_helpers(self):
        outcome = ForwardingOutcome(
            source="a", destination="b", status=DeliveryStatus.DELIVERED,
            path=["a", "b"], cost=1.0, hops=1, counters={"x": 2.0},
        )
        assert outcome.delivered
        assert outcome.counter("x") == 2.0
        assert outcome.counter("missing") == 0.0
