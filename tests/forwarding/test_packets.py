"""Unit tests for packets and the scheme base class."""

import pytest

from repro.errors import ForwardingError
from repro.forwarding.packets import Packet
from repro.forwarding.scheme import ForwardingScheme
from repro.baselines.noprotection import NoProtection
from repro.graph.multigraph import Graph


class TestPacket:
    def test_packet_ids_are_unique(self):
        first = Packet("a", "b")
        second = Packet("a", "b")
        assert first.packet_id != second.packet_id

    def test_header_destination_matches(self):
        packet = Packet("a", "z", ttl=9)
        assert packet.header.destination == "z"
        assert packet.header.ttl == 9

    def test_explicit_packet_id_respected(self):
        assert Packet("a", "b", packet_id=1234).packet_id == 1234

    def test_default_size_is_1kb(self):
        assert Packet("a", "b").size_bytes == 1000


class TestForwardingSchemeBase:
    def test_deliver_rejects_same_source_destination(self, abilene_graph):
        scheme = NoProtection(abilene_graph)
        with pytest.raises(ForwardingError):
            scheme.deliver("Denver", "Denver")

    def test_default_ttl_scales_with_network_size(self, abilene_graph):
        scheme = NoProtection(abilene_graph)
        assert scheme.default_ttl() >= 8 * abilene_graph.number_of_edges()

    def test_deliver_many_uses_shared_state(self, abilene_graph):
        scheme = NoProtection(abilene_graph)
        pairs = [("Seattle", "Atlanta"), ("Denver", "NewYork")]
        outcomes = scheme.deliver_many(pairs)
        assert set(outcomes) == set(pairs)
        assert all(outcome.delivered for outcome in outcomes.values())

    def test_base_class_overheads_default_to_zero(self):
        scheme = ForwardingScheme(Graph.from_edge_list([("a", "b")]))
        assert scheme.header_overhead_bits() == 0
        assert scheme.router_memory_entries() == 0
        with pytest.raises(NotImplementedError):
            scheme.build_logic(None)  # type: ignore[arg-type]
