"""Unit tests for the network failure state."""

import pytest

from repro.errors import FailureScenarioError
from repro.forwarding.network_state import NetworkState
from repro.graph.multigraph import Graph


@pytest.fixture()
def square_state(square_graph) -> NetworkState:
    return NetworkState(square_graph)


class TestFailureManagement:
    def test_initially_everything_up(self, square_graph, square_state):
        assert square_state.failed_edges == frozenset()
        assert all(square_state.dart_usable(dart) for dart in square_graph.darts())

    def test_fail_and_restore_link(self, square_graph, square_state):
        square_state.fail_link(0)
        assert square_state.is_failed(0)
        assert not square_state.dart_usable(square_graph.dart(0, square_graph.edge(0).u))
        square_state.restore_link(0)
        assert not square_state.is_failed(0)

    def test_fail_unknown_link_rejected(self, square_state):
        with pytest.raises(FailureScenarioError):
            square_state.fail_link(99)

    def test_fail_node_fails_all_incident_links(self, square_graph):
        state = NetworkState(square_graph)
        failed = state.fail_node("a")
        assert len(failed) == 2
        assert state.is_isolated("a")

    def test_clear(self, square_graph):
        state = NetworkState(square_graph, [0, 1])
        state.clear()
        assert state.failed_edges == frozenset()

    def test_constructor_failures(self, square_graph):
        state = NetworkState(square_graph, [2])
        assert state.failed_edges == frozenset({2})


class TestQueries:
    def test_usable_darts_out(self, square_graph):
        state = NetworkState(square_graph, [0])
        usable = state.usable_darts_out(square_graph.edge(0).u)
        assert all(dart.edge_id != 0 for dart in usable)

    def test_is_isolated(self):
        graph = Graph.from_edge_list([("a", "b")])
        state = NetworkState(graph, [0])
        assert state.is_isolated("a") and state.is_isolated("b")
