"""Unit tests for the high-level embedding builder."""

import pytest

from repro.embedding.builder import CellularEmbedding, embed
from repro.embedding.rotation import RotationSystem
from repro.errors import DisconnectedGraph
from repro.graph.multigraph import Graph
from repro.topologies.generators import k5_graph, ring_graph


class TestCellularEmbedding:
    def test_faces_traced_on_construction(self, fig1_graph, fig1_embedding):
        assert fig1_embedding.number_of_faces == 4
        assert fig1_embedding.genus == 0
        assert fig1_embedding.is_planar

    def test_cycle_queries_are_consistent(self, fig1_embedding):
        for dart in fig1_embedding.graph.darts():
            main = fig1_embedding.main_cycle(dart)
            complementary = fig1_embedding.complementary_cycle(dart)
            assert dart in main.darts
            assert dart.reversed() in complementary.darts

    def test_cycle_following_next_stays_on_face(self, fig1_embedding):
        for dart in fig1_embedding.graph.darts():
            nxt = fig1_embedding.cycle_following_next(dart)
            assert fig1_embedding.faces.face_of(nxt) is fig1_embedding.faces.face_of(dart)
            assert nxt.tail == dart.head

    def test_complementary_next_is_rotation_successor(self, fig1_embedding):
        rotation = fig1_embedding.rotation
        for dart in fig1_embedding.graph.darts():
            assert fig1_embedding.complementary_next(dart) == rotation.successor(dart)

    def test_average_and_longest_cycle_length(self, fig1_embedding):
        assert fig1_embedding.longest_cycle_length == 6
        assert fig1_embedding.average_cycle_length == pytest.approx(16 / 4)


class TestEmbedFunction:
    def test_planar_topology(self, abilene_graph):
        embedding = embed(abilene_graph)
        assert embedding.is_planar
        assert embedding.number_of_faces == 5

    def test_non_planar_topology(self):
        embedding = embed(k5_graph(), seed=0)
        assert embedding.genus >= 1

    def test_disconnected_rejected(self):
        graph = Graph.from_edge_list([("a", "b")])
        graph.ensure_node("island")
        with pytest.raises(DisconnectedGraph):
            embed(graph)

    def test_method_forwarding(self):
        ring = ring_graph(4)
        embedding = embed(ring, method="adjacency")
        assert isinstance(embedding, CellularEmbedding)
        assert isinstance(embedding.rotation, RotationSystem)

    def test_empty_graph(self):
        embedding = embed(Graph())
        assert embedding.number_of_faces == 0
