"""Unit tests for embedding validation."""

import pytest

from repro.embedding.rotation import RotationSystem
from repro.embedding.validation import embedding_report, validate_embedding, validate_rotation_system
from repro.errors import EmbeddingError, InvalidRotationSystem
from repro.graph.darts import Dart
from repro.graph.multigraph import Graph
from repro.topologies.generators import ring_graph


class TestRotationValidation:
    def test_valid_rotation_passes(self):
        ring = ring_graph(4)
        validate_rotation_system(ring, RotationSystem.from_adjacency_order(ring))

    def test_missing_dart_detected(self):
        graph = Graph.from_edge_list([("a", "b"), ("a", "c")])
        rotation = RotationSystem(graph, {"a": [graph.dart(0, "a")], "b": [graph.dart(0, "b")], "c": [graph.dart(1, "c")]})
        with pytest.raises(InvalidRotationSystem):
            validate_rotation_system(graph, rotation)

    def test_foreign_dart_detected(self):
        graph = Graph.from_edge_list([("a", "b")])
        rotation = RotationSystem(graph, {
            "a": [graph.dart(0, "a"), Dart(7, "a", "z")],
            "b": [graph.dart(0, "b")],
        })
        with pytest.raises(InvalidRotationSystem):
            validate_rotation_system(graph, rotation)


class TestEmbeddingValidation:
    def test_paper_example_is_valid(self, fig1_embedding):
        faces = validate_embedding(fig1_embedding.graph, fig1_embedding.rotation)
        assert len(faces) == 4

    def test_every_edge_traversed_exactly_twice(self, abilene_graph, abilene_embedding):
        faces = validate_embedding(abilene_graph, abilene_embedding.rotation)
        traversals = {}
        for face in faces:
            for dart in face.darts:
                traversals[dart.edge_id] = traversals.get(dart.edge_id, 0) + 1
        assert all(count == 2 for count in traversals.values())

    def test_report_mentions_every_cycle(self, fig1_graph, fig1_embedding):
        lines = embedding_report(fig1_graph, fig1_embedding.rotation)
        assert any("genus: 0" in line for line in lines)
        assert sum(1 for line in lines if line.strip().startswith("cycle")) == 4
