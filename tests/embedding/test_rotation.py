"""Unit tests for rotation systems."""

import pytest

from repro.errors import InvalidRotationSystem
from repro.embedding.rotation import RotationSystem
from repro.graph.darts import Dart
from repro.graph.multigraph import Graph


@pytest.fixture()
def triangle() -> Graph:
    return Graph.from_edge_list([("a", "b"), ("b", "c"), ("a", "c")])


class TestConstruction:
    def test_from_adjacency_order_covers_all_darts(self, triangle):
        rotation = RotationSystem.from_adjacency_order(triangle)
        assert sorted(rotation.darts()) == sorted(triangle.darts())

    def test_from_sorted_neighbors_orders_by_name(self, triangle):
        rotation = RotationSystem.from_sorted_neighbors(triangle)
        heads = [dart.head for dart in rotation.rotation_at("a")]
        assert heads == sorted(heads)

    def test_missing_nodes_get_empty_rotation(self):
        graph = Graph()
        graph.add_node("solo")
        rotation = RotationSystem(graph, {})
        assert rotation.rotation_at("solo") == []


class TestSuccessorPredecessor:
    def test_successor_cycles_through_rotation(self, triangle):
        rotation = RotationSystem.from_adjacency_order(triangle)
        darts = rotation.rotation_at("a")
        assert rotation.successor(darts[0]) == darts[1]
        assert rotation.successor(darts[-1]) == darts[0]

    def test_predecessor_is_inverse_of_successor(self, triangle):
        rotation = RotationSystem.from_adjacency_order(triangle)
        for dart in rotation.darts():
            assert rotation.predecessor(rotation.successor(dart)) == dart

    def test_unknown_dart_raises(self, triangle):
        rotation = RotationSystem.from_adjacency_order(triangle)
        with pytest.raises(InvalidRotationSystem):
            rotation.successor(Dart(99, "a", "b"))

    def test_next_in_face_uses_reverse_dart(self, triangle):
        rotation = RotationSystem.from_adjacency_order(triangle)
        dart = triangle.darts_out("a")[0]
        expected = rotation.successor(dart.reversed())
        assert rotation.next_in_face(dart) == expected

    def test_previous_in_face_inverts_next_in_face(self, triangle):
        rotation = RotationSystem.from_adjacency_order(triangle)
        for dart in rotation.darts():
            assert rotation.previous_in_face(rotation.next_in_face(dart)) == dart


class TestMutation:
    def test_move_dart_changes_order(self, triangle):
        rotation = RotationSystem.from_adjacency_order(triangle)
        darts = rotation.rotation_at("a")
        rotation.move_dart(darts[0], 1)
        assert rotation.rotation_at("a")[1] == darts[0]

    def test_insert_and_remove_dart(self):
        graph = Graph.from_edge_list([("a", "b")])
        rotation = RotationSystem.from_adjacency_order(graph)
        extra_edge = graph.add_edge("a", "c")
        new_dart = graph.dart(extra_edge, "a")
        rotation.insert_dart_after(rotation.rotation_at("a")[0], new_dart)
        assert new_dart in rotation.rotation_at("a")
        rotation.remove_dart(new_dart)
        assert new_dart not in rotation.rotation_at("a")

    def test_insert_duplicate_raises(self, triangle):
        rotation = RotationSystem.from_adjacency_order(triangle)
        dart = rotation.rotation_at("a")[0]
        with pytest.raises(InvalidRotationSystem):
            rotation.insert_dart_after(None, dart)

    def test_insert_with_mismatched_anchor_raises(self, triangle):
        rotation = RotationSystem.from_adjacency_order(triangle)
        anchor = rotation.rotation_at("a")[0]
        with pytest.raises(InvalidRotationSystem):
            rotation.insert_dart_after(anchor, Dart(50, "b", "z"))

    def test_set_rotation_validates_tail(self, triangle):
        rotation = RotationSystem.from_adjacency_order(triangle)
        with pytest.raises(InvalidRotationSystem):
            rotation.set_rotation("a", [Dart(0, "b", "a")])

    def test_copy_is_independent(self, triangle):
        rotation = RotationSystem.from_adjacency_order(triangle)
        clone = rotation.copy()
        darts = clone.rotation_at("a")
        clone.move_dart(darts[0], 1)
        assert rotation.rotation_at("a") != clone.rotation_at("a") or len(darts) == 1


class TestEquality:
    def test_cyclic_shifts_are_equal(self, triangle):
        rotation = RotationSystem.from_adjacency_order(triangle)
        darts = rotation.rotation_at("a")
        shifted = rotation.copy()
        shifted.set_rotation("a", darts[1:] + darts[:1])
        assert rotation == shifted

    def test_different_orders_are_not_equal(self):
        graph = Graph.from_edge_list([("x", "a"), ("x", "b"), ("x", "c")])
        rotation = RotationSystem.from_adjacency_order(graph)
        darts = rotation.rotation_at("x")
        swapped = rotation.copy()
        swapped.set_rotation("x", [darts[0], darts[2], darts[1]])
        assert rotation != swapped

    def test_as_mapping_round_trip(self, triangle):
        rotation = RotationSystem.from_adjacency_order(triangle)
        rebuilt = RotationSystem(triangle, rotation.as_mapping())
        assert rotation == rebuilt
