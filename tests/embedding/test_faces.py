"""Unit tests for face tracing and Euler genus."""

import pytest

from repro.embedding.faces import (
    Face,
    average_face_length,
    euler_genus,
    face_count_upper_bound,
    rotation_from_faces,
    trace_faces,
)
from repro.embedding.rotation import RotationSystem
from repro.errors import EmbeddingError
from repro.graph.multigraph import Graph
from repro.topologies.generators import complete_graph, ring_graph


class TestTraceFaces:
    def test_single_edge_has_one_face_of_two_darts(self):
        graph = Graph.from_edge_list([("a", "b")])
        faces = trace_faces(RotationSystem.from_adjacency_order(graph))
        assert len(faces) == 1
        assert len(faces.faces[0]) == 2

    def test_ring_has_two_faces(self):
        ring = ring_graph(6)
        faces = trace_faces(RotationSystem.from_adjacency_order(ring))
        assert len(faces) == 2
        assert all(len(face) == 6 for face in faces)

    def test_every_dart_in_exactly_one_face(self, fig1_embedding):
        darts_seen = [dart for face in fig1_embedding.faces for dart in face.darts]
        assert len(darts_seen) == len(set(darts_seen))
        assert set(darts_seen) == set(fig1_embedding.graph.darts())

    def test_faces_are_head_to_tail_walks(self, fig1_embedding):
        for face in fig1_embedding.faces:
            for dart, following in zip(face.darts, face.darts[1:] + face.darts[:1]):
                assert dart.head == following.tail

    def test_face_of_lookup(self, fig1_embedding):
        some_dart = fig1_embedding.graph.darts()[0]
        face = fig1_embedding.faces.face_of(some_dart)
        assert some_dart in face.darts

    def test_faces_of_edge_returns_main_and_complementary(self, fig1_embedding):
        dart = fig1_embedding.graph.darts()[0]
        main, complementary = fig1_embedding.faces.faces_of_edge(dart)
        assert dart in main.darts
        assert dart.reversed() in complementary.darts


class TestEulerGenus:
    def test_ring_is_planar(self):
        ring = ring_graph(5)
        faces = trace_faces(RotationSystem.from_adjacency_order(ring))
        assert euler_genus(ring, faces) == 0

    def test_k5_adjacency_rotation_has_positive_genus_or_zero(self):
        k5 = complete_graph(5)
        faces = trace_faces(RotationSystem.from_adjacency_order(k5))
        # K5 is not planar, so any embedding has genus >= 1.
        assert euler_genus(k5, faces) >= 1

    def test_upper_bound_matches_planar_case(self, fig1_graph, fig1_embedding):
        assert face_count_upper_bound(fig1_graph) == fig1_embedding.number_of_faces

    def test_average_face_length(self):
        ring = ring_graph(4)
        faces = trace_faces(RotationSystem.from_adjacency_order(ring))
        assert average_face_length(faces) == pytest.approx(4.0)


class TestFaceClass:
    def test_empty_face_rejected(self):
        with pytest.raises(EmbeddingError):
            Face(0, [])

    def test_nodes_and_cost(self, fig1_graph, fig1_embedding):
        face = fig1_embedding.faces.faces[0]
        assert len(face.nodes) == len(face)
        assert face.cost(fig1_graph) > 0

    def test_successor_of(self, fig1_embedding):
        face = fig1_embedding.faces.faces[0]
        assert face.successor_of(face.darts[-1]) == face.darts[0]

    def test_is_simple_for_planar_2_connected(self, fig1_embedding):
        assert all(face.is_simple() for face in fig1_embedding.faces)


class TestRotationFromFaces:
    def test_round_trip(self, fig1_embedding):
        graph = fig1_embedding.graph
        walks = [face.darts for face in fig1_embedding.faces]
        rebuilt = rotation_from_faces(graph, walks)
        assert rebuilt == fig1_embedding.rotation

    def test_rejects_non_adjacent_walks(self):
        graph = Graph.from_edge_list([("a", "b"), ("c", "d")])
        bad_walk = [graph.dart(0, "a"), graph.dart(1, "c")]
        with pytest.raises(EmbeddingError):
            rotation_from_faces(graph, [bad_walk])

    def test_rejects_incomplete_cover(self, fig1_embedding):
        graph = fig1_embedding.graph
        walks = [face.darts for face in fig1_embedding.faces][:-1]
        with pytest.raises(EmbeddingError):
            rotation_from_faces(graph, walks)
