"""Unit tests for the genus-minimisation heuristics."""

import pytest

from repro.embedding.faces import euler_genus, trace_faces
from repro.embedding.genus import (
    embedding_score,
    greedy_insertion_rotation,
    local_search_rotation,
    minimise_genus,
    repair_self_paired_edges,
    self_paired_edge_count,
)
from repro.embedding.rotation import RotationSystem
from repro.embedding.validation import validate_embedding
from repro.topologies.generators import (
    complete_graph,
    k33_graph,
    k5_graph,
    petersen_graph,
    ring_graph,
    torus_grid_graph,
)


class TestGreedyInsertion:
    @pytest.mark.parametrize("graph_factory", [k5_graph, k33_graph])
    def test_kuratowski_graphs_reach_genus_one(self, graph_factory):
        graph = graph_factory()
        rotation = greedy_insertion_rotation(graph, seed=0)
        faces = validate_embedding(graph, rotation)
        assert euler_genus(graph, faces) == 1

    def test_planar_input_stays_planar(self):
        ring = ring_graph(6)
        rotation = greedy_insertion_rotation(ring, seed=1)
        faces = validate_embedding(ring, rotation)
        assert euler_genus(ring, faces) == 0

    def test_result_is_valid_rotation_system(self):
        graph = petersen_graph()
        rotation = greedy_insertion_rotation(graph, seed=3)
        validate_embedding(graph, rotation)


class TestLocalSearch:
    def test_never_decreases_score(self):
        graph = k5_graph()
        initial = RotationSystem.from_adjacency_order(graph)
        improved = local_search_rotation(graph, initial=initial, iterations=60, seed=0)
        assert embedding_score(improved) >= embedding_score(initial)

    def test_result_is_valid(self):
        graph = complete_graph(6)
        improved = local_search_rotation(graph, iterations=40, seed=5)
        validate_embedding(graph, improved)

    def test_degree_two_graph_returned_unchanged(self):
        ring = ring_graph(5)
        initial = RotationSystem.from_adjacency_order(ring)
        assert local_search_rotation(ring, initial=initial, iterations=10, seed=0) == initial


class TestRepairSelfPaired:
    def test_repair_does_not_invalidate(self):
        graph = petersen_graph()
        rotation = RotationSystem.from_adjacency_order(graph)
        repaired = repair_self_paired_edges(rotation, graph)
        validate_embedding(graph, repaired)
        assert self_paired_edge_count(repaired) <= self_paired_edge_count(rotation)

    def test_bridge_stays_self_paired(self):
        from repro.graph.multigraph import Graph

        graph = Graph.from_edge_list([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
        rotation = minimise_genus(graph)
        # The bridge c--d has both darts on one face in every embedding.
        assert self_paired_edge_count(rotation) == 1


class TestMinimiseGenus:
    def test_planar_graph_gets_exact_embedding(self, abilene_graph):
        rotation = minimise_genus(abilene_graph)
        faces = trace_faces(rotation)
        assert euler_genus(abilene_graph, faces) == 0

    def test_non_planar_graph_gets_valid_low_genus_embedding(self):
        graph = k5_graph()
        rotation = minimise_genus(graph, seed=0)
        faces = validate_embedding(graph, rotation)
        assert euler_genus(graph, faces) == 1

    def test_teleglobe_embedding_has_no_self_paired_edges(self, teleglobe_graph):
        rotation = minimise_genus(teleglobe_graph, seed=0)
        validate_embedding(teleglobe_graph, rotation)
        assert self_paired_edge_count(rotation) == 0

    def test_torus_grid(self):
        torus = torus_grid_graph(3, 3)
        rotation = minimise_genus(torus, seed=1, iterations=100)
        faces = validate_embedding(torus, rotation)
        assert euler_genus(torus, faces) >= 1

    def test_methods_dispatch(self, abilene_graph):
        for method in ("auto", "planar", "greedy", "local-search", "adjacency"):
            rotation = minimise_genus(abilene_graph, method=method, iterations=20, seed=0)
            validate_embedding(abilene_graph, rotation)

    def test_unknown_method_raises(self, abilene_graph):
        with pytest.raises(ValueError):
            minimise_genus(abilene_graph, method="magic")
