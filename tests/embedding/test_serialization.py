"""Unit tests for embedding persistence."""

import pytest

from repro.embedding.builder import embed
from repro.embedding.serialization import (
    embedding_from_dict,
    embedding_to_dict,
    load_embedding,
    save_embedding,
)
from repro.errors import EmbeddingError
from repro.topologies.generators import ring_graph


class TestRoundTrip:
    def test_dict_round_trip_preserves_rotation(self, fig1_embedding):
        payload = embedding_to_dict(fig1_embedding)
        rebuilt = embedding_from_dict(payload)
        assert rebuilt.rotation == fig1_embedding.rotation
        assert rebuilt.number_of_faces == fig1_embedding.number_of_faces

    def test_dict_round_trip_preserves_weights(self, fig1_embedding):
        rebuilt = embedding_from_dict(embedding_to_dict(fig1_embedding))
        original = {e.edge_id: e.weight for e in fig1_embedding.graph.edges()}
        restored = {e.edge_id: e.weight for e in rebuilt.graph.edges()}
        assert original == restored

    def test_file_round_trip(self, tmp_path):
        embedding = embed(ring_graph(5))
        path = save_embedding(embedding, tmp_path / "ring.embedding.json")
        loaded = load_embedding(path)
        assert loaded.rotation == embedding.rotation
        assert loaded.graph.name == embedding.graph.name

    def test_abilene_round_trip(self, abilene_embedding):
        rebuilt = embedding_from_dict(embedding_to_dict(abilene_embedding))
        assert rebuilt.genus == abilene_embedding.genus
        assert rebuilt.number_of_faces == abilene_embedding.number_of_faces


class TestValidation:
    def test_unknown_format_version_rejected(self, fig1_embedding):
        payload = embedding_to_dict(fig1_embedding)
        payload["format_version"] = 999
        with pytest.raises(EmbeddingError):
            embedding_from_dict(payload)

    def test_payload_is_json_serialisable(self, fig1_embedding):
        import json

        text = json.dumps(embedding_to_dict(fig1_embedding))
        assert "rotation" in text
