"""Unit tests for planarity testing and the DMP planar embedder."""

import pytest

from repro.embedding.faces import euler_genus, trace_faces
from repro.embedding.planarity import is_planar, planar_embedding
from repro.embedding.validation import validate_embedding
from repro.errors import DisconnectedGraph, NotPlanar
from repro.graph.multigraph import Graph
from repro.topologies.generators import (
    complete_graph,
    grid_graph,
    k33_graph,
    k5_graph,
    ladder_graph,
    petersen_graph,
    ring_graph,
    wheel_graph,
)


class TestIsPlanar:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: ring_graph(8),
            lambda: grid_graph(4, 5),
            lambda: wheel_graph(6),
            lambda: ladder_graph(5),
            lambda: complete_graph(4),
        ],
    )
    def test_planar_families(self, graph_factory):
        assert is_planar(graph_factory())

    @pytest.mark.parametrize(
        "graph_factory",
        [k5_graph, k33_graph, petersen_graph, lambda: complete_graph(6)],
    )
    def test_non_planar_families(self, graph_factory):
        assert not is_planar(graph_factory())

    def test_isp_topologies(self, abilene_graph, geant_graph):
        assert is_planar(abilene_graph)
        assert is_planar(geant_graph)

    def test_disconnected_graph_checked_per_component(self):
        graph = Graph.from_edge_list([("a", "b"), ("b", "c"), ("a", "c")])
        graph.ensure_node("island")
        assert is_planar(graph)

    def test_dense_graph_rejected_by_edge_bound(self):
        assert not is_planar(complete_graph(8))


class TestPlanarEmbedding:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: ring_graph(5),
            lambda: grid_graph(3, 4),
            lambda: wheel_graph(7),
            lambda: complete_graph(4),
            lambda: ladder_graph(4),
        ],
    )
    def test_embedding_is_genus_zero_and_valid(self, graph_factory):
        graph = graph_factory()
        rotation = planar_embedding(graph)
        faces = validate_embedding(graph, rotation)
        assert euler_genus(graph, faces) == 0

    def test_abilene_planar_embedding(self, abilene_graph):
        rotation = planar_embedding(abilene_graph)
        faces = validate_embedding(abilene_graph, rotation)
        assert euler_genus(abilene_graph, faces) == 0
        # Euler: F = E - V + 2 = 14 - 11 + 2.
        assert len(faces) == 5

    def test_geant_planar_embedding(self, geant_graph):
        rotation = planar_embedding(geant_graph)
        faces = validate_embedding(geant_graph, rotation)
        assert euler_genus(geant_graph, faces) == 0

    def test_non_planar_raises(self):
        with pytest.raises(NotPlanar):
            planar_embedding(k5_graph())

    def test_k33_raises(self):
        with pytest.raises(NotPlanar):
            planar_embedding(k33_graph())

    def test_disconnected_raises(self):
        graph = Graph.from_edge_list([("a", "b")])
        graph.ensure_node("island")
        with pytest.raises(DisconnectedGraph):
            planar_embedding(graph)

    def test_graph_with_bridges_and_cut_vertices(self):
        graph = Graph.from_edge_list(
            [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d"), ("d", "e"), ("e", "f"), ("d", "f")]
        )
        rotation = planar_embedding(graph)
        faces = validate_embedding(graph, rotation)
        assert euler_genus(graph, faces) == 0

    def test_single_edge_graph(self):
        graph = Graph.from_edge_list([("a", "b")])
        rotation = planar_embedding(graph)
        faces = validate_embedding(graph, rotation)
        assert len(faces) == 1

    def test_tree_embedding(self):
        tree = Graph.from_edge_list([("a", "b"), ("b", "c"), ("b", "d"), ("d", "e")])
        rotation = planar_embedding(tree)
        faces = validate_embedding(tree, rotation)
        # A tree embeds with a single face walking every edge twice.
        assert len(faces) == 1

    def test_multigraph_embedding(self):
        graph = Graph()
        graph.add_edge("a", "b")
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_edge("c", "a")
        rotation = planar_embedding(graph)
        faces = validate_embedding(graph, rotation)
        assert euler_genus(graph, faces) == 0

    def test_empty_graph(self):
        graph = Graph()
        rotation = planar_embedding(graph)
        assert rotation.darts() == []

    def test_larger_grid_face_count(self):
        grid = grid_graph(5, 5)
        rotation = planar_embedding(grid)
        faces = trace_faces(rotation)
        # 4x4 inner cells plus the outer face.
        assert len(faces) == 17
