"""Tests for multi-failure sampling."""

import pytest

from repro.errors import FailureScenarioError
from repro.failures.sampling import all_multi_link_failures, sample_multi_link_failures
from repro.graph.connectivity import is_connected
from repro.topologies.generators import ring_graph


class TestSampling:
    def test_sampled_scenarios_have_requested_size(self, abilene_graph):
        scenarios = sample_multi_link_failures(abilene_graph, failures=4, samples=20, seed=1)
        assert scenarios
        assert all(len(s) == 4 for s in scenarios)

    def test_sampled_scenarios_keep_network_connected(self, abilene_graph):
        scenarios = sample_multi_link_failures(abilene_graph, failures=3, samples=25, seed=2)
        assert all(is_connected(abilene_graph, s.failed_links) for s in scenarios)

    def test_seed_determinism(self, abilene_graph):
        first = sample_multi_link_failures(abilene_graph, failures=4, samples=10, seed=9)
        second = sample_multi_link_failures(abilene_graph, failures=4, samples=10, seed=9)
        assert [s.failed_links for s in first] == [s.failed_links for s in second]

    def test_unique_scenarios_by_default(self, abilene_graph):
        scenarios = sample_multi_link_failures(abilene_graph, failures=2, samples=30, seed=3)
        combos = [s.failed_links for s in scenarios]
        assert len(combos) == len(set(combos))

    def test_geant_sixteen_failures_possible(self, geant_graph):
        scenarios = sample_multi_link_failures(geant_graph, failures=16, samples=5, seed=4)
        assert len(scenarios) == 5

    def test_invalid_failure_counts_rejected(self, abilene_graph):
        with pytest.raises(FailureScenarioError):
            sample_multi_link_failures(abilene_graph, failures=0, samples=1)
        with pytest.raises(FailureScenarioError):
            sample_multi_link_failures(abilene_graph, failures=100, samples=1)

    def test_ring_cannot_survive_two_failures(self):
        ring = ring_graph(5)
        scenarios = sample_multi_link_failures(
            ring, failures=2, samples=5, seed=0, max_attempts_per_sample=50
        )
        assert scenarios == []

    def test_allow_disconnecting_combinations(self):
        ring = ring_graph(5)
        scenarios = sample_multi_link_failures(
            ring, failures=2, samples=5, seed=0, require_connected=False
        )
        assert len(scenarios) == 5


class TestExhaustiveEnumeration:
    def test_counts_non_disconnecting_dual_failures(self):
        ring = ring_graph(4)
        assert all_multi_link_failures(ring, 2) == []
        singles = all_multi_link_failures(ring, 1)
        assert len(singles) == 4

    def test_limit_respected(self, abilene_graph):
        scenarios = all_multi_link_failures(abilene_graph, 2, limit=7)
        assert len(scenarios) == 7
