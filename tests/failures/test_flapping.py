"""Tests for the link-flapping model and the hold-down counter-measure."""

import pytest

from repro.failures.flapping import FlapEvent, LinkFlappingProcess, hold_down_filter


class TestFlappingProcess:
    def test_events_are_time_ordered_and_alternate(self):
        process = LinkFlappingProcess(mean_up_time=1.0, mean_down_time=0.5, seed=3)
        events = process.events_until(50.0)
        times = [event.time for event in events]
        assert times == sorted(times)
        states = [event.up for event in events]
        assert all(first != second for first, second in zip(states, states[1:]))

    def test_first_event_is_a_failure_when_initially_up(self):
        process = LinkFlappingProcess(mean_up_time=1.0, mean_down_time=1.0, seed=1)
        events = process.events_until(100.0)
        assert events and events[0].up is False

    def test_downtime_fraction_tracks_means(self):
        process = LinkFlappingProcess(mean_up_time=3.0, mean_down_time=1.0, seed=7)
        fraction = process.downtime_fraction(5000.0)
        assert fraction == pytest.approx(0.25, abs=0.05)

    def test_seed_determinism(self):
        a = LinkFlappingProcess(1.0, 1.0, seed=5).events_until(20.0)
        b = LinkFlappingProcess(1.0, 1.0, seed=5).events_until(20.0)
        assert a == b

    def test_invalid_means_rejected(self):
        with pytest.raises(ValueError):
            LinkFlappingProcess(0.0, 1.0)


class TestHoldDown:
    def test_short_up_periods_suppressed(self):
        events = [
            FlapEvent(1.0, up=False),
            FlapEvent(1.2, up=True),   # up for only 0.3 s
            FlapEvent(1.5, up=False),
            FlapEvent(2.0, up=True),   # stays up
        ]
        filtered = hold_down_filter(events, hold_down=1.0, horizon=10.0)
        downs = [event for event in filtered if not event.up]
        ups = [event for event in filtered if event.up]
        assert len(downs) == 1
        assert len(ups) == 1
        assert ups[0].time == pytest.approx(3.0)

    def test_down_transitions_not_delayed(self):
        events = [FlapEvent(2.0, up=False)]
        filtered = hold_down_filter(events, hold_down=5.0, horizon=10.0)
        assert filtered == [FlapEvent(2.0, up=False)]

    def test_hold_down_reduces_transition_count(self):
        process = LinkFlappingProcess(mean_up_time=0.5, mean_down_time=0.5, seed=11)
        raw = process.events_until(200.0)
        filtered = hold_down_filter(raw, hold_down=2.0, horizon=200.0)
        assert len(filtered) < len(raw)

    def test_announced_state_never_flaps_faster_than_hold_down(self):
        process = LinkFlappingProcess(mean_up_time=0.5, mean_down_time=0.5, seed=13)
        raw = process.events_until(100.0)
        filtered = hold_down_filter(raw, hold_down=3.0, horizon=100.0)
        up_times = [event.time for event in filtered if event.up]
        down_times = [event.time for event in filtered if not event.up]
        # Every announced up must be at least hold_down after the preceding down.
        for up_time in up_times:
            previous_downs = [t for t in down_times if t < up_time]
            if previous_downs:
                assert up_time - max(previous_downs) >= 3.0 - 1e-9
