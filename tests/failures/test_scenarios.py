"""Tests for failure scenario containers and enumerators."""

import pytest

from repro.errors import FailureScenarioError
from repro.failures.scenarios import (
    FailureScenario,
    all_affecting_pairs,
    node_failure_scenarios,
    single_link_failures,
    validate_scenario,
)
from repro.routing.tables import RoutingTables
from repro.topologies.generators import ring_graph


class TestFailureScenario:
    def test_links_are_sorted_and_deduplicated(self):
        scenario = FailureScenario((5, 1, 5, 3))
        assert scenario.failed_links == (1, 3, 5)
        assert len(scenario) == 3

    def test_keeps_connected(self, abilene_graph):
        edge = abilene_graph.edge_ids_between("Seattle", "Denver")[0]
        assert FailureScenario((edge,)).keeps_connected(abilene_graph)

    def test_describe_lists_endpoints(self, abilene_graph):
        edge = abilene_graph.edge_ids_between("Seattle", "Denver")[0]
        text = FailureScenario((edge,), kind="single-link").describe(abilene_graph)
        assert "Seattle--Denver" in text

    def test_validate_scenario(self, abilene_graph):
        validate_scenario(abilene_graph, FailureScenario((0,)))
        with pytest.raises(FailureScenarioError):
            validate_scenario(abilene_graph, FailureScenario((999,)))


class TestSingleLinkFailures:
    def test_one_scenario_per_link(self, abilene_graph):
        scenarios = single_link_failures(abilene_graph)
        assert len(scenarios) == abilene_graph.number_of_edges()

    def test_non_disconnecting_filter_drops_bridges(self):
        from repro.graph.multigraph import Graph

        graph = Graph.from_edge_list([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
        assert len(single_link_failures(graph)) == 4
        assert len(single_link_failures(graph, only_non_disconnecting=True)) == 3


class TestNodeFailures:
    def test_one_scenario_per_node(self, abilene_graph):
        scenarios = node_failure_scenarios(abilene_graph)
        assert len(scenarios) == abilene_graph.number_of_nodes()

    def test_scenario_covers_all_incident_links(self, abilene_graph):
        scenarios = {s.description: s for s in node_failure_scenarios(abilene_graph)}
        denver = scenarios["node Denver"]
        assert set(denver.failed_links) == set(abilene_graph.incident_edge_ids("Denver"))

    def test_exclusion_list(self, abilene_graph):
        scenarios = node_failure_scenarios(abilene_graph, exclude=["Denver"])
        assert all(s.description != "node Denver" for s in scenarios)

    def test_non_disconnecting_filter(self):
        ring = ring_graph(5)
        # Removing any single ring node keeps the remaining path connected.
        assert len(node_failure_scenarios(ring, only_non_disconnecting=True)) == 5


class TestAffectedPairs:
    def test_only_pairs_crossing_the_failure(self, abilene_graph):
        tables = RoutingTables(abilene_graph)
        edge = abilene_graph.edge_ids_between("Chicago", "NewYork")[0]
        pairs = all_affecting_pairs(abilene_graph, FailureScenario((edge,)), tables)
        assert ("Indianapolis", "NewYork") in pairs
        assert ("Seattle", "Sunnyvale") not in pairs

    def test_unaffected_scenario_has_no_pairs(self, abilene_graph):
        pairs = all_affecting_pairs(abilene_graph, FailureScenario(()))
        assert pairs == []

    def test_pairs_are_ordered_pairs(self, abilene_graph):
        edge = abilene_graph.edge_ids_between("Chicago", "NewYork")[0]
        pairs = all_affecting_pairs(abilene_graph, FailureScenario((edge,)))
        assert all(source != destination for source, destination in pairs)
