"""Seed determinism of the multi-link sampler, including across processes.

The campaign runner's serial == parallel guarantee rests on the scenario
generators being pure functions of their seed — not of interpreter state,
hash randomisation or process boundaries.  These tests pin that down for the
multi-link sampler directly: the same seed must give the identical scenario
set in-process, in a freshly spawned interpreter (where ``PYTHONHASHSEED``
differs), and through serial vs. parallel campaign sweeps.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.failures.sampling import sample_multi_link_failures
from repro.runner.executor import run_campaign
from repro.runner.spec import CampaignSpec, ScenarioSpec
from repro.topologies.abilene import abilene

_SUBPROCESS_CODE = """
import json
from repro.failures.sampling import sample_multi_link_failures
from repro.topologies.abilene import abilene

scenarios = sample_multi_link_failures(abilene(), failures=3, samples=8, seed=123)
print(json.dumps([list(s.failed_links) for s in scenarios]))
"""


def sample_sets(seed):
    scenarios = sample_multi_link_failures(abilene(), failures=3, samples=8, seed=seed)
    return [list(s.failed_links) for s in scenarios]


class TestSamplerSeedDeterminism:
    def test_same_seed_same_scenarios(self):
        assert sample_sets(123) == sample_sets(123)

    def test_different_seed_different_scenarios(self):
        assert sample_sets(123) != sample_sets(124)

    def test_same_seed_across_processes(self):
        """A fresh interpreter (new hash seed) must reproduce the sets."""
        src = Path(repro.__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("PYTHONHASHSEED", None)
        outputs = [
            subprocess.run(
                [sys.executable, "-c", _SUBPROCESS_CODE],
                capture_output=True, text=True, env=env, check=True,
            ).stdout
            for _ in range(2)
        ]
        assert json.loads(outputs[0]) == json.loads(outputs[1]) == sample_sets(123)


class TestSweepScenarioDeterminism:
    """Serial and parallel sweeps must face identical scenario sets."""

    @staticmethod
    def scenario_sets(records):
        """The distinct failure sets each cell's samples were measured under."""
        return [
            sorted({tuple(row[2]) for row in record["payload"]["samples"]})
            for record in records
        ]

    def test_serial_vs_parallel_multi_link_sets(self, tmp_path):
        spec = CampaignSpec(
            topologies=("abilene",),
            schemes=("reconvergence", "fcp"),
            scenarios=(ScenarioSpec("multi-link", failures=3, samples=5),),
        )
        serial = run_campaign(spec, workers=1)
        parallel = run_campaign(spec, workers=2)
        assert self.scenario_sets(serial.records) == self.scenario_sets(parallel.records)
        # ... and both schemes within one run saw the same scenario set.
        by_scheme = self.scenario_sets(serial.records)
        assert by_scheme[0] == by_scheme[1]
