"""Tests for the top-level convenience API."""

import pytest

import repro
from repro.api import build_packet_recycling, compare_schemes, stretch_ccdf
from repro.failures.scenarios import single_link_failures


class TestPackageSurface:
    def test_version_exposed(self):
        assert repro.__version__

    def test_subpackages_reachable(self):
        assert repro.topologies.abilene().number_of_nodes() == 11
        assert callable(repro.build_packet_recycling)

    def test_failure_helpers_exported(self, abilene_graph):
        """The scenario toolbox rides along with CampaignSpec/run_campaign."""
        from repro.api import (
            node_failure_scenarios,
            sample_multi_link_failures,
            single_link_failures,
        )

        assert len(single_link_failures(abilene_graph)) == 14
        assert len(node_failure_scenarios(abilene_graph)) == 11
        assert sample_multi_link_failures(abilene_graph, 2, 3, seed=1)
        for name in (
            "single_link_failures",
            "sample_multi_link_failures",
            "node_failure_scenarios",
            "FailureScenario",
            "CampaignSpec",
            "run_campaign",
        ):
            assert hasattr(repro, name), name

    def test_scenario_model_registry_exported(self):
        from repro.api import available_scenario_models, get_scenario_model

        assert "srlg" in available_scenario_models()
        assert get_scenario_model("srlg").name == "srlg"


class TestBuildPacketRecycling:
    def test_quickstart_flow(self, abilene_graph):
        pr = build_packet_recycling(abilene_graph)
        outcome = pr.deliver("Seattle", "Atlanta")
        assert outcome.delivered

    def test_embedding_method_forwarded(self, abilene_graph):
        pr = build_packet_recycling(abilene_graph, embedding_method="planar")
        assert pr.embedding.is_planar


class TestCompareSchemes:
    def test_all_default_schemes_compared(self, abilene_graph):
        failed = abilene_graph.edge_ids_between("Denver", "KansasCity")
        outcomes = compare_schemes(abilene_graph, "Seattle", "KansasCity", failed)
        assert set(outcomes) == {
            "Re-convergence",
            "Failure-Carrying Packets",
            "Packet Re-cycling",
        }
        assert all(outcome.delivered for outcome in outcomes.values())

    def test_custom_scheme_list(self, abilene_graph, abilene_pr):
        outcomes = compare_schemes(abilene_graph, "Seattle", "Atlanta", [], schemes=[abilene_pr])
        assert list(outcomes) == ["Packet Re-cycling"]


class TestStretchCcdf:
    def test_returns_one_curve_per_scheme(self, abilene_graph, abilene_pr):
        scenarios = single_link_failures(abilene_graph)[:4]
        curves = stretch_ccdf(abilene_graph, scenarios, schemes=[abilene_pr])
        assert set(curves) == {"Packet Re-cycling"}
        xs = [x for x, _p in curves["Packet Re-cycling"]]
        assert xs == [float(value) for value in range(1, 16)]
