"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestTopologyCommand:
    def test_summary(self, capsys):
        assert main(["topology", "abilene"]) == 0
        output = capsys.readouterr().out
        assert "routers: 11" in output and "links: 14" in output

    def test_link_listing(self, capsys):
        main(["topology", "abilene", "--links"])
        output = capsys.readouterr().out
        assert "Seattle -- Sunnyvale" in output

    def test_file_topology(self, tmp_path, capsys):
        path = tmp_path / "net.topo"
        path.write_text("a b 1\nb c 1\nc a 1\n")
        assert main(["topology", str(path)]) == 0
        assert "routers: 3" in capsys.readouterr().out


class TestEmbedCommand:
    def test_embed_and_write_artifact(self, tmp_path, capsys):
        output = tmp_path / "abilene.json"
        assert main(["embed", "abilene", "--output", str(output)]) == 0
        stdout = capsys.readouterr().out
        assert "genus: 0" in stdout
        assert output.exists()

    def test_embed_method_choice(self, capsys):
        assert main(["embed", "abilene", "--method", "planar"]) == 0
        assert "self-paired links: 0" in capsys.readouterr().out


class TestTablesCommand:
    def test_router_table_printed(self, capsys):
        assert main(["tables", "fig1-example", "D"]) == 0
        output = capsys.readouterr().out
        assert "Cycle following table at node D." in output
        assert "IBD | IDF | IDE" in output


class TestDeliverCommand:
    def test_delivery_without_failures(self, capsys):
        assert main(["deliver", "abilene", "Seattle", "Atlanta"]) == 0
        assert "delivered" in capsys.readouterr().out

    def test_delivery_with_named_failure(self, capsys):
        code = main([
            "deliver", "abilene", "Seattle", "Atlanta",
            "--fail", "KansasCity-Indianapolis",
        ])
        assert code == 0
        assert "Houston" in capsys.readouterr().out

    def test_compare_flag_runs_all_schemes(self, capsys):
        assert main(["deliver", "abilene", "Seattle", "Atlanta", "--compare"]) == 0
        output = capsys.readouterr().out
        assert "Failure-Carrying Packets" in output and "Re-convergence" in output

    def test_unknown_failure_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["deliver", "abilene", "Seattle", "Atlanta", "--fail", "Mars-Venus"])


class TestExperimentCommands:
    def test_figure2_panel(self, capsys):
        assert main(["figure2", "2a", "--plot"]) == 0
        output = capsys.readouterr().out
        assert "Packet Re-cycling" in output
        assert "P(Stretch > x | path)" in output

    def test_overhead(self, capsys):
        assert main(["overhead", "abilene"]) == 0
        assert "Header bits" in capsys.readouterr().out

    def test_coverage_single_failures(self, capsys):
        assert main(["coverage", "abilene"]) == 0
        assert "100.00%" in capsys.readouterr().out

    def test_coverage_multi_failures(self, capsys):
        assert main(["coverage", "abilene", "--failures", "2", "--samples", "10"]) == 0
        assert "delivered" in capsys.readouterr().out


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_panel_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure2", "9z"])
