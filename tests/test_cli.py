"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestTopologyCommand:
    def test_summary(self, capsys):
        assert main(["topology", "abilene"]) == 0
        output = capsys.readouterr().out
        assert "routers: 11" in output and "links: 14" in output

    def test_link_listing(self, capsys):
        main(["topology", "abilene", "--links"])
        output = capsys.readouterr().out
        assert "Seattle -- Sunnyvale" in output

    def test_file_topology(self, tmp_path, capsys):
        path = tmp_path / "net.topo"
        path.write_text("a b 1\nb c 1\nc a 1\n")
        assert main(["topology", str(path)]) == 0
        assert "routers: 3" in capsys.readouterr().out


class TestEmbedCommand:
    def test_embed_and_write_artifact(self, tmp_path, capsys):
        output = tmp_path / "abilene.json"
        assert main(["embed", "abilene", "--output", str(output)]) == 0
        stdout = capsys.readouterr().out
        assert "genus: 0" in stdout
        assert output.exists()

    def test_embed_method_choice(self, capsys):
        assert main(["embed", "abilene", "--method", "planar"]) == 0
        assert "self-paired links: 0" in capsys.readouterr().out


class TestTablesCommand:
    def test_router_table_printed(self, capsys):
        assert main(["tables", "fig1-example", "D"]) == 0
        output = capsys.readouterr().out
        assert "Cycle following table at node D." in output
        assert "IBD | IDF | IDE" in output


class TestDeliverCommand:
    def test_delivery_without_failures(self, capsys):
        assert main(["deliver", "abilene", "Seattle", "Atlanta"]) == 0
        assert "delivered" in capsys.readouterr().out

    def test_delivery_with_named_failure(self, capsys):
        code = main([
            "deliver", "abilene", "Seattle", "Atlanta",
            "--fail", "KansasCity-Indianapolis",
        ])
        assert code == 0
        assert "Houston" in capsys.readouterr().out

    def test_compare_flag_runs_all_schemes(self, capsys):
        assert main(["deliver", "abilene", "Seattle", "Atlanta", "--compare"]) == 0
        output = capsys.readouterr().out
        assert "Failure-Carrying Packets" in output and "Re-convergence" in output

    def test_unknown_failure_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["deliver", "abilene", "Seattle", "Atlanta", "--fail", "Mars-Venus"])


class TestExperimentCommands:
    def test_figure2_panel(self, capsys):
        assert main(["figure2", "2a", "--plot"]) == 0
        output = capsys.readouterr().out
        assert "Packet Re-cycling" in output
        assert "P(Stretch > x | path)" in output

    def test_overhead(self, capsys):
        assert main(["overhead", "abilene"]) == 0
        assert "Header bits" in capsys.readouterr().out

    def test_coverage_single_failures(self, capsys):
        assert main(["coverage", "abilene"]) == 0
        assert "100.00%" in capsys.readouterr().out

    def test_coverage_multi_failures(self, capsys):
        assert main(["coverage", "abilene", "--failures", "2", "--samples", "10"]) == 0
        assert "delivered" in capsys.readouterr().out


class TestScenariosCommand:
    def test_list_tabulates_registered_models(self, capsys):
        assert main(["scenarios", "list"]) == 0
        output = capsys.readouterr().out
        for name in ("srlg", "regional", "weighted", "maintenance", "churn"):
            assert name in output
        assert "group_size=3" in output  # declared defaults are shown

    def test_preview_prints_failure_sets(self, capsys):
        assert main([
            "scenarios", "preview", "srlg", "--topology", "abilene",
            "--samples", "3", "--seed", "1",
        ]) == 0
        output = capsys.readouterr().out
        assert "model=srlg topology=abilene" in output
        assert "risk group" in output and "--" in output

    def test_preview_param_overrides(self, capsys):
        assert main([
            "scenarios", "preview", "weighted", "--topology", "abilene",
            "--samples", "2", "--param", "failures=2", "--param", "by=length",
        ]) == 0
        assert "'by': 'length'" in capsys.readouterr().out

    def test_preview_is_deterministic(self, capsys):
        argv = ["scenarios", "preview", "churn", "--samples", "3", "--seed", "9"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        assert capsys.readouterr().out == first

    def test_preview_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenarios", "preview", "meteor-strike"])

    def test_preview_unknown_param_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenarios", "preview", "srlg", "--param", "blast=2"])

    def test_preview_spec_field_name_as_param_rejected_cleanly(self):
        """A parameter spelled like a ScenarioSpec field must get the model's
        unknown-parameter error, not a TypeError from keyword splatting."""
        with pytest.raises(SystemExit, match="unknown parameters"):
            main(["scenarios", "preview", "srlg", "--param", "samples=3"])

    def test_preview_non_finite_param_rejected(self):
        with pytest.raises(SystemExit, match="expects a float"):
            main(["scenarios", "preview", "churn", "--param", "horizon=nan"])

    def test_preview_bad_param_syntax_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenarios", "preview", "srlg", "--param", "group_size"])


class TestSweepModels:
    def test_sweep_with_models_prints_family_table(self, capsys, tmp_path):
        assert main([
            "sweep", "--topologies", "fig1-example",
            "--schemes", "reconvergence",
            "--model", "srlg", "--model", "maintenance:window=1",
            "--samples", "3", "--quiet",
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        output = capsys.readouterr().out
        assert "family" in output
        assert "srlg" in output and "maintenance" in output

    def test_sweep_bad_model_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "sweep", "--topologies", "fig1-example",
                "--model", "meteor-strike", "--quiet",
                "--cache-dir", str(tmp_path / "cache"),
            ])

    def test_sweep_bad_model_param_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "sweep", "--topologies", "fig1-example",
                "--model", "srlg:blast=2", "--quiet",
                "--cache-dir", str(tmp_path / "cache"),
            ])


class TestTopologiesCommand:
    def test_list_tabulates_families_and_sets(self, capsys):
        assert main(["topologies", "list"]) == 0
        output = capsys.readouterr().out
        assert "waxman" in output and "nsfnet1991" in output
        assert "set 'all'" in output

    def test_show_parameterized_spec(self, capsys):
        assert main(["topologies", "show", "fat-tree:k=4"]) == 0
        output = capsys.readouterr().out
        assert "spec: fat-tree:k=4" in output
        assert "routers: 20" in output

    def test_show_canonicalises_spelling(self, capsys):
        assert main(["topologies", "show", "WAXMAN:seed=3,size=20"]) == 0
        assert "spec: waxman:alpha=0.6,beta=0.4,seed=3,size=20" in capsys.readouterr().out

    def test_show_unknown_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["topologies", "show", "meteor-net"])

    def test_validate_all_passes(self, capsys):
        assert main(["topologies", "validate", "--all"]) == 0
        output = capsys.readouterr().out
        assert "topologies valid" in output
        assert "FAIL" not in output

    def test_validate_reports_failures_with_exit_code(self, tmp_path, capsys):
        path = tmp_path / "split.topo"
        path.write_text("a b 1\nc d 1\n")
        assert main(["topologies", "validate", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_validate_needs_a_target(self):
        with pytest.raises(SystemExit):
            main(["topologies", "validate"])


class TestSweepTopologySet:
    def test_corpus_sweep_prints_cross_topology_summary(self, capsys, tmp_path):
        assert main([
            "sweep", "--topologies", "nsfnet1991", "fat-tree:k=4",
            "--schemes", "reconvergence",
            "--quiet", "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        output = capsys.readouterr().out
        assert "corpus summary (2 topologies)" in output
        assert "nsfnet1991" in output and "fat-tree:k=4" in output

    def test_topology_set_expands_the_grid(self, capsys, tmp_path):
        from repro.topologies.corpus import topology_set

        assert main([
            "sweep", "--topology-set", "zoo",
            "--schemes", "reconvergence",
            "--quiet", "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        output = capsys.readouterr().out
        assert f"corpus summary ({len(topology_set('zoo'))} topologies)" in output

    def test_bad_topology_param_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "sweep", "--topologies", "ring:blast=9",
                "--schemes", "reconvergence",
                "--quiet", "--cache-dir", str(tmp_path / "cache"),
            ])


class TestReportCommand:
    def _swept(self, tmp_path, *extra):
        results = tmp_path / "run.jsonl"
        assert main([
            "sweep", "--topologies", "fig1-example",
            "--schemes", "reconvergence", "pr",
            "--quiet", "--cache-dir", str(tmp_path / "cache"),
            "--results", str(results), *extra,
        ]) == 0
        return results

    def test_sweep_prints_manifest_and_merged_counters(self, capsys, tmp_path):
        self._swept(tmp_path)
        output = capsys.readouterr().out
        assert "telemetry manifest:" in output
        assert "engine counters (all workers):" in output

    def test_sweep_slowest_table(self, capsys, tmp_path):
        self._swept(tmp_path, "--slowest", "2")
        output = capsys.readouterr().out
        assert "slowest cells" in output
        assert "dominant phase" in output

    def test_report_from_results_jsonl(self, capsys, tmp_path):
        results = self._swept(tmp_path)
        capsys.readouterr()
        assert main(["report", str(results)]) == 0
        output = capsys.readouterr().out
        assert "phase-time breakdown" in output
        assert "cache efficiency" in output

    def test_report_from_manifest_file(self, capsys, tmp_path):
        results = self._swept(tmp_path)
        capsys.readouterr()
        from repro import telemetry

        assert main(["report", str(telemetry.manifest_path_for(results))]) == 0
        assert "campaign telemetry:" in capsys.readouterr().out

    def test_report_validate_gate(self, capsys, tmp_path):
        results = self._swept(tmp_path)
        capsys.readouterr()
        assert main(["report", str(results), "--validate"]) == 0
        assert "manifest valid" in capsys.readouterr().out
        broken = tmp_path / "broken.telemetry.json"
        broken.write_text('{"schema": "bogus"}')
        assert main(["report", str(broken), "--validate"]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_report_missing_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report", str(tmp_path / "nope.jsonl")])

    def test_sweep_no_telemetry_still_writes_manifest(self, capsys, tmp_path):
        import json

        from repro import telemetry

        try:
            results = self._swept(tmp_path, "--no-telemetry")
        finally:
            telemetry.set_enabled(True)
        output = capsys.readouterr().out
        assert "engine counters (all workers):" not in output
        manifest = json.loads(telemetry.manifest_path_for(results).read_text())
        assert manifest["records"]["with_telemetry"] == 0


class TestStoreCommands:
    def _swept(self, tmp_path, name="run.sqlite"):
        results = tmp_path / name
        assert main([
            "sweep", "--topologies", "fig1-example",
            "--schemes", "reconvergence", "fcp",
            "--quiet", "--cache-dir", str(tmp_path / "cache"),
            "--results", str(results),
        ]) == 0
        return results

    def test_sweep_into_store_prints_query_hint(self, capsys, tmp_path):
        store = self._swept(tmp_path)
        output = capsys.readouterr().out
        assert "results store:" in output
        assert "repro query" in output
        assert store.exists()

    def test_query_summary_table(self, capsys, tmp_path):
        store = self._swept(tmp_path)
        capsys.readouterr()
        assert main(["query", str(store), "scheme=reconvergence"]) == 0
        output = capsys.readouterr().out
        assert "1 record" in output
        assert "fig1-example" in output

    def test_query_json_lines(self, capsys, tmp_path):
        import json

        store = self._swept(tmp_path)
        capsys.readouterr()
        assert main(["query", str(store), "--json", "--limit", "1"]) == 0
        [line] = capsys.readouterr().out.strip().splitlines()
        assert json.loads(line)["topology"] == "fig1-example"

    def test_query_campaigns_listing(self, capsys, tmp_path):
        store = self._swept(tmp_path)
        capsys.readouterr()
        assert main(["query", str(store), "--campaigns"]) == 0
        assert "campaign" in capsys.readouterr().out

    def test_query_no_match_exits_nonzero(self, capsys, tmp_path):
        store = self._swept(tmp_path)
        assert main(["query", str(store), "topology~zoo"]) == 1

    def test_query_bad_clause_exits_with_message(self, tmp_path):
        store = self._swept(tmp_path)
        with pytest.raises(SystemExit, match="field"):
            main(["query", str(store), "flavor=mint"])

    def test_query_works_on_jsonl_too(self, capsys, tmp_path):
        results = self._swept(tmp_path, name="run.jsonl")
        capsys.readouterr()
        assert main(["query", str(results), "scheme=fcp"]) == 0
        assert "1 record" in capsys.readouterr().out

    def test_migrate_round_trip_and_report(self, capsys, tmp_path):
        import filecmp

        results = self._swept(tmp_path, name="run.jsonl")
        store = tmp_path / "run.sqlite"
        assert main(["migrate", str(results), str(store)]) == 0
        back = tmp_path / "back.jsonl"
        assert main(["migrate", str(store), str(back)]) == 0
        assert filecmp.cmp(results, back, shallow=False)
        capsys.readouterr()
        assert main(["report", str(store), "--validate"]) == 0
        assert "manifest valid" in capsys.readouterr().out

    def test_serve_answers_over_socket_until_shutdown(self, tmp_path):
        import threading

        from repro.store.serve import request

        socket_path = tmp_path / "serve.sock"
        codes = {}

        def run():
            codes["exit"] = main(["serve", "--socket", str(socket_path),
                                  "--cache-dir", str(tmp_path / "cache")])

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        for _ in range(200):
            if socket_path.exists():
                break
            thread.join(timeout=0.05)
        assert request(socket_path, {"op": "ping"})["pong"] is True
        request(socket_path, {"op": "shutdown"})
        thread.join(timeout=10)
        assert codes["exit"] == 0


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_panel_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure2", "9z"])

    def test_scenarios_needs_an_action(self):
        with pytest.raises(SystemExit):
            main(["scenarios"])
