"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists only
so that editable installs work in offline environments whose setuptools/pip
combination lacks the ``wheel`` package required by the PEP 660 build path
(``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
