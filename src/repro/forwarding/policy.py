"""Class-based deployment policies (Section 7).

"Depending on the desired deployment strategy, ISPs can include extra rules
and policies to limit PR to certain types of traffic (for example by limiting
it to certain classes identifiable by the remaining DSCP bits)."

:class:`ClassBasedProtection` implements exactly that: packets whose DSCP
class belongs to the protected set are forwarded by the protected scheme
(normally Packet Re-cycling), every other packet is forwarded by a fallback
scheme (plain shortest-path forwarding by default, which drops at failures).
The policy therefore bounds the extra load cycle following can put on backup
paths to the traffic classes that actually need "five nines" delivery.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

from repro.baselines.noprotection import NoProtection
from repro.forwarding.network_state import NetworkState
from repro.forwarding.packets import Packet
from repro.forwarding.router import ForwardingDecision, RouterLogic
from repro.forwarding.scheme import ForwardingScheme
from repro.graph.darts import Dart

#: Expedited Forwarding and the Assured Forwarding class 4 codepoints — a
#: sensible default for "mission-critical" traffic (RFC 2474 / RFC 2597).
DEFAULT_PROTECTED_CLASSES: FrozenSet[int] = frozenset({46, 34, 36, 38})


class ClassDispatchLogic(RouterLogic):
    """Dispatch each packet to the protected or fallback logic by DSCP class."""

    name = "Class-based protection"

    def __init__(
        self,
        protected: RouterLogic,
        fallback: RouterLogic,
        protected_classes: FrozenSet[int],
    ) -> None:
        self.protected = protected
        self.fallback = fallback
        self.protected_classes = protected_classes

    def decide(
        self,
        node: str,
        ingress: Optional[Dart],
        packet: Packet,
        state: NetworkState,
    ) -> ForwardingDecision:
        if packet.dscp in self.protected_classes:
            return self.protected.decide(node, ingress, packet, state)
        return self.fallback.decide(node, ingress, packet, state)


class ClassBasedProtection(ForwardingScheme):
    """Limit a protection scheme to selected DSCP traffic classes.

    Parameters
    ----------
    protected_scheme:
        The scheme applied to protected classes (normally
        :class:`~repro.core.scheme.PacketRecycling`).
    fallback_scheme:
        The scheme applied to everything else; defaults to plain unprotected
        shortest-path forwarding.
    protected_classes:
        DSCP codepoints that receive protection.
    """

    name = "Class-based protection"

    def __init__(
        self,
        protected_scheme: ForwardingScheme,
        fallback_scheme: Optional[ForwardingScheme] = None,
        protected_classes: Iterable[int] = DEFAULT_PROTECTED_CLASSES,
    ) -> None:
        super().__init__(protected_scheme.graph)
        self.protected_scheme = protected_scheme
        self.fallback_scheme = (
            fallback_scheme if fallback_scheme is not None else NoProtection(protected_scheme.graph)
        )
        if self.fallback_scheme.graph is not protected_scheme.graph:
            # Both planes must forward over the same physical topology.
            self.fallback_scheme = NoProtection(protected_scheme.graph)
        self.protected_classes = frozenset(protected_classes)
        self.name = f"{protected_scheme.name} [protected classes only]"

    def is_protected(self, dscp: int) -> bool:
        """Whether packets of the given DSCP class receive protection."""
        return dscp in self.protected_classes

    def build_logic(self, state: NetworkState) -> RouterLogic:
        return ClassDispatchLogic(
            self.protected_scheme.build_logic(state),
            self.fallback_scheme.build_logic(state),
            self.protected_classes,
        )

    def header_overhead_bits(self) -> int:
        """Protected packets carry the protected scheme's fields."""
        return self.protected_scheme.header_overhead_bits()

    def router_memory_entries(self) -> int:
        """The protected scheme's state is installed regardless of the policy."""
        return self.protected_scheme.router_memory_entries()
