"""Hop-by-hop forwarding engine.

The engine walks a packet from its source towards its destination, asking
the scheme's :class:`~repro.forwarding.router.RouterLogic` for a decision at
every router and enforcing the invariants that are independent of any scheme:

* a packet that reaches its destination is delivered;
* no router may forward onto a link that is currently down (that would be a
  protocol bug — failure detection is assumed local and immediate, as in the
  paper);
* the TTL bounds the number of hops, so a scheme that loops is reported as
  ``TTL_EXCEEDED`` rather than hanging the experiment.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.errors import ProtocolError
from repro.forwarding.network_state import NetworkState
from repro.forwarding.packets import Packet
from repro.forwarding.router import Action, RouterLogic
from repro.graph.darts import Dart


class DeliveryStatus(str, enum.Enum):
    """Final status of a forwarding attempt."""

    DELIVERED = "delivered"
    DROPPED = "dropped"
    TTL_EXCEEDED = "ttl-exceeded"


class ForwardingOutcome:
    """Everything the experiments need to know about one packet's journey.

    A plain slotted class rather than a dataclass: sweeps create one outcome
    per (scenario, pair) packet, so construction cost is a measurable part
    of a campaign.
    """

    __slots__ = (
        "source",
        "destination",
        "status",
        "path",
        "cost",
        "hops",
        "drop_reason",
        "counters",
    )

    def __init__(
        self,
        source: str,
        destination: str,
        status: DeliveryStatus,
        path: List[str],
        cost: float,
        hops: int,
        drop_reason: Optional[str] = None,
        counters: Optional[Dict[str, float]] = None,
    ) -> None:
        self.source = source
        self.destination = destination
        self.status = status
        self.path = path
        self.cost = cost
        self.hops = hops
        self.drop_reason = drop_reason
        self.counters = counters if counters is not None else {}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ForwardingOutcome):
            return NotImplemented
        return (
            self.source == other.source
            and self.destination == other.destination
            and self.status == other.status
            and self.path == other.path
            and self.cost == other.cost
            and self.hops == other.hops
            and self.drop_reason == other.drop_reason
            and self.counters == other.counters
        )

    @property
    def delivered(self) -> bool:
        """Whether the packet reached its destination."""
        return self.status is DeliveryStatus.DELIVERED

    def counter(self, name: str) -> float:
        """Value of an accounting counter (0 when the scheme never bumped it)."""
        return self.counters.get(name, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return (
            f"ForwardingOutcome({self.source}->{self.destination}, {self.status.value}, "
            f"hops={self.hops}, cost={self.cost:.3f})"
        )


class HopByHopEngine:
    """Drives one packet through the network under a given router logic."""

    def __init__(self, state: NetworkState, logic: RouterLogic) -> None:
        self.state = state
        self.logic = logic

    def forward_packet(self, packet: Packet) -> ForwardingOutcome:
        """Walk ``packet`` hop by hop until delivery, drop or TTL expiry."""
        graph = self.state.graph
        node = packet.source
        ingress: Optional[Dart] = None
        path = [node]
        cost = 0.0
        hops = 0
        counters: Dict[str, float] = {}

        while True:
            if node == packet.destination:
                return ForwardingOutcome(
                    source=packet.source,
                    destination=packet.destination,
                    status=DeliveryStatus.DELIVERED,
                    path=path,
                    cost=cost,
                    hops=hops,
                    counters=counters,
                )
            if packet.header.ttl <= 0:
                return ForwardingOutcome(
                    source=packet.source,
                    destination=packet.destination,
                    status=DeliveryStatus.TTL_EXCEEDED,
                    path=path,
                    cost=cost,
                    hops=hops,
                    drop_reason="ttl expired",
                    counters=counters,
                )

            decision = self.logic.decide(node, ingress, packet, self.state)
            for name, value in decision.counters.items():
                counters[name] = counters.get(name, 0.0) + value

            if decision.action is Action.DROP:
                return ForwardingOutcome(
                    source=packet.source,
                    destination=packet.destination,
                    status=DeliveryStatus.DROPPED,
                    path=path,
                    cost=cost,
                    hops=hops,
                    drop_reason=decision.drop_reason,
                    counters=counters,
                )
            if decision.action is Action.DELIVER:
                return ForwardingOutcome(
                    source=packet.source,
                    destination=packet.destination,
                    status=DeliveryStatus.DELIVERED,
                    path=path,
                    cost=cost,
                    hops=hops,
                    counters=counters,
                )

            egress = decision.egress
            assert egress is not None  # guaranteed by ForwardingDecision
            if egress.tail != node:
                raise ProtocolError(
                    f"{self.logic.name}: router {node!r} tried to forward over "
                    f"{egress!r}, which does not leave it"
                )
            if not self.state.dart_usable(egress):
                raise ProtocolError(
                    f"{self.logic.name}: router {node!r} forwarded onto failed link "
                    f"{egress.edge_id} ({egress.tail}->{egress.head})"
                )

            cost += graph.weight(egress.edge_id)
            hops += 1
            packet.header.ttl -= 1
            ingress = egress
            node = egress.head
            path.append(node)

    def forward(self, source: str, destination: str, ttl: int = 255, size_bytes: int = 1000) -> ForwardingOutcome:
        """Convenience wrapper creating the packet and forwarding it."""
        packet = Packet(source, destination, size_bytes=size_bytes, ttl=ttl)
        return self.forward_packet(packet)
