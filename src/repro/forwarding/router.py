"""The per-router decision interface shared by every forwarding scheme.

Each scheme (Packet Re-cycling, FCP, re-convergence, LFA, ...) is expressed
as a :class:`RouterLogic`: given the router it is running on, the interface
the packet arrived on and the packet itself, decide what to do next.  The
hop-by-hop engine owns everything else (moving the packet, TTL, accounting),
which keeps the protocol implementations small and close to the paper's
pseudo-description.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.errors import ForwardingError
from repro.forwarding.network_state import NetworkState
from repro.forwarding.packets import Packet
from repro.graph.darts import Dart


class Action(str, enum.Enum):
    """What a router decided to do with a packet."""

    FORWARD = "forward"
    DELIVER = "deliver"
    DROP = "drop"


class ForwardingDecision:
    """Outcome of one router's forwarding decision.

    ``counters`` carries per-decision accounting increments (e.g. how many
    SPF computations an FCP router had to run), which the engine accumulates
    into the final outcome.
    """

    __slots__ = ("action", "egress", "drop_reason", "counters")

    def __init__(
        self,
        action: Action,
        egress: Optional[Dart] = None,
        drop_reason: Optional[str] = None,
        counters: Optional[Dict[str, float]] = None,
    ) -> None:
        if action is Action.FORWARD and egress is None:
            raise ForwardingError("a FORWARD decision requires an egress dart")
        if action is not Action.FORWARD and egress is not None:
            raise ForwardingError(f"{action.value} decisions must not carry an egress dart")
        self.action = action
        self.egress = egress
        self.drop_reason = drop_reason
        # The classmethod constructors pass a fresh kwargs dict; the decision
        # takes ownership rather than copying (decisions are read-only once
        # handed to the engine).
        self.counters = counters if counters is not None else {}

    @classmethod
    def forward(cls, egress: Dart, **counters: float) -> "ForwardingDecision":
        """Forward the packet out of ``egress``."""
        return cls(Action.FORWARD, egress=egress, counters=counters)

    @classmethod
    def deliver(cls, **counters: float) -> "ForwardingDecision":
        """The packet has reached its destination."""
        return cls(Action.DELIVER, counters=counters)

    @classmethod
    def drop(cls, reason: str, **counters: float) -> "ForwardingDecision":
        """Discard the packet."""
        return cls(Action.DROP, drop_reason=reason, counters=counters)

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        if self.action is Action.FORWARD:
            return f"ForwardingDecision(forward via {self.egress!r})"
        if self.action is Action.DROP:
            return f"ForwardingDecision(drop: {self.drop_reason})"
        return "ForwardingDecision(deliver)"


class RouterLogic:
    """Per-router forwarding behaviour of one scheme.

    Subclasses implement :meth:`decide`.  The engine guarantees that
    ``node != packet.header.destination`` when calling (delivery is detected
    by the engine itself) and that the returned egress dart leaves ``node``;
    it *verifies* that the egress link is up and raises
    :class:`~repro.errors.ProtocolError` otherwise, because forwarding onto a
    link known to be dead would be a protocol bug, not a simulation artefact.
    """

    #: Human-readable scheme name (used in experiment tables).
    name = "abstract"

    def decide(
        self,
        node: str,
        ingress: Optional[Dart],
        packet: Packet,
        state: NetworkState,
    ) -> ForwardingDecision:
        """Decide what ``node`` does with ``packet`` arrived over ``ingress``.

        ``ingress`` is ``None`` when the packet originates at ``node``.
        """
        raise NotImplementedError
