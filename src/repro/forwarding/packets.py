"""Packets: header plus the metadata the simulators track per packet."""

from __future__ import annotations

import itertools
from typing import Optional

from repro.forwarding.headers import PacketHeader

_packet_ids = itertools.count()


class Packet:
    """A single packet travelling from ``source`` to ``destination``.

    The path-tracing engine only cares about the header; the discrete-event
    simulator additionally uses ``size_bytes`` (serialisation delay) and the
    creation timestamp.
    """

    __slots__ = (
        "packet_id",
        "source",
        "destination",
        "header",
        "size_bytes",
        "created_at",
        "dscp",
    )

    def __init__(
        self,
        source: str,
        destination: str,
        size_bytes: int = 1000,
        ttl: int = 255,
        created_at: float = 0.0,
        packet_id: Optional[int] = None,
        dscp: int = 0,
    ) -> None:
        self.packet_id = next(_packet_ids) if packet_id is None else packet_id
        self.source = source
        self.destination = destination
        self.header = PacketHeader(destination, ttl=ttl)
        self.size_bytes = size_bytes
        self.created_at = created_at
        #: DSCP class of the packet (the remaining DSCP bits of Section 7,
        #: used by deployment policies to decide which traffic PR protects).
        self.dscp = dscp

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return (
            f"Packet(#{self.packet_id} {self.source}->{self.destination}, "
            f"{self.size_bytes}B, header={self.header!r})"
        )
