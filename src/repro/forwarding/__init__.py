"""Packet forwarding substrate: headers, packets, network state and the engine.

The subsystem is deliberately split the same way a router implementation
would be:

* :mod:`~repro.forwarding.headers` — the packet header fields each scheme
  needs (the PR bit, the DD bits, FCP's failure list) plus the DSCP pool-2
  encoding suggested by the paper.
* :mod:`~repro.forwarding.packets` — packets (header + metadata).
* :mod:`~repro.forwarding.network_state` — which links are currently down.
* :mod:`~repro.forwarding.router` — the per-router decision interface
  (`RouterLogic`) and its decisions.
* :mod:`~repro.forwarding.engine` — the hop-by-hop engine that moves a packet
  from router to router, enforcing that nobody forwards onto a failed link,
  and records the outcome.
* :mod:`~repro.forwarding.scheme` — the `ForwardingScheme` base class shared
  by Packet Re-cycling and every baseline.
"""

from repro.forwarding.headers import DscpCodec, PacketHeader
from repro.forwarding.packets import Packet
from repro.forwarding.network_state import NetworkState
from repro.forwarding.router import Action, ForwardingDecision, RouterLogic
from repro.forwarding.engine import DeliveryStatus, ForwardingOutcome, HopByHopEngine
from repro.forwarding.scheme import ForwardingScheme
from repro.forwarding.policy import ClassBasedProtection, DEFAULT_PROTECTED_CLASSES

__all__ = [
    "DscpCodec",
    "PacketHeader",
    "Packet",
    "NetworkState",
    "Action",
    "ForwardingDecision",
    "RouterLogic",
    "DeliveryStatus",
    "ForwardingOutcome",
    "HopByHopEngine",
    "ForwardingScheme",
    "ClassBasedProtection",
    "DEFAULT_PROTECTED_CLASSES",
]
