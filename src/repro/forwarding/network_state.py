"""Current failure state of the network.

The paper assumes bidirectional failures ("When considering failure coverage,
we assume that failures are bidirectional", Section 4): a failed link is
unusable in both directions, and a failed node simply means that all of its
incident links have failed.  :class:`NetworkState` captures exactly that —
the set of currently-dead undirected links — and answers the only question
the data plane ever asks: *is this interface usable right now?*
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Set

from repro.errors import EdgeNotFound, FailureScenarioError
from repro.graph.darts import Dart
from repro.graph.multigraph import Graph


class NetworkState:
    """The network graph plus the set of currently failed links."""

    def __init__(self, graph: Graph, failed_edges: Iterable[int] = ()) -> None:
        self.graph = graph
        self._failed: Set[int] = set()
        for edge_id in failed_edges:
            self.fail_link(edge_id)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def fail_link(self, edge_id: int) -> None:
        """Mark a link as failed (bidirectionally)."""
        try:
            self.graph.edge(edge_id)
        except EdgeNotFound:
            raise FailureScenarioError(
                f"edge {edge_id} is not part of {self.graph.name!r}"
            ) from None
        self._failed.add(edge_id)

    def restore_link(self, edge_id: int) -> None:
        """Bring a previously failed link back up."""
        self._failed.discard(edge_id)

    def fail_node(self, node: str) -> List[int]:
        """Fail every link incident to ``node`` (the paper's node-failure model)."""
        incident = self.graph.incident_edge_ids(node)
        for edge_id in incident:
            self._failed.add(edge_id)
        return incident

    def clear(self) -> None:
        """Restore every link."""
        self._failed.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def failed_edges(self) -> FrozenSet[int]:
        """The set of currently failed link ids."""
        return frozenset(self._failed)

    def is_failed(self, edge_id: int) -> bool:
        """Whether the link with id ``edge_id`` is down."""
        return edge_id in self._failed

    def dart_usable(self, dart: Dart) -> bool:
        """Whether a packet can currently be transmitted over ``dart``."""
        return dart.edge_id not in self._failed

    def usable_darts_out(self, node: str) -> List[Dart]:
        """Darts leaving ``node`` whose links are currently up."""
        return [dart for dart in self.graph.darts_out(node) if self.dart_usable(dart)]

    def is_isolated(self, node: str) -> bool:
        """Whether every link of ``node`` has failed."""
        return not self.usable_darts_out(node)

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return f"NetworkState({self.graph.name!r}, failed={sorted(self._failed)})"
