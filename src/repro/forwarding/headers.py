"""Packet header fields used by PR and the baseline schemes.

The paper's deployment story is that PR needs only "a single PR bit to
indicate the forwarding mechanism to use, and enough DD bits to store the
distance discriminator", and suggests carrying them in pool 2 of the DSCP
field (the experimental/local-use codepoints of RFC 2474).  FCP, in
contrast, must carry an explicit list of failed links, which is why the
paper argues it "employs more bits in the packet header than are currently
available".  The header model below carries the superset of fields so that
every scheme can be driven by the same engine, and the per-scheme overhead
accounting only counts the fields that scheme actually uses.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Optional, Set

from repro.errors import HeaderFieldOverflow


class PacketHeader:
    """Mutable per-packet header state.

    Attributes
    ----------
    destination:
        Destination router name (stands in for the destination IP prefix).
    pr_bit:
        The Packet Re-cycling bit: ``True`` while the packet is being cycle
        followed rather than shortest-path routed.
    dd_value:
        Value of the DD bits (distance discriminator written by the first
        failure-detecting router); ``None`` while the PR bit is clear.
    fcp_failures:
        The set of failed link ids a Failure-Carrying Packet has accumulated.
    ttl:
        Remaining hop budget; the engine decrements it every hop.
    """

    __slots__ = ("destination", "pr_bit", "dd_value", "fcp_failures", "ttl")

    def __init__(self, destination: str, ttl: int = 255) -> None:
        self.destination = destination
        self.pr_bit = False
        self.dd_value: Optional[float] = None
        self.fcp_failures: Set[int] = set()
        self.ttl = ttl

    # ------------------------------------------------------------------
    # PR fields
    # ------------------------------------------------------------------
    def mark_recycling(self, dd_value: float) -> None:
        """Set the PR bit and write the DD bits (first failure detection)."""
        self.pr_bit = True
        self.dd_value = dd_value

    def clear_recycling(self) -> None:
        """Clear the PR bit and DD bits (termination condition met)."""
        self.pr_bit = False
        self.dd_value = None

    # ------------------------------------------------------------------
    # FCP fields
    # ------------------------------------------------------------------
    def record_failure(self, edge_id: int) -> None:
        """Append a failed link to the FCP failure list."""
        self.fcp_failures.add(edge_id)

    def known_failures(self) -> FrozenSet[int]:
        """Failures the packet is currently carrying."""
        return frozenset(self.fcp_failures)

    # ------------------------------------------------------------------
    # overhead accounting
    # ------------------------------------------------------------------
    def pr_overhead_bits(self, dd_bits: int) -> int:
        """Header bits PR occupies: 1 PR bit plus the DD field width."""
        return 1 + dd_bits

    def fcp_overhead_bits(self, link_id_bits: int) -> int:
        """Header bits FCP occupies: one link identifier per carried failure."""
        return len(self.fcp_failures) * link_id_bits

    def copy(self) -> "PacketHeader":
        """Deep copy (used when fanning one packet out over many scenarios)."""
        clone = PacketHeader(self.destination, self.ttl)
        clone.pr_bit = self.pr_bit
        clone.dd_value = self.dd_value
        clone.fcp_failures = set(self.fcp_failures)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return (
            f"PacketHeader(dest={self.destination}, pr={self.pr_bit}, "
            f"dd={self.dd_value}, fcp={sorted(self.fcp_failures)}, ttl={self.ttl})"
        )


class DscpCodec:
    """Encode/decode the PR bit and DD bits into a small header field.

    RFC 2474 reserves pool 2 of the DSCP space (codepoints of the form
    ``xxxx11``) for experimental or local use; the paper proposes carrying
    the PR state there.  Pool 2 offers 16 codepoints, i.e. 4 freely usable
    bits, of which one is the PR bit and the rest hold the DD value.  The
    codec is parameterised by the total number of available bits so that
    larger fields (e.g. an IPv6 extension) can be modelled too.
    """

    #: Bits usable in pool 2 of the 6-bit DSCP field (xxxx11 codepoints).
    DSCP_POOL2_BITS = 4

    def __init__(self, available_bits: int = DSCP_POOL2_BITS) -> None:
        if available_bits < 1:
            raise HeaderFieldOverflow("at least one header bit is required for the PR bit")
        self.available_bits = available_bits
        self.dd_bits = available_bits - 1

    @property
    def max_dd_value(self) -> int:
        """Largest distance discriminator the DD field can carry."""
        return (1 << self.dd_bits) - 1

    def encode(self, pr_bit: bool, dd_value: Optional[float]) -> int:
        """Pack the PR bit and DD value into an integer codepoint.

        Raises :class:`HeaderFieldOverflow` if the DD value does not fit —
        this is exactly the sizing constraint the paper's log2(d) argument
        is about.
        """
        value = int(math.ceil(dd_value)) if dd_value is not None else 0
        if value < 0:
            raise HeaderFieldOverflow(f"distance discriminator must be non-negative, got {value}")
        if value > self.max_dd_value:
            raise HeaderFieldOverflow(
                f"distance discriminator {value} does not fit in {self.dd_bits} DD bits"
            )
        return (int(pr_bit) << self.dd_bits) | value

    def decode(self, codepoint: int) -> tuple[bool, int]:
        """Unpack a codepoint produced by :meth:`encode`."""
        if codepoint < 0 or codepoint >= (1 << self.available_bits):
            raise HeaderFieldOverflow(
                f"codepoint {codepoint} does not fit in {self.available_bits} bits"
            )
        pr_bit = bool(codepoint >> self.dd_bits)
        dd_value = codepoint & self.max_dd_value
        return pr_bit, dd_value

    @classmethod
    def bits_for_diameter(cls, diameter_hops: int) -> int:
        """DD bits needed for a network of the given hop diameter (plus the PR bit)."""
        if diameter_hops <= 0:
            return 2
        return 1 + max(1, math.ceil(math.log2(diameter_hops + 1)))


def link_identifier_bits(number_of_edges: int) -> int:
    """Bits needed to name one link unambiguously (used by FCP accounting)."""
    if number_of_edges <= 1:
        return 1
    return math.ceil(math.log2(number_of_edges))
