"""`ForwardingScheme`: the common interface of PR and every baseline.

A scheme owns whatever per-router state it precomputes offline (routing
tables, cycle-following tables, LFA candidates, ...) and knows how to build
the :class:`~repro.forwarding.router.RouterLogic` that drives packets at
forwarding time.  Experiments only ever talk to schemes through
:meth:`ForwardingScheme.deliver`, which makes the Figure 2 sweeps one loop
over ``(scheme, topology, failure scenario, source, destination)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import ForwardingError
from repro.forwarding.engine import ForwardingOutcome, HopByHopEngine
from repro.forwarding.network_state import NetworkState
from repro.forwarding.packets import Packet
from repro.forwarding.router import RouterLogic
from repro.graph.multigraph import Graph


class ForwardingScheme:
    """Base class for every forwarding scheme compared in the paper.

    Subclasses must set :attr:`name`, perform their offline precomputation in
    ``__init__`` (taking at least the topology) and implement
    :meth:`build_logic`.
    """

    #: Human-readable name used in result tables ("Packet Re-cycling", ...).
    name = "abstract"

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    # ------------------------------------------------------------------
    # interface used by experiments
    # ------------------------------------------------------------------
    def build_logic(self, state: NetworkState) -> RouterLogic:
        """Instantiate the per-router logic for a given failure state."""
        raise NotImplementedError

    def default_ttl(self) -> int:
        """Hop budget given to packets under this scheme.

        Generous enough that a correct scheme never hits it: cycle following
        may walk almost every dart of the network several times across
        successive failure episodes.
        """
        return max(64, 8 * self.graph.number_of_edges() + 2 * self.graph.number_of_nodes())

    def deliver(
        self,
        source: str,
        destination: str,
        failed_links: Iterable[int] = (),
        size_bytes: int = 1000,
        ttl: Optional[int] = None,
        dscp: int = 0,
    ) -> ForwardingOutcome:
        """Send one packet from ``source`` to ``destination`` under failures.

        The failure set is applied to the data plane only: the offline state
        (routing tables, cycle-following tables) remains the failure-free one,
        exactly as in the paper's model where failures are strictly local
        knowledge.  ``dscp`` is the packet's traffic class, consulted only by
        class-based deployment policies.
        """
        if source == destination:
            raise ForwardingError("source and destination must differ")
        state = NetworkState(self.graph, failed_links)
        logic = self.build_logic(state)
        engine = HopByHopEngine(state, logic)
        packet = Packet(
            source,
            destination,
            size_bytes=size_bytes,
            ttl=ttl if ttl is not None else self.default_ttl(),
            dscp=dscp,
        )
        return engine.forward_packet(packet)

    def deliver_many(
        self,
        pairs: Iterable[tuple],
        failed_links: Iterable[int] = (),
    ) -> Dict[tuple, ForwardingOutcome]:
        """Deliver one packet per ``(source, destination)`` pair under one failure set.

        The network state and router logic are built once and reused, which
        is what makes the full-mesh sweeps of Figure 2 affordable.
        """
        state = NetworkState(self.graph, failed_links)
        logic = self.build_logic(state)
        engine = HopByHopEngine(state, logic)
        outcomes: Dict[tuple, ForwardingOutcome] = {}
        for source, destination in pairs:
            packet = Packet(source, destination, ttl=self.default_ttl())
            outcomes[(source, destination)] = engine.forward_packet(packet)
        return outcomes

    def header_overhead_bits(self) -> int:
        """Worst-case number of extra header bits the scheme needs.

        Baselines override this; the default is zero (no extra fields).
        """
        return 0

    def router_memory_entries(self) -> int:
        """Total extra table entries the scheme installs across all routers."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return f"{type(self).__name__}(graph={self.graph.name!r})"
