"""Failure-free shortest-path routing tables with the PR distance column.

Every PR-enabled router "initialises the protocol by constructing its routing
table using a conventional shortest path algorithm" (Section 2) and stores,
per destination, the *distance discriminator* of Section 4.3.  This module
computes those tables for the whole network in one pass (one Dijkstra per
destination) and exposes per-router lookups used by the forwarding engine.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import NoPathExists, RoutingError
from repro.graph.darts import Dart
from repro.graph.multigraph import Graph
from repro.graph.spcache import ShortestPathEngine, engine_for
from repro.routing.discriminator import DiscriminatorKind, discriminator_value


class RoutingEntry:
    """One row of a router's routing table for a single destination."""

    __slots__ = ("destination", "next_hop", "egress", "cost", "hops", "discriminator")

    def __init__(
        self,
        destination: str,
        next_hop: str,
        egress: Dart,
        cost: float,
        hops: int,
        discriminator: float,
    ) -> None:
        self.destination = destination
        self.next_hop = next_hop
        self.egress = egress
        self.cost = cost
        self.hops = hops
        self.discriminator = discriminator

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return (
            f"RoutingEntry(dest={self.destination}, next={self.next_hop}, "
            f"cost={self.cost}, dd={self.discriminator})"
        )


class RoutingTables:
    """Routing tables of every router, computed on the failure-free topology."""

    def __init__(
        self,
        graph: Graph,
        discriminator_kind: DiscriminatorKind = DiscriminatorKind.HOP_COUNT,
        excluded_edges: Optional[Iterable[int]] = None,
        engine: Optional[ShortestPathEngine] = None,
    ) -> None:
        self.graph = graph
        self.discriminator_kind = discriminator_kind
        self._excluded = frozenset(excluded_edges or ())
        self._engine = engine if engine is not None else engine_for(graph)
        # _entries[node][destination] -> RoutingEntry
        self._entries: Dict[str, Dict[str, RoutingEntry]] = {
            node: {} for node in graph.nodes()
        }
        self._build()

    @property
    def excluded_edges(self) -> frozenset:
        """The failed links these tables were computed without."""
        return self._excluded

    def _build(self) -> None:
        for destination in self.graph.nodes():
            # Memoized per (topology content, destination, excluded set): one
            # Dijkstra per destination per process, not per consumer.
            dist, parent = self._engine.sssp(destination, self._excluded)
            hops = self._hop_counts(destination, dist, parent)
            for node, (towards, edge_id) in parent.items():
                # ``towards`` is the next hop of ``node`` on its way to the
                # destination (Dijkstra ran from the destination and the graph
                # is undirected with symmetric weights).
                egress = self.graph.dart(edge_id, node)
                entry = RoutingEntry(
                    destination=destination,
                    next_hop=towards,
                    egress=egress,
                    cost=dist[node],
                    hops=hops[node],
                    discriminator=discriminator_value(
                        self.discriminator_kind, hops[node], dist[node]
                    ),
                )
                self._entries[node][destination] = entry

    @staticmethod
    def _hop_counts(
        destination: str,
        dist: Dict[str, float],
        parent: Dict[str, Tuple[str, int]],
    ) -> Dict[str, int]:
        """Hop count of every node along its shortest path to the destination."""
        hops: Dict[str, int] = {destination: 0}
        for node in sorted(parent, key=lambda name: dist[name]):
            towards, _edge_id = parent[node]
            hops[node] = hops[towards] + 1
        return hops

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def entry(self, node: str, destination: str) -> RoutingEntry:
        """The routing entry of ``node`` for ``destination``.

        Raises :class:`~repro.errors.NoPathExists` when the destination is
        unreachable on the (failure-free) topology the tables were built on.
        """
        if node == destination:
            raise RoutingError(f"node {node!r} does not route to itself")
        try:
            return self._entries[node][destination]
        except KeyError:
            raise NoPathExists(node, destination) from None

    def has_route(self, node: str, destination: str) -> bool:
        """Whether ``node`` has a route to ``destination``."""
        return destination in self._entries.get(node, {})

    def next_hop(self, node: str, destination: str) -> str:
        """Next-hop router of ``node`` towards ``destination``."""
        return self.entry(node, destination).next_hop

    def egress(self, node: str, destination: str) -> Dart:
        """Outgoing dart (interface) of ``node`` towards ``destination``."""
        return self.entry(node, destination).egress

    def cost(self, node: str, destination: str) -> float:
        """Shortest-path cost from ``node`` to ``destination``."""
        if node == destination:
            return 0.0
        return self.entry(node, destination).cost

    def hops(self, node: str, destination: str) -> int:
        """Shortest-path hop count from ``node`` to ``destination``."""
        if node == destination:
            return 0
        return self.entry(node, destination).hops

    def discriminator(self, node: str, destination: str) -> float:
        """Distance discriminator of ``node`` for ``destination`` (Section 4.3)."""
        if node == destination:
            return 0.0
        return self.entry(node, destination).discriminator

    def table_of(self, node: str) -> List[RoutingEntry]:
        """All routing entries of one router, sorted by destination."""
        return [self._entries[node][dest] for dest in sorted(self._entries[node])]

    def shortest_path(self, source: str, destination: str) -> List[str]:
        """Node sequence obtained by following next hops from ``source``."""
        if source == destination:
            return [source]
        path = [source]
        node = source
        while node != destination:
            node = self.next_hop(node, destination)
            path.append(node)
            if len(path) > self.graph.number_of_nodes():
                raise RoutingError(
                    f"routing tables loop between {source!r} and {destination!r}"
                )
        return path

    def memory_entries(self) -> int:
        """Total number of routing entries across all routers (memory accounting)."""
        return sum(len(entries) for entries in self._entries.values())

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return (
            f"RoutingTables({self.graph.name!r}, nodes={len(self._entries)}, "
            f"kind={self.discriminator_kind.value})"
        )


def build_routing_tables(
    graph: Graph,
    discriminator_kind: DiscriminatorKind = DiscriminatorKind.HOP_COUNT,
    excluded_edges: Optional[Iterable[int]] = None,
) -> RoutingTables:
    """Convenience constructor mirroring the paper's initialisation step."""
    return RoutingTables(graph, discriminator_kind, excluded_edges)


def cached_routing_tables(
    graph: Graph,
    discriminator_kind: DiscriminatorKind = DiscriminatorKind.HOP_COUNT,
    excluded_edges: Optional[Iterable[int]] = None,
) -> RoutingTables:
    """Shared routing tables for one (topology content, kind, failure set).

    Tables are immutable after construction, so every consumer in a process
    asking for the same combination — the re-convergence baseline building
    per-scenario tables, the stretch experiment's failure-free baseline, the
    campaign executor — receives the same instance.  The memo lives on the
    per-content :class:`~repro.graph.spcache.ShortestPathEngine`, so a
    mutated graph naturally resolves to fresh tables.
    """
    engine = engine_for(graph)
    key = (discriminator_kind, frozenset(excluded_edges or ()))
    tables = engine.tables_cache.get_or_none(key)
    if tables is None:
        tables = RoutingTables(graph, discriminator_kind, excluded_edges, engine=engine)
        engine.tables_cache.put(key, tables)
    return tables
