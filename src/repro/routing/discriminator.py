"""Distance discriminators (Section 4.3 of the paper).

The enriched routing table stores, per destination, "a strictly increasing
function of the links along the shortest path".  The paper proposes two
candidates — the number of hops and the sum of the link weights — and the
header needs enough DD bits to encode the largest value that can occur,
which is in the order of ``log2(d)`` bits for the hop-count discriminator
(``d`` being the network diameter).
"""

from __future__ import annotations

import enum
import math
from typing import Dict

from repro.errors import RoutingError
from repro.graph.multigraph import Graph
from repro.graph.spcache import cached_diameter


class DiscriminatorKind(str, enum.Enum):
    """Which strictly increasing path function the DD bits encode."""

    #: Number of hops along the shortest path (the paper's default; needs
    #: about ``log2(diameter)`` bits).
    HOP_COUNT = "hop-count"
    #: Sum of link weights along the shortest path.
    WEIGHTED_COST = "weighted-cost"


def discriminator_value(kind: DiscriminatorKind, hops: int, cost: float) -> float:
    """The discriminator value for a path with the given hop count and cost."""
    if kind is DiscriminatorKind.HOP_COUNT:
        return float(hops)
    if kind is DiscriminatorKind.WEIGHTED_COST:
        return float(cost)
    raise RoutingError(f"unknown discriminator kind {kind!r}")


def discriminator_bits_required(graph: Graph, kind: DiscriminatorKind) -> int:
    """Number of DD bits needed to encode every possible discriminator value.

    For the hop-count discriminator this is ``ceil(log2(d + 1))`` where ``d``
    is the hop diameter, matching the paper's "in the order of log2(d) bits".
    For the weighted-cost discriminator the weights are quantised to integers
    (ceiling) before sizing the field, which upper-bounds the requirement.
    """
    if graph.number_of_nodes() <= 1:
        return 1
    if kind is DiscriminatorKind.HOP_COUNT:
        largest = int(cached_diameter(graph, hop_count=True))
    elif kind is DiscriminatorKind.WEIGHTED_COST:
        largest = int(math.ceil(cached_diameter(graph, hop_count=False)))
    else:
        raise RoutingError(f"unknown discriminator kind {kind!r}")
    return max(1, math.ceil(math.log2(largest + 1)))


def compare_discriminators(own: float, in_packet: float) -> bool:
    """Whether a failure-detecting router should *resume shortest-path routing*.

    Section 4.3: "If its own is smaller, it will clear the PR bit and route
    along the shortest path.  If its distance discriminator is larger or
    equal, it will forward the packet along the complementary cycle."
    Returns ``True`` when the own value is strictly smaller.
    """
    return own < in_packet


def discriminator_table(
    graph: Graph,
    distances_to: Dict[str, Dict[str, float]],
    hops_to: Dict[str, Dict[str, int]],
    kind: DiscriminatorKind,
) -> Dict[str, Dict[str, float]]:
    """Per-destination, per-node discriminator values.

    ``distances_to[dest][node]`` and ``hops_to[dest][node]`` are the shortest
    path cost / hop count from ``node`` to ``dest`` on the failure-free
    topology; the result has the same shape.
    """
    table: Dict[str, Dict[str, float]] = {}
    for destination, costs in distances_to.items():
        hops = hops_to[destination]
        table[destination] = {
            node: discriminator_value(kind, hops[node], costs[node]) for node in costs
        }
    return table
