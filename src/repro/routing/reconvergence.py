"""Full routing re-convergence: the paper's second comparison point.

Traditional link-state re-convergence floods the failure throughout the
network, lets every router re-run SPF and install new FIB entries.  Two views
of this process are needed by the reproduction:

* the **end state** (:func:`converged_tables`): routing tables recomputed on
  the failed topology — the ideal paths against which Figure 2 measures the
  re-convergence stretch;
* the **transient** (:class:`ReconvergenceModel` /
  :class:`ConvergenceTimeline`): how long the network forwards onto a dead
  link before new tables are in place, which drives the packet-loss estimate
  of the introduction (a heavily loaded OC-192 link down for one second loses
  on the order of a quarter of a million 1 kB packets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.graph.multigraph import Graph
from repro.graph.spcache import hop_engine_for
from repro.routing.discriminator import DiscriminatorKind
from repro.routing.tables import RoutingTables


def converged_tables(
    graph: Graph,
    failed_edges: Iterable[int],
    discriminator_kind: DiscriminatorKind = DiscriminatorKind.HOP_COUNT,
) -> RoutingTables:
    """Routing tables after the network has fully re-converged around failures."""
    return RoutingTables(graph, discriminator_kind, excluded_edges=failed_edges)


@dataclass
class ConvergenceTimeline:
    """Per-router timeline of one re-convergence episode (seconds).

    Attributes
    ----------
    failure_time:
        Instant the link went down.
    detection_time:
        Instant the adjacent routers declared the link dead.
    updated_at:
        Instant each router finished installing its new FIB.
    converged_time:
        Instant the last router finished (network-wide convergence).
    """

    failure_time: float
    detection_time: float
    updated_at: Dict[str, float] = field(default_factory=dict)

    @property
    def converged_time(self) -> float:
        if not self.updated_at:
            return self.detection_time
        return max(self.updated_at.values())

    def blackhole_duration(self, node: str) -> float:
        """How long ``node`` kept forwarding onto stale routes after the failure."""
        return max(0.0, self.updated_at.get(node, self.detection_time) - self.failure_time)


class ReconvergenceModel:
    """Timing model of link-state re-convergence.

    The model is deliberately simple and conservative, following the standard
    decomposition used in the IP fast-reroute literature: failure detection,
    LSA origination, hop-by-hop flooding, SPF computation and FIB update.
    All parameters are per-event constants; flooding time grows with the
    hop distance from the failure.
    """

    def __init__(
        self,
        detection_delay: float = 0.05,
        lsa_origination_delay: float = 0.01,
        per_hop_flooding_delay: float = 0.01,
        spf_computation_delay: float = 0.1,
        fib_update_delay: float = 0.5,
    ) -> None:
        self.detection_delay = detection_delay
        self.lsa_origination_delay = lsa_origination_delay
        self.per_hop_flooding_delay = per_hop_flooding_delay
        self.spf_computation_delay = spf_computation_delay
        self.fib_update_delay = fib_update_delay

    def convergence_delay(self, graph: Graph, failed_edge: int, failure_time: float = 0.0) -> ConvergenceTimeline:
        """Timeline of the re-convergence episode triggered by one link failure.

        Flooding distances are measured on the topology *without* the failed
        link (LSAs cannot cross it).
        """
        edge = graph.edge(failed_edge)
        detection = failure_time + self.detection_delay
        origination = detection + self.lsa_origination_delay

        # Flooding distances are hop counts on the failed topology; the
        # shared unit-weight engine memoizes (and incrementally repairs) the
        # per-endpoint trees instead of copying the graph per episode.  The
        # per-call content lookup (a graph-signature hash) is kept on
        # purpose: it is what lets a mutated graph resolve to a fresh engine.
        hop_engine = hop_engine_for(graph)
        excluded = frozenset((failed_edge,))
        distances: Dict[str, float] = {}
        for endpoint in (edge.u, edge.v):
            dist = hop_engine.distances(endpoint, excluded)
            for node, hops in dist.items():
                if node not in distances or hops < distances[node]:
                    distances[node] = hops

        timeline = ConvergenceTimeline(failure_time=failure_time, detection_time=detection)
        for node in graph.nodes():
            hops = distances.get(node)
            if hops is None:
                # Node cut off from the failure endpoints; it never learns and
                # never updates — model it as converging at detection time
                # since its routes cannot involve the failed link anyway.
                timeline.updated_at[node] = detection
                continue
            timeline.updated_at[node] = (
                origination
                + hops * self.per_hop_flooding_delay
                + self.spf_computation_delay
                + self.fib_update_delay
            )
        return timeline

    def network_convergence_time(self, graph: Graph, failed_edge: int) -> float:
        """Seconds from failure until the last router has re-converged."""
        timeline = self.convergence_delay(graph, failed_edge)
        return timeline.converged_time - timeline.failure_time


def affected_destinations(
    tables: RoutingTables,
    node: str,
    failed_edges: Iterable[int],
) -> List[str]:
    """Destinations whose failure-free route at ``node`` uses a failed link.

    These are the destinations for which ``node`` blackholes traffic until it
    re-converges (or, with PR, the destinations whose packets get the PR bit).
    """
    failed = frozenset(failed_edges)
    affected: List[str] = []
    for entry in tables.table_of(node):
        if entry.egress.edge_id in failed:
            affected.append(entry.destination)
    return affected
