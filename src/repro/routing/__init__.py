"""Conventional link-state routing: the substrate PR extends.

Packet Re-cycling leaves failure-free forwarding untouched: every router
first builds an ordinary shortest-path routing table (the paper cites
Dijkstra explicitly) and only consults the cycle-following machinery when a
failure is hit.  This package provides those tables, the *distance
discriminator* column added by Section 4.3, and a model of full routing
re-convergence used both as a baseline and by the discrete-event simulator.
"""

from repro.routing.discriminator import (
    DiscriminatorKind,
    discriminator_bits_required,
    discriminator_value,
)
from repro.routing.tables import RoutingEntry, RoutingTables, build_routing_tables
from repro.routing.reconvergence import (
    ConvergenceTimeline,
    ReconvergenceModel,
    converged_tables,
)

__all__ = [
    "DiscriminatorKind",
    "discriminator_bits_required",
    "discriminator_value",
    "RoutingEntry",
    "RoutingTables",
    "build_routing_tables",
    "ConvergenceTimeline",
    "ReconvergenceModel",
    "converged_tables",
]
