"""Packet Re-cycling (PR) — reproduction of Lor, Landa & Rio, HotNets 2010.

The package is organised around a small set of subsystems:

* :mod:`repro.graph` — the graph substrate (multigraphs, darts, shortest
  paths, connectivity).
* :mod:`repro.embedding` — cellular graph embeddings (rotation systems,
  face tracing, planarity, genus minimisation).
* :mod:`repro.routing` — conventional link-state routing tables and
  distance discriminators.
* :mod:`repro.forwarding` — packets, headers, routers and the hop-by-hop
  forwarding engine.
* :mod:`repro.core` — the paper's contribution: cycle-following tables and
  the Packet Re-cycling protocol.
* :mod:`repro.baselines` — Failure-Carrying Packets, re-convergence,
  Loop-Free Alternates and a no-protection baseline.
* :mod:`repro.topologies` — Abilene, Géant, Teleglobe and synthetic
  topology generators.
* :mod:`repro.failures` — failure scenario enumeration and sampling.
* :mod:`repro.scenarios` — pluggable failure-scenario models (SRLG,
  regional, weighted, maintenance, churn) behind a name-keyed registry.
* :mod:`repro.metrics` — stretch, CCDFs and overhead accounting.
* :mod:`repro.simulator` — a discrete-event packet-level simulator.
* :mod:`repro.experiments` — runners that regenerate every figure and
  table of the paper's evaluation.
* :mod:`repro.runner` — the campaign runner: declarative parallel sweeps
  over the evaluation grid with a content-addressed offline-stage artifact
  cache and resumable results backends.
* :mod:`repro.store` — the results layer: the queryable SQLite campaign
  store, the checksummed JSONL interchange format, migration between the
  two, the filter grammar and the resident serve loop.

Quickstart
----------

>>> from repro import build_packet_recycling, topologies
>>> network = topologies.abilene()
>>> pr = build_packet_recycling(network)
>>> outcome = pr.deliver("Seattle", "Atlanta", failed_links=set())
>>> outcome.delivered
True
"""

from repro._version import __version__
from repro.api import (
    ArtifactCache,
    CampaignHandle,
    CampaignResult,
    CampaignSpec,
    CampaignStore,
    FailureScenario,
    Filter,
    ResultStore,
    ScenarioModel,
    ScenarioSpec,
    available_scenario_models,
    build_packet_recycling,
    compare_schemes,
    get_scenario_model,
    node_failure_scenarios,
    parse_filter,
    register_scenario_model,
    resolve_results,
    run_campaign,
    sample_multi_link_failures,
    single_link_failures,
    stretch_ccdf,
)
from repro import (
    baselines,
    core,
    embedding,
    experiments,
    failures,
    forwarding,
    graph,
    metrics,
    routing,
    runner,
    scenarios,
    simulator,
    topologies,
)

__all__ = [
    "__version__",
    "ArtifactCache",
    "CampaignHandle",
    "CampaignResult",
    "CampaignSpec",
    "CampaignStore",
    "FailureScenario",
    "Filter",
    "ResultStore",
    "ScenarioModel",
    "ScenarioSpec",
    "available_scenario_models",
    "build_packet_recycling",
    "compare_schemes",
    "get_scenario_model",
    "node_failure_scenarios",
    "parse_filter",
    "register_scenario_model",
    "resolve_results",
    "run_campaign",
    "sample_multi_link_failures",
    "single_link_failures",
    "stretch_ccdf",
    "baselines",
    "core",
    "embedding",
    "experiments",
    "failures",
    "forwarding",
    "graph",
    "metrics",
    "routing",
    "runner",
    "scenarios",
    "simulator",
    "topologies",
]
