"""Touched-edge-pattern outcome memo shared by the scheme fast paths.

FCP and LFA walks consult the failure set only through "is edge e failed?"
tests, so an outcome is valid for any scenario that agrees with the original
walk on exactly the edges it touched.  The memo entry for a pair is a list of
``(touched_mask, pattern, outcome)`` triples where ``pattern`` is the failure
bitmask restricted to the touched edges.  These helpers keep the probe and
record logic in one place so the fast paths cannot drift apart; the walks
themselves stay scheme-specific.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.forwarding.engine import ForwardingOutcome

#: Per-pair entry cap: a pathological scenario stream cannot grow one pair's
#: memo without bound (64 distinct touched-edge patterns per pair in practice
#: covers every scenario family many times over).
MAX_PATTERNS_PER_PAIR = 64

_Entry = Tuple[int, int, ForwardingOutcome]


def lookup_outcome(
    entries: Optional[List[_Entry]], failed_mask: int
) -> Optional[ForwardingOutcome]:
    """The memoized outcome valid under ``failed_mask``, or ``None``.

    An entry matches when the failure mask agrees with the recorded pattern
    on every touched edge: ``failed_mask & touched_mask == pattern``.
    """
    if entries is not None:
        for touched_mask, pattern, outcome in entries:
            if failed_mask & touched_mask == pattern:
                return outcome
    return None


def remember_outcome(
    memo: Dict[tuple, List[_Entry]],
    pair: tuple,
    entries: Optional[List[_Entry]],
    touched: int,
    failed_mask: int,
    outcome: ForwardingOutcome,
) -> None:
    """Record ``outcome`` for ``pair`` under its touched-edge pattern.

    ``entries`` is the list previously fetched for the probe (``None`` when
    the pair had no memo yet), so the record path does one dict store at
    most and no second lookup.
    """
    if entries is None:
        memo[pair] = [(touched, failed_mask & touched, outcome)]
    elif len(entries) < MAX_PATTERNS_PER_PAIR:
        entries.append((touched, failed_mask & touched, outcome))
