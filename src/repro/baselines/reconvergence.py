"""Full routing re-convergence baseline.

For the stretch comparison of Figure 2 the interesting quantity is the path a
packet takes *after* the network has fully re-converged: the shortest path on
the failed topology.  (What happens *during* convergence — packets black-holed
onto the dead link — is modelled separately by :mod:`repro.simulator`, since
the paper uses it as motivation rather than as a stretch data point.)
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ProtocolError
from repro.forwarding.network_state import NetworkState
from repro.forwarding.packets import Packet
from repro.forwarding.router import ForwardingDecision, RouterLogic
from repro.forwarding.scheme import ForwardingScheme
from repro.graph.darts import Dart
from repro.graph.multigraph import Graph
from repro.routing.tables import RoutingTables


class ReconvergedLogic(RouterLogic):
    """Routers forward on tables recomputed with global knowledge of the failures."""

    name = "Re-convergence"

    def __init__(self, converged: RoutingTables, state: NetworkState) -> None:
        self.converged = converged
        self.state = state

    def decide(
        self,
        node: str,
        ingress: Optional[Dart],
        packet: Packet,
        state: NetworkState,
    ) -> ForwardingDecision:
        if state is not self.state:
            raise ProtocolError("router logic was built for a different network state")
        destination = packet.header.destination
        if not self.converged.has_route(node, destination):
            return ForwardingDecision.drop("destination unreachable after re-convergence")
        egress = self.converged.egress(node, destination)
        # The converged tables were computed excluding the failed links, so the
        # egress is up by construction; the engine re-checks the invariant.
        return ForwardingDecision.forward(egress, spf_computations=0)


class Reconvergence(ForwardingScheme):
    """Idealised re-convergence: packets follow post-convergence shortest paths."""

    name = "Re-convergence"

    def build_logic(self, state: NetworkState) -> RouterLogic:
        converged = RoutingTables(self.graph, excluded_edges=state.failed_edges)
        return ReconvergedLogic(converged, state)

    def header_overhead_bits(self) -> int:
        """Re-convergence needs no extra header bits."""
        return 0

    def router_memory_entries(self) -> int:
        """No extra state beyond the ordinary routing table."""
        return 0

    def online_computation_per_failure(self) -> int:
        """Every router re-runs SPF once per failure event (plus floods LSAs)."""
        return self.graph.number_of_nodes()
