"""Full routing re-convergence baseline.

For the stretch comparison of Figure 2 the interesting quantity is the path a
packet takes *after* the network has fully re-converged: the shortest path on
the failed topology.  (What happens *during* convergence — packets black-holed
onto the dead link — is modelled separately by :mod:`repro.simulator`, since
the paper uses it as motivation rather than as a stretch data point.)
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import ProtocolError
from repro.forwarding.engine import DeliveryStatus, ForwardingOutcome
from repro.forwarding.network_state import NetworkState
from repro.forwarding.packets import Packet
from repro.forwarding.router import ForwardingDecision, RouterLogic
from repro.forwarding.scheme import ForwardingScheme
from repro.graph.darts import Dart
from repro.graph.multigraph import Graph
from repro.graph.spcache import engine_for
from repro.routing.tables import RoutingTables, cached_routing_tables


class ReconvergedLogic(RouterLogic):
    """Routers forward on tables recomputed with global knowledge of the failures."""

    name = "Re-convergence"

    def __init__(self, converged: RoutingTables, state: NetworkState) -> None:
        self.converged = converged
        self.state = state

    def decide(
        self,
        node: str,
        ingress: Optional[Dart],
        packet: Packet,
        state: NetworkState,
    ) -> ForwardingDecision:
        if state is not self.state:
            raise ProtocolError("router logic was built for a different network state")
        destination = packet.header.destination
        if not self.converged.has_route(node, destination):
            return ForwardingDecision.drop("destination unreachable after re-convergence")
        egress = self.converged.egress(node, destination)
        # The converged tables were computed excluding the failed links, so the
        # egress is up by construction; the engine re-checks the invariant.
        return ForwardingDecision.forward(egress, spf_computations=0)


class Reconvergence(ForwardingScheme):
    """Idealised re-convergence: packets follow post-convergence shortest paths."""

    name = "Re-convergence"

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        # Resolved once: deliver_many runs once per scenario and the
        # signature hash behind engine_for is not free at sweep scale.
        self._engine = engine_for(graph)

    def build_logic(self, state: NetworkState) -> RouterLogic:
        # Converged tables are pure functions of (topology, failure set), so
        # they are served from the per-process cache: a scenario evaluated by
        # several experiments (or revisited pairs) recomputes nothing.
        converged = cached_routing_tables(self.graph, excluded_edges=state.failed_edges)
        return ReconvergedLogic(converged, state)

    def deliver_many(
        self,
        pairs: Iterable[tuple],
        failed_links: Iterable[int] = (),
    ) -> Dict[tuple, ForwardingOutcome]:
        """Sweep fast path: walk the converged tables directly.

        Re-converged forwarding is a pure next-hop walk of the converged
        routing tables, so the generic hop-by-hop engine adds only constant
        overhead per hop.  This override produces outcomes field-for-field
        identical to the engine (same paths, same hop-order cost summation,
        same counters and drop reasons — asserted by the fast-path
        equivalence tests); :meth:`ForwardingScheme.deliver` still runs the
        real engine and remains the reference implementation.
        """
        state = NetworkState(self.graph, failed_links)  # validates the ids
        engine = self._engine
        excluded = state.failed_edges
        compiled = engine.compiled
        names = compiled.names
        index_of = compiled.index
        # One memoized SSSP tree per destination actually queried: the
        # converged next hop of ``node`` towards ``destination`` is exactly
        # the parent pointer of the Dijkstra run rooted at the destination
        # (the same trees RoutingTables builds eagerly for all destinations).
        # The walk runs in node-index space; names only materialise into the
        # outcome's path list.
        trees: Dict[str, Dict] = {}
        weight_of = compiled.edge_weight
        ttl_budget = self.default_ttl()
        delivered = DeliveryStatus.DELIVERED
        outcomes: Dict[tuple, ForwardingOutcome] = {}
        for source, destination in pairs:
            node = index_of.get(source)
            target = index_of.get(destination)
            if node is None or target is None:
                # Unknown endpoints never match a routing entry: the engine
                # delivers a source==destination packet on the spot and
                # drops anything else at the source.
                if source == destination:
                    outcome = ForwardingOutcome(
                        source=source,
                        destination=destination,
                        status=delivered,
                        path=[source],
                        cost=0.0,
                        hops=0,
                    )
                else:
                    outcome = ForwardingOutcome(
                        source=source,
                        destination=destination,
                        status=DeliveryStatus.DROPPED,
                        path=[source],
                        cost=0.0,
                        hops=0,
                        drop_reason="destination unreachable after re-convergence",
                    )
                outcomes[(source, destination)] = outcome
                continue
            parent = trees.get(destination)
            if parent is None:
                # Content-only tree: the walk does parent lookups only, so
                # the cheaper order-free repair applies.
                parent = engine.sssp_tree(destination, excluded)[1]
                trees[destination] = parent
            path = [source]
            cost = 0.0
            ttl = ttl_budget
            outcome = None
            while True:
                if node == target:
                    outcome = ForwardingOutcome(
                        source=source,
                        destination=destination,
                        status=delivered,
                        path=path,
                        cost=cost,
                        hops=len(path) - 1,
                        # Every hop's decision carries spf_computations=0 and
                        # the engine accumulates explicit zeros, so the key
                        # appears exactly when at least one hop was decided.
                        counters={"spf_computations": 0.0} if len(path) > 1 else {},
                    )
                    break
                if ttl <= 0:
                    outcome = ForwardingOutcome(
                        source=source,
                        destination=destination,
                        status=DeliveryStatus.TTL_EXCEEDED,
                        path=path,
                        cost=cost,
                        hops=len(path) - 1,
                        drop_reason="ttl expired",
                        counters={"spf_computations": 0.0} if len(path) > 1 else {},
                    )
                    break
                hop = parent.get(node)
                if hop is None:
                    outcome = ForwardingOutcome(
                        source=source,
                        destination=destination,
                        status=DeliveryStatus.DROPPED,
                        path=path,
                        cost=cost,
                        hops=len(path) - 1,
                        drop_reason="destination unreachable after re-convergence",
                        counters={"spf_computations": 0.0} if len(path) > 1 else {},
                    )
                    break
                towards, edge_id = hop
                cost += weight_of[edge_id]
                ttl -= 1
                node = towards
                path.append(names[node])
            outcomes[(source, destination)] = outcome
        return outcomes

    def header_overhead_bits(self) -> int:
        """Re-convergence needs no extra header bits."""
        return 0

    def router_memory_entries(self) -> int:
        """No extra state beyond the ordinary routing table."""
        return 0

    def online_computation_per_failure(self) -> int:
        """Every router re-runs SPF once per failure event (plus floods LSAs)."""
        return self.graph.number_of_nodes()
