"""Loop-Free Alternates (RFC 5286) — a representative single-failure IPFRR scheme.

The paper's reference [2].  Each router precomputes, per destination, an
alternate neighbor whose own shortest path to the destination does not come
back through the protecting router (the loop-free condition
``dist(N, D) < dist(N, S) + dist(S, D)``).  On failure of the primary next
hop the router deflects the packet to the alternate without marking it; if no
loop-free alternate exists the packet is dropped.  LFA therefore covers many,
but not all, single failures and very few multi-failure combinations — which
is precisely why the paper compares against FCP and re-convergence instead.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro import telemetry
from repro.baselines._outcome_memo import lookup_outcome, remember_outcome
from repro.errors import ProtocolError
from repro.forwarding.engine import DeliveryStatus, ForwardingOutcome
from repro.forwarding.network_state import NetworkState
from repro.forwarding.packets import Packet
from repro.forwarding.router import ForwardingDecision, RouterLogic
from repro.forwarding.scheme import ForwardingScheme
from repro.graph.darts import Dart
from repro.graph.multigraph import Graph
from repro.graph.spcache import engine_for
from repro.routing.tables import RoutingTables, cached_routing_tables


class LfaLogic(RouterLogic):
    """Primary next hop when it is up, precomputed loop-free alternate otherwise."""

    name = "Loop-Free Alternates"

    def __init__(
        self,
        routing: RoutingTables,
        alternates: Dict[Tuple[str, str], List[Dart]],
        state: NetworkState,
    ) -> None:
        self.routing = routing
        self.alternates = alternates
        self.state = state

    def decide(
        self,
        node: str,
        ingress: Optional[Dart],
        packet: Packet,
        state: NetworkState,
    ) -> ForwardingDecision:
        if state is not self.state:
            raise ProtocolError("router logic was built for a different network state")
        destination = packet.header.destination
        if not self.routing.has_route(node, destination):
            return ForwardingDecision.drop("no route to destination")
        primary = self.routing.egress(node, destination)
        if self.state.dart_usable(primary):
            return ForwardingDecision.forward(primary)
        for alternate in self.alternates.get((node, destination), []):
            if self.state.dart_usable(alternate):
                return ForwardingDecision.forward(alternate, lfa_activations=1)
        return ForwardingDecision.drop("no usable loop-free alternate", failures_detected=1)


class LoopFreeAlternates(ForwardingScheme):
    """LFA packaged as a forwarding scheme."""

    name = "Loop-Free Alternates"

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        self.routing = cached_routing_tables(graph)
        # Memoized on the per-process engine: the failure-free APSP is shared
        # with every other consumer of this topology (read-only).
        engine = engine_for(graph)
        self._engine = engine
        self._costs = engine.all_pairs_shortest_costs()
        self.alternates = self._compute_alternates()
        # Cross-scenario outcome memo, same shape as FCP's: pair ->
        # [(touched_mask, pattern, outcome)].  An LFA walk consults the
        # failure set only through "is this dart's edge failed?" tests on the
        # primary and tried alternates, so an outcome is valid for any
        # scenario agreeing with ``pattern`` on the touched edges.  Routes
        # and alternates are failure-free precomputations shared engine-wide.
        self._outcome_memo = engine.consumer_cache.get_or_none(("lfa-outcomes",))
        if self._outcome_memo is None:
            self._outcome_memo = {}
            engine.consumer_cache.put(("lfa-outcomes",), self._outcome_memo)

    def _compute_alternates(self) -> Dict[Tuple[str, str], List[Dart]]:
        """Per (router, destination): loop-free alternate egresses, best first."""
        alternates: Dict[Tuple[str, str], List[Dart]] = {}
        for node in self.graph.nodes():
            for destination in self.graph.nodes():
                if node == destination or not self.routing.has_route(node, destination):
                    continue
                primary = self.routing.next_hop(node, destination)
                candidates: List[Tuple[float, Dart]] = []
                for neighbor, edge_id, _weight in self.graph.iter_adjacent(node):
                    if neighbor == primary:
                        continue
                    dist_nd = self._costs[neighbor].get(destination)
                    dist_ns = self._costs[neighbor].get(node)
                    dist_sd = self._costs[node].get(destination)
                    if dist_nd is None or dist_ns is None or dist_sd is None:
                        continue
                    # RFC 5286 inequality 1: the alternate must not loop back.
                    if dist_nd < dist_ns + dist_sd:
                        candidates.append((dist_nd, self.graph.dart(edge_id, node)))
                candidates.sort(key=lambda item: (item[0], item[1].head, item[1].edge_id))
                if candidates:
                    alternates[(node, destination)] = [dart for _cost, dart in candidates]
        return alternates

    def build_logic(self, state: NetworkState) -> RouterLogic:
        return LfaLogic(self.routing, self.alternates, state)

    def deliver_many(
        self,
        pairs: Iterable[tuple],
        failed_links: Iterable[int] = (),
    ) -> Dict[tuple, ForwardingOutcome]:
        """Sweep fast path: walk primaries and precomputed alternates directly.

        Replicates :meth:`LfaLogic.decide` plus the hop-by-hop engine
        bookkeeping in one flat loop — identical paths, costs, counters and
        drop reasons (asserted by the fast-path equivalence tests) — with
        outcomes served from the touched-edge-pattern memo when a previous
        scenario already exercised the same failure pattern on this pair.
        :meth:`ForwardingScheme.deliver` still runs the real engine.
        """
        state = NetworkState(self.graph, failed_links)  # validates the ids
        failed_mask = 0
        for edge_id in state.failed_edges:
            failed_mask |= 1 << edge_id
        routing_entries = self.routing._entries
        alternates = self.alternates
        weight_of = self._engine.compiled.edge_weight
        ttl_budget = self.default_ttl()
        memo = self._outcome_memo
        memo_hits = 0
        outcomes: Dict[tuple, ForwardingOutcome] = {}
        for pair in pairs:
            entries_for_pair = memo.get(pair)
            hit = lookup_outcome(entries_for_pair, failed_mask)
            if hit is not None:
                memo_hits += 1
                outcomes[pair] = hit
                continue
            source, destination = pair
            node = source
            path = [node]
            cost = 0.0
            ttl = ttl_budget
            counters: Dict[str, float] = {}
            touched = 0
            outcome = None
            while outcome is None:
                if node == destination:
                    outcome = ForwardingOutcome(
                        source=source,
                        destination=destination,
                        status=DeliveryStatus.DELIVERED,
                        path=path,
                        cost=cost,
                        hops=len(path) - 1,
                        counters=counters,
                    )
                    break
                if ttl <= 0:
                    outcome = ForwardingOutcome(
                        source=source,
                        destination=destination,
                        status=DeliveryStatus.TTL_EXCEEDED,
                        path=path,
                        cost=cost,
                        hops=len(path) - 1,
                        drop_reason="ttl expired",
                        counters=counters,
                    )
                    break
                # --- LfaLogic.decide, inlined ---
                node_entries = routing_entries.get(node)
                entry = node_entries.get(destination) if node_entries else None
                if entry is None:
                    outcome = ForwardingOutcome(
                        source=source,
                        destination=destination,
                        status=DeliveryStatus.DROPPED,
                        path=path,
                        cost=cost,
                        hops=len(path) - 1,
                        drop_reason="no route to destination",
                        counters=counters,
                    )
                    break
                egress = entry.egress
                edge_bit = 1 << egress.edge_id
                touched |= edge_bit
                if failed_mask & edge_bit:
                    egress = None
                    for alternate in alternates.get((node, destination), ()):
                        alt_bit = 1 << alternate.edge_id
                        touched |= alt_bit
                        if not failed_mask & alt_bit:
                            egress = alternate
                            counters["lfa_activations"] = (
                                counters.get("lfa_activations", 0.0) + 1
                            )
                            break
                    if egress is None:
                        counters["failures_detected"] = (
                            counters.get("failures_detected", 0.0) + 1
                        )
                        outcome = ForwardingOutcome(
                            source=source,
                            destination=destination,
                            status=DeliveryStatus.DROPPED,
                            path=path,
                            cost=cost,
                            hops=len(path) - 1,
                            drop_reason="no usable loop-free alternate",
                            counters=counters,
                        )
                        break
                cost += weight_of[egress.edge_id]
                ttl -= 1
                node = egress.head
                path.append(node)
            outcomes[pair] = outcome
            remember_outcome(memo, pair, entries_for_pair, touched, failed_mask, outcome)
        if outcomes:
            telemetry.count("outcome_memo/hits", memo_hits)
            telemetry.count("outcome_memo/misses", len(outcomes) - memo_hits)
        return outcomes

    def header_overhead_bits(self) -> int:
        """LFA needs no header changes."""
        return 0

    def router_memory_entries(self) -> int:
        """One stored alternate per protected (router, destination) pair."""
        return len(self.alternates)

    def online_computation_per_failure(self) -> int:
        """Switching to a precomputed alternate requires no recomputation."""
        return 0
