"""Failure-Carrying Packets (Lakshminarayanan et al., SIGCOMM 2007).

FCP guarantees convergence-free delivery by making packets carry the set of
failed links they have encountered.  Every router forwards along the shortest
path computed on its link-state map *minus* the failures listed in the
header; when the chosen next hop is itself down the router appends that link
to the header and recomputes.  Delivery is guaranteed whenever the
destination remains reachable, at the cost of (a) header space proportional
to the number of carried failures and (b) an SPF computation per carried
failure combination at every hop — exactly the two overheads the paper's
Section 6 holds against FCP.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional

from repro import telemetry
from repro.baselines._outcome_memo import lookup_outcome, remember_outcome
from repro.errors import ProtocolError
from repro.forwarding.engine import DeliveryStatus, ForwardingOutcome
from repro.forwarding.headers import link_identifier_bits
from repro.forwarding.network_state import NetworkState
from repro.forwarding.packets import Packet
from repro.forwarding.router import ForwardingDecision, RouterLogic
from repro.forwarding.scheme import ForwardingScheme
from repro.graph.darts import Dart
from repro.graph.multigraph import Graph
from repro.graph.spcache import _LruDict, engine_for
from repro.routing.tables import RoutingTables, cached_routing_tables

#: Bound of the per-scheme SPF table memo: one entry per distinct
#: (router, carried failure set) the sweep's packets ever present.
_SPF_TABLE_CACHE = 16384

#: Sentinel distinguishing "destination not resolved yet" from the cached
#: ``None`` of an unreachable destination in the lazy first-hop tables.
_UNRESOLVED = object()


class FcpLogic(RouterLogic):
    """Per-router FCP forwarding behaviour."""

    name = "Failure-Carrying Packets"

    def __init__(
        self,
        graph: Graph,
        routing: RoutingTables,
        state: NetworkState,
        spf_cache: Optional[
            # (node, carried failure set) -> (parent tree, lazily filled
            # destination -> first-hop dart table); see _next_hop_given_failures.
            "_LruDict"
        ] = None,
    ) -> None:
        self.graph = graph
        self.routing = routing
        self.state = state
        self._engine = engine_for(graph)
        # Cache of SPF results keyed by (node, carried failure set) so that the
        # per-packet computational cost can be modelled without redoing work for
        # identical headers; the counter still reports one SPF per recomputation
        # a real router would perform.  The scheme passes one shared cache to
        # every logic it builds: the key already pins the failure set, so a
        # table computed under one scenario is equally valid under any other,
        # and repeated (hop, carried-set) combinations across scenarios become
        # dictionary hits instead of full Dijkstra runs.
        if spf_cache is None:
            spf_cache = _LruDict(_SPF_TABLE_CACHE)
        self._spf_cache = spf_cache

    def _next_hop_given_failures(
        self, node: str, destination: str, failures: FrozenSet[int]
    ) -> Optional[Dart]:
        """Egress dart of the shortest path on the map minus carried failures."""
        dest_idx = self._engine.compiled.index.get(destination)
        if dest_idx is None:
            return None
        return self._next_hop_indexed(node, dest_idx, failures)

    def _next_hop_indexed(
        self, node: str, dest_idx: int, failures: FrozenSet[int]
    ) -> Optional[Dart]:
        """Same as :meth:`_next_hop_given_failures`, destination pre-indexed.

        The SPF tables are kept in node-index space: the engine's repaired
        index tree is used as-is, skipping the name-keyed dict conversion a
        ``sssp()`` call would build for every distinct carried set.
        """
        cache_key = (node, failures)
        table = self._spf_cache.get_or_none(cache_key)
        if table is None:
            # One SPF per distinct (router, carried set); destinations are
            # resolved lazily below, so a carried set that only ever routes
            # towards one destination never pays for the full table.  The
            # parent tree is only chain-walked, so the content-only
            # (order-free) repaired tree applies.
            table = (self._engine.sssp_tree(node, failures)[1], {})
            self._spf_cache.put(cache_key, table)
        parent, first_hops = table
        try:
            return first_hops[dest_idx]
        except KeyError:
            pass
        node_idx = self._engine.compiled.index[node]
        if dest_idx == node_idx or dest_idx not in parent:
            egress: Optional[Dart] = None
        else:
            # Walk the parent chain up to the root's direct child; memoize
            # the first hop of every node on the chain on the way back.
            chain = []
            walk = dest_idx
            while walk not in first_hops:
                towards, edge_id = parent[walk]
                if towards == node_idx:
                    first_hops[walk] = self.graph.dart(edge_id, node)
                    break
                chain.append(walk)
                walk = towards
            egress = first_hops[walk]
            for link in chain:
                first_hops[link] = egress
        first_hops[dest_idx] = egress
        return egress

    def decide(
        self,
        node: str,
        ingress: Optional[Dart],
        packet: Packet,
        state: NetworkState,
    ) -> ForwardingDecision:
        if state is not self.state:
            raise ProtocolError("router logic was built for a different network state")
        destination = packet.header.destination
        spf_runs = 0
        failures_added = 0

        for _attempt in range(self.graph.number_of_edges() + 1):
            carried = packet.header.known_failures()
            if carried:
                egress = self._next_hop_given_failures(node, destination, carried)
                spf_runs += 1
            else:
                egress = (
                    self.routing.egress(node, destination)
                    if self.routing.has_route(node, destination)
                    else None
                )
            if egress is None:
                return ForwardingDecision.drop(
                    "destination unreachable given carried failures",
                    spf_computations=spf_runs,
                    failures_recorded=failures_added,
                )
            if self.state.dart_usable(egress):
                return ForwardingDecision.forward(
                    egress, spf_computations=spf_runs, failures_recorded=failures_added
                )
            packet.header.record_failure(egress.edge_id)
            failures_added += 1
        raise ProtocolError("FCP failed to converge on a next hop; graph state inconsistent")


class FailureCarryingPackets(ForwardingScheme):
    """FCP packaged as a forwarding scheme."""

    name = "Failure-Carrying Packets"

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        self.routing = cached_routing_tables(graph)
        engine = engine_for(graph)
        self._engine = engine
        # Shared across every FCP instance of this topology content in this
        # process: SPF tables are keyed by the carried failure set, so they
        # stay valid across scenarios, cells and campaign re-runs.
        self._spf_cache = engine.consumer_cache.get_or_none(("fcp-spf",))
        if self._spf_cache is None:
            self._spf_cache = _LruDict(_SPF_TABLE_CACHE)
            engine.consumer_cache.put(("fcp-spf",), self._spf_cache)
        # Cross-scenario outcome memo: pair -> [(touched_mask, pattern,
        # outcome)].  An FCP walk consults the failure set only through
        # "is edge e failed?" tests (the carried set, and therefore every SPF
        # recomputation, is derived from those tests), so an outcome is valid
        # for any scenario agreeing with ``pattern`` on the touched edges.
        # FCP's offline state is a pure function of the topology, so the memo
        # is shared engine-wide as well.
        self._outcome_memo = engine.consumer_cache.get_or_none(("fcp-outcomes",))
        if self._outcome_memo is None:
            self._outcome_memo = {}
            engine.consumer_cache.put(("fcp-outcomes",), self._outcome_memo)

    def build_logic(self, state: NetworkState) -> RouterLogic:
        return FcpLogic(self.graph, self.routing, state, spf_cache=self._spf_cache)

    def deliver_many(
        self,
        pairs: Iterable[tuple],
        failed_links: Iterable[int] = (),
    ) -> Dict[tuple, ForwardingOutcome]:
        """Sweep fast path: run the FCP forwarding loop without the engine.

        Replicates :meth:`FcpLogic.decide` plus the hop-by-hop engine
        bookkeeping in one flat loop — identical paths, costs, counters and
        drop reasons (asserted by the fast-path equivalence tests), with the
        per-hop SPF recomputation served from the scheme-level memo.
        :meth:`ForwardingScheme.deliver` still runs the real engine.
        """
        state = NetworkState(self.graph, failed_links)  # validates the ids
        logic = FcpLogic(self.graph, self.routing, state, spf_cache=self._spf_cache)
        next_hop_indexed = logic._next_hop_indexed
        spf_get = self._spf_cache.get_or_none
        failed_mask = 0
        for edge_id in state.failed_edges:
            failed_mask |= 1 << edge_id
        routing_entries = self.routing._entries
        index_of = self._engine.compiled.index
        weight_of = self._engine.compiled.edge_weight
        ttl_budget = self.default_ttl()
        attempts_bound = self.graph.number_of_edges() + 1
        memo = self._outcome_memo
        memo_hits = 0
        outcomes: Dict[tuple, ForwardingOutcome] = {}
        for pair in pairs:
            source, destination = pair
            entries_for_pair = memo.get(pair)
            hit = lookup_outcome(entries_for_pair, failed_mask)
            if hit is not None:
                memo_hits += 1
                outcomes[pair] = hit
                continue
            node = source
            # -1 for an unknown destination: it matches no parent entry, so
            # the walk drops exactly where the name-keyed lookup used to.
            dest_idx = index_of.get(destination, -1)
            path = [node]
            cost = 0.0
            ttl = ttl_budget
            carried: FrozenSet[int] = frozenset()
            # Accumulated in locals and materialised once per outcome: same
            # values the engine's per-decision accumulation produces (FCP
            # decisions always carry both counters — explicit zeros included
            # — so the keys appear exactly when at least one hop was decided).
            spf_total = 0.0
            failures_total = 0.0
            decided = False
            outcome = None
            touched = 0
            while outcome is None:
                if node == destination:
                    outcome = ForwardingOutcome(
                        source=source,
                        destination=destination,
                        status=DeliveryStatus.DELIVERED,
                        path=path,
                        cost=cost,
                        hops=len(path) - 1,
                        counters={
                            "spf_computations": spf_total,
                            "failures_recorded": failures_total,
                        }
                        if decided
                        else {},
                    )
                    break
                if ttl <= 0:
                    outcome = ForwardingOutcome(
                        source=source,
                        destination=destination,
                        status=DeliveryStatus.TTL_EXCEEDED,
                        path=path,
                        cost=cost,
                        hops=len(path) - 1,
                        drop_reason="ttl expired",
                        counters={
                            "spf_computations": spf_total,
                            "failures_recorded": failures_total,
                        }
                        if decided
                        else {},
                    )
                    break
                # --- FcpLogic.decide, inlined ---
                spf_runs = 0
                failures_added = 0
                egress = None
                forwarded = False
                for _attempt in range(attempts_bound):
                    if carried:
                        # Inlined hot path of _next_hop_indexed: both the SPF
                        # table and the destination's first hop are usually
                        # already memoized.
                        table = spf_get((node, carried))
                        if table is not None:
                            egress = table[1].get(dest_idx, _UNRESOLVED)
                            if egress is _UNRESOLVED:
                                egress = next_hop_indexed(node, dest_idx, carried)
                        else:
                            egress = next_hop_indexed(node, dest_idx, carried)
                        spf_runs += 1
                    else:
                        node_entries = routing_entries.get(node)
                        entry = (
                            node_entries.get(destination) if node_entries else None
                        )
                        egress = entry.egress if entry is not None else None
                    if egress is None:
                        break
                    edge_bit = 1 << egress.edge_id
                    touched |= edge_bit
                    if not failed_mask & edge_bit:
                        forwarded = True
                        break
                    # The carried set only grows on recorded failures, so the
                    # frozenset is rebuilt here rather than per SPF lookup.
                    carried = carried | {egress.edge_id}
                    failures_added += 1
                else:  # pragma: no cover - defensive, mirrors FcpLogic.decide
                    raise ProtocolError(
                        "FCP failed to converge on a next hop; graph state inconsistent"
                    )
                decided = True
                spf_total += spf_runs
                failures_total += failures_added
                if not forwarded:
                    outcome = ForwardingOutcome(
                        source=source,
                        destination=destination,
                        status=DeliveryStatus.DROPPED,
                        path=path,
                        cost=cost,
                        hops=len(path) - 1,
                        drop_reason="destination unreachable given carried failures",
                        counters={
                            "spf_computations": spf_total,
                            "failures_recorded": failures_total,
                        },
                    )
                    break
                cost += weight_of[egress.edge_id]
                ttl -= 1
                node = egress.head
                path.append(node)
            outcomes[pair] = outcome
            remember_outcome(memo, pair, entries_for_pair, touched, failed_mask, outcome)
        if outcomes:
            telemetry.count("outcome_memo/hits", memo_hits)
            telemetry.count("outcome_memo/misses", len(outcomes) - memo_hits)
        return outcomes

    def header_overhead_bits(self, carried_failures: int = 1) -> int:
        """Header bits for a packet carrying ``carried_failures`` link identifiers."""
        return carried_failures * link_identifier_bits(self.graph.number_of_edges())

    def router_memory_entries(self) -> int:
        """FCP needs the full link-state map at every router; count one entry per link."""
        return self.graph.number_of_nodes() * self.graph.number_of_edges()

    def online_computation_per_failure(self) -> int:
        """Shortest-path recomputations per newly carried failure at each hop: one."""
        return 1
