"""Failure-Carrying Packets (Lakshminarayanan et al., SIGCOMM 2007).

FCP guarantees convergence-free delivery by making packets carry the set of
failed links they have encountered.  Every router forwards along the shortest
path computed on its link-state map *minus* the failures listed in the
header; when the chosen next hop is itself down the router appends that link
to the header and recomputes.  Delivery is guaranteed whenever the
destination remains reachable, at the cost of (a) header space proportional
to the number of carried failures and (b) an SPF computation per carried
failure combination at every hop — exactly the two overheads the paper's
Section 6 holds against FCP.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.errors import ProtocolError
from repro.forwarding.headers import link_identifier_bits
from repro.forwarding.network_state import NetworkState
from repro.forwarding.packets import Packet
from repro.forwarding.router import ForwardingDecision, RouterLogic
from repro.forwarding.scheme import ForwardingScheme
from repro.graph.darts import Dart
from repro.graph.multigraph import Graph
from repro.graph.shortest_paths import dijkstra
from repro.routing.tables import RoutingTables


class FcpLogic(RouterLogic):
    """Per-router FCP forwarding behaviour."""

    name = "Failure-Carrying Packets"

    def __init__(self, graph: Graph, routing: RoutingTables, state: NetworkState) -> None:
        self.graph = graph
        self.routing = routing
        self.state = state
        # Cache of SPF results keyed by (node, carried failure set) so that the
        # per-packet computational cost can be modelled without redoing work for
        # identical headers; the counter still reports one SPF per recomputation
        # a real router would perform.
        self._spf_cache: Dict[Tuple[str, FrozenSet[int]], Dict[str, Optional[Dart]]] = {}

    def _next_hop_given_failures(
        self, node: str, destination: str, failures: FrozenSet[int]
    ) -> Optional[Dart]:
        """Egress dart of the shortest path on the map minus carried failures."""
        cache_key = (node, failures)
        table = self._spf_cache.get(cache_key)
        if table is None:
            dist, parent = dijkstra(self.graph, node, excluded_edges=failures)
            table = {}
            for target in self.graph.nodes():
                if target == node or target not in dist:
                    table[target] = None
                    continue
                walk = target
                while parent[walk][0] != node:
                    walk = parent[walk][0]
                _towards, edge_id = parent[walk]
                table[target] = self.graph.dart(edge_id, node)
            self._spf_cache[cache_key] = table
        return table.get(destination)

    def decide(
        self,
        node: str,
        ingress: Optional[Dart],
        packet: Packet,
        state: NetworkState,
    ) -> ForwardingDecision:
        if state is not self.state:
            raise ProtocolError("router logic was built for a different network state")
        destination = packet.header.destination
        spf_runs = 0
        failures_added = 0

        for _attempt in range(self.graph.number_of_edges() + 1):
            carried = packet.header.known_failures()
            if carried:
                egress = self._next_hop_given_failures(node, destination, carried)
                spf_runs += 1
            else:
                egress = (
                    self.routing.egress(node, destination)
                    if self.routing.has_route(node, destination)
                    else None
                )
            if egress is None:
                return ForwardingDecision.drop(
                    "destination unreachable given carried failures",
                    spf_computations=spf_runs,
                    failures_recorded=failures_added,
                )
            if self.state.dart_usable(egress):
                return ForwardingDecision.forward(
                    egress, spf_computations=spf_runs, failures_recorded=failures_added
                )
            packet.header.record_failure(egress.edge_id)
            failures_added += 1
        raise ProtocolError("FCP failed to converge on a next hop; graph state inconsistent")


class FailureCarryingPackets(ForwardingScheme):
    """FCP packaged as a forwarding scheme."""

    name = "Failure-Carrying Packets"

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        self.routing = RoutingTables(graph)

    def build_logic(self, state: NetworkState) -> RouterLogic:
        return FcpLogic(self.graph, self.routing, state)

    def header_overhead_bits(self, carried_failures: int = 1) -> int:
        """Header bits for a packet carrying ``carried_failures`` link identifiers."""
        return carried_failures * link_identifier_bits(self.graph.number_of_edges())

    def router_memory_entries(self) -> int:
        """FCP needs the full link-state map at every router; count one entry per link."""
        return self.graph.number_of_nodes() * self.graph.number_of_edges()

    def online_computation_per_failure(self) -> int:
        """Shortest-path recomputations per newly carried failure at each hop: one."""
        return 1
