"""Baseline schemes the paper compares Packet Re-cycling against.

Section 6 uses Failure-Carrying Packets and full routing re-convergence "as
benchmarks, since they are among the few techniques that can handle multiple
failures".  We additionally provide Loop-Free Alternates (RFC 5286, the
paper's reference [2]) as a representative single-failure IPFRR mechanism and
a no-protection baseline that simply drops packets at the failure point.
"""

from repro.baselines.fcp import FailureCarryingPackets, FcpLogic
from repro.baselines.reconvergence import Reconvergence, ReconvergedLogic
from repro.baselines.lfa import LoopFreeAlternates, LfaLogic
from repro.baselines.noprotection import NoProtection, NoProtectionLogic

__all__ = [
    "FailureCarryingPackets",
    "FcpLogic",
    "Reconvergence",
    "ReconvergedLogic",
    "LoopFreeAlternates",
    "LfaLogic",
    "NoProtection",
    "NoProtectionLogic",
]
