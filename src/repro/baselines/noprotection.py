"""No-protection baseline: packets hitting a failed link are simply lost.

This is the behaviour of plain shortest-path forwarding between the instant a
link dies and the completion of re-convergence — the quarter-of-a-million
dropped packets of the paper's introduction.  It provides the floor against
which every repair scheme's coverage is measured.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ProtocolError
from repro.forwarding.network_state import NetworkState
from repro.forwarding.packets import Packet
from repro.forwarding.router import ForwardingDecision, RouterLogic
from repro.forwarding.scheme import ForwardingScheme
from repro.graph.darts import Dart
from repro.routing.tables import RoutingTables


class NoProtectionLogic(RouterLogic):
    """Forward on stale shortest-path tables; drop at the failure point."""

    name = "No protection"

    def __init__(self, routing: RoutingTables, state: NetworkState) -> None:
        self.routing = routing
        self.state = state

    def decide(
        self,
        node: str,
        ingress: Optional[Dart],
        packet: Packet,
        state: NetworkState,
    ) -> ForwardingDecision:
        if state is not self.state:
            raise ProtocolError("router logic was built for a different network state")
        destination = packet.header.destination
        if not self.routing.has_route(node, destination):
            return ForwardingDecision.drop("no route to destination")
        egress = self.routing.egress(node, destination)
        if self.state.dart_usable(egress):
            return ForwardingDecision.forward(egress)
        return ForwardingDecision.drop("next-hop link failed", failures_detected=1)


class NoProtection(ForwardingScheme):
    """Plain shortest-path forwarding with no repair mechanism at all."""

    name = "No protection"

    def __init__(self, graph) -> None:
        super().__init__(graph)
        self.routing = RoutingTables(graph)

    def build_logic(self, state: NetworkState) -> RouterLogic:
        return NoProtectionLogic(self.routing, state)
