"""Name-keyed registry of scenario models.

Campaign specs refer to scenario models by string (``kind="model"``,
``model="srlg"``), so the models need a process-wide lookup table.  The
built-in models register themselves when :mod:`repro.scenarios` is imported;
external code can add its own with :func:`register_scenario_model` before
building a spec.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ExperimentError
from repro.scenarios.base import ScenarioModel

_REGISTRY: Dict[str, ScenarioModel] = {}


def register_scenario_model(model: ScenarioModel) -> ScenarioModel:
    """Register ``model`` under its name; duplicate names are rejected.

    The registry is per-process.  For parallel sweeps the executor's worker
    processes must be able to resolve the name too: register the model at
    import time of a module the workers import.  Under the ``fork`` start
    method (Linux) workers inherit the parent's registry automatically;
    under ``spawn`` (macOS/Windows default) a model registered only from a
    script body is invisible to workers — put the registration in an
    imported module or run with ``workers=1``.
    """
    if not model.name:
        raise ExperimentError("a scenario model needs a non-empty name")
    if model.name in _REGISTRY:
        raise ExperimentError(
            f"a scenario model named {model.name!r} is already registered"
        )
    _REGISTRY[model.name] = model
    return model


def get_scenario_model(name: str) -> ScenarioModel:
    """Look a model up by name, listing the alternatives on a miss."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scenario model {name!r}; "
            f"registered: {available_scenario_models()}"
        ) from None


def available_scenario_models() -> List[str]:
    """Registered model names, sorted."""
    return sorted(_REGISTRY)


def registered_models() -> List[ScenarioModel]:
    """The registered model objects, in name order."""
    return [_REGISTRY[name] for name in available_scenario_models()]
