"""Rolling maintenance windows: planned, overlapping link outages.

Operators upgrade a backbone by taking links down in scheduled windows, a
few at a time, sweeping across the network.  Consecutive windows overlap
whenever crews run long, so the natural model is a sliding window over a
maintenance *schedule*: the links in a seeded deterministic order, with
``window`` links down simultaneously and the window advancing by ``stride``
links per scenario.  ``stride < window`` produces the overlapping outages
that make maintenance churn interesting for a resilience scheme.  The
schedule is cyclic (windows wrap around), so every scenario fails exactly
``window`` links.
"""

from __future__ import annotations

import random
from typing import List, Mapping

from repro.errors import ExperimentError
from repro.failures.scenarios import FailureScenario
from repro.graph.multigraph import Graph
from repro.scenarios.base import ModelParam, ParamValue, ScenarioModel


class RollingMaintenance(ScenarioModel):
    """A sliding window of simultaneous outages over a seeded schedule."""

    name = "maintenance"
    summary = "rolling maintenance windows over a seeded link schedule"
    params = (
        ModelParam("window", 2, "links down simultaneously per window"),
        ModelParam("stride", 1, "links the window advances between scenarios"),
    )

    def validate_params(self, params) -> None:
        if params["window"] < 1:
            raise ExperimentError("window must be at least 1")
        if params["stride"] < 1:
            raise ExperimentError("stride must be at least 1")

    def generate(
        self,
        graph: Graph,
        *,
        seed: int,
        samples: int,
        non_disconnecting: bool,
        params: Mapping[str, ParamValue],
    ) -> List[FailureScenario]:
        window = int(params["window"])
        if window > graph.number_of_edges():
            # Clamping would store records (and cache cells) whose params
            # claim a regime the generator never measured.
            raise ExperimentError(
                f"maintenance window of {window} links exceeds the "
                f"{graph.number_of_edges()} links of {graph.name!r}"
            )
        stride = int(params["stride"])
        rng = random.Random(seed)
        schedule = graph.edge_ids()
        rng.shuffle(schedule)
        scenarios: List[FailureScenario] = []
        seen = set()
        start = 0
        # The schedule is cyclic: windows near the end wrap around to the
        # front, so every window has exactly ``window`` links down (a window
        # that silently shrank would measure a milder regime than the spec
        # and its cell ids claim).
        while start < len(schedule):
            group = tuple(
                schedule[(start + offset) % len(schedule)]
                for offset in range(window)
            )
            position = start
            start += stride
            canonical = tuple(sorted(group))
            if canonical in seen:
                continue
            seen.add(canonical)
            scenario = FailureScenario(
                group,
                kind="maintenance",
                description=f"maintenance window at slot {position}",
            )
            if non_disconnecting and not scenario.keeps_connected(graph):
                continue
            scenarios.append(scenario)
            if len(scenarios) >= samples:
                break
        return scenarios
