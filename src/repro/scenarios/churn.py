"""Churn traces: per-link up/down processes snapshotted into failure sets.

The flapping module (:mod:`repro.failures.flapping`) models a single link
with exponential sojourn times.  Real links burst: outages cluster in time
(Gilbert–Elliott's two-state Markov chain) and repair times are heavy-tailed
(Weibull fits of measured time-between-failure data).  This module provides
both processes as :class:`~repro.failures.flapping.FlapEvent` timeline
generators — reused by the Section 7 flapping experiment via
``flapping_experiment(process=...)`` — and a scenario model that runs one
independent process per link and snapshots the network at evenly spaced
times: every link down at a snapshot instant fails together, which is how
temporal correlation becomes the *spatially* correlated failure sets the
campaign runner consumes.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Mapping, Tuple

from repro.errors import ExperimentError
from repro.failures.flapping import FlapEvent
from repro.failures.scenarios import FailureScenario
from repro.graph.multigraph import Graph
from repro.scenarios.base import ModelParam, ParamValue, ScenarioModel

#: Churn processes accepted by :func:`churn_events` (and, with the addition
#: of ``"exponential"``, by ``flapping_experiment``).
CHURN_PROCESSES = ("gilbert-elliott", "weibull")


def _require_positive_finite(**values: float) -> None:
    """Every value must be a positive finite number (nan/inf would make the
    simulation time loops run forever)."""
    for name, value in values.items():
        if not (math.isfinite(value) and value > 0):
            raise ExperimentError(f"{name} must be positive and finite, got {value!r}")


def gilbert_elliott_events(
    rng: random.Random,
    horizon: float,
    mean_up: float,
    mean_down: float,
    step: float = 1.0,
    initially_up: bool = True,
) -> List[FlapEvent]:
    """Two-state discrete-time Markov chain sampled every ``step`` seconds.

    Transition probabilities are chosen so the expected sojourn times match
    ``mean_up`` / ``mean_down``: ``P(up -> down) = step / mean_up`` per step
    (clamped to 1), and symmetrically for repair.
    """
    _require_positive_finite(horizon=horizon, step=step, mean_up=mean_up,
                             mean_down=mean_down)
    p_fail = min(1.0, step / mean_up)
    p_repair = min(1.0, step / mean_down)
    events: List[FlapEvent] = []
    up = initially_up
    time = step
    while time < horizon:
        flip = rng.random() < (p_fail if up else p_repair)
        if flip:
            up = not up
            events.append(FlapEvent(time=time, up=up))
        time += step
    return events


def weibull_events(
    rng: random.Random,
    horizon: float,
    mean_up: float,
    mean_down: float,
    shape: float = 1.5,
    initially_up: bool = True,
) -> List[FlapEvent]:
    """Alternating renewal process with Weibull-distributed sojourn times.

    The scale of each Weibull is set so its mean matches ``mean_up`` /
    ``mean_down`` (mean of Weibull(scale, shape) is ``scale * Γ(1 + 1/shape)``).
    ``shape < 1`` gives heavy-tailed outages, ``shape > 1`` wear-out-like
    clustering around the mean.
    """
    _require_positive_finite(horizon=horizon, mean_up=mean_up,
                             mean_down=mean_down, shape=shape)
    gamma = math.gamma(1.0 + 1.0 / shape)
    scale_up = mean_up / gamma
    scale_down = mean_down / gamma
    events: List[FlapEvent] = []
    up = initially_up
    time = 0.0
    while True:
        scale = scale_up if up else scale_down
        time += rng.weibullvariate(scale, shape)
        if time >= horizon:
            break
        up = not up
        events.append(FlapEvent(time=time, up=up))
    return events


def churn_events(
    process: str,
    *,
    rng: random.Random,
    horizon: float,
    mean_up: float,
    mean_down: float,
    shape: float = 1.5,
    step: float = 1.0,
    initially_up: bool = True,
) -> List[FlapEvent]:
    """Dispatch to one of the churn processes by name."""
    if process == "gilbert-elliott":
        return gilbert_elliott_events(
            rng, horizon, mean_up, mean_down, step=step, initially_up=initially_up
        )
    if process == "weibull":
        return weibull_events(
            rng, horizon, mean_up, mean_down, shape=shape, initially_up=initially_up
        )
    raise ExperimentError(
        f"unknown churn process {process!r}; expected one of {CHURN_PROCESSES}"
    )


def churn_traces(
    graph: Graph,
    *,
    seed: int,
    process: str,
    horizon: float,
    mean_up: float,
    mean_down: float,
    shape: float = 1.5,
    step: float = 1.0,
) -> Dict[int, List[FlapEvent]]:
    """One independent churn timeline per link, deterministic in ``seed``.

    Each link's sub-seed is derived from ``(seed, edge_id)`` so the trace of
    one link does not depend on how many links precede it.
    """
    traces: Dict[int, List[FlapEvent]] = {}
    for edge_id in graph.edge_ids():
        rng = random.Random((seed << 20) ^ edge_id)
        traces[edge_id] = churn_events(
            process,
            rng=rng,
            horizon=horizon,
            mean_up=mean_up,
            mean_down=mean_down,
            shape=shape,
            step=step,
        )
    return traces


def down_links_at(traces: Mapping[int, List[FlapEvent]], time: float) -> Tuple[int, ...]:
    """The links that are down at ``time`` (links start up at time 0)."""
    down: List[int] = []
    for edge_id, events in traces.items():
        up = True
        for event in events:
            if event.time > time:
                break
            up = event.up
        if not up:
            down.append(edge_id)
    return tuple(sorted(down))


class ChurnSnapshots(ScenarioModel):
    """Snapshots of a per-link churn process as simultaneous failure sets."""

    name = "churn"
    summary = "Gilbert-Elliott/Weibull per-link churn sampled at snapshot times"
    params = (
        ModelParam("process", "gilbert-elliott", "'gilbert-elliott' or 'weibull'"),
        ModelParam("horizon", 200.0, "simulated seconds of churn"),
        ModelParam("mean_up", 50.0, "mean link up time (seconds)"),
        ModelParam("mean_down", 5.0, "mean link down time (seconds)"),
        ModelParam("shape", 1.5, "Weibull shape (ignored by gilbert-elliott)"),
        ModelParam("step", 1.0, "Gilbert-Elliott step (ignored by weibull)"),
    )

    def validate_params(self, params) -> None:
        if params["process"] not in CHURN_PROCESSES:
            raise ExperimentError(
                f"unknown churn process {params['process']!r}; "
                f"expected one of {CHURN_PROCESSES}"
            )
        for name in ("horizon", "mean_up", "mean_down", "shape", "step"):
            if params[name] <= 0:
                raise ExperimentError(f"{name} must be positive")

    def generate(
        self,
        graph: Graph,
        *,
        seed: int,
        samples: int,
        non_disconnecting: bool,
        params: Mapping[str, ParamValue],
    ) -> List[FailureScenario]:
        horizon = float(params["horizon"])
        traces = churn_traces(
            graph,
            seed=seed,
            process=str(params["process"]),
            horizon=horizon,
            mean_up=float(params["mean_up"]),
            mean_down=float(params["mean_down"]),
            shape=float(params["shape"]),
            step=float(params["step"]),
        )
        scenarios: List[FailureScenario] = []
        seen = set()
        # Evenly spaced snapshot instants strictly inside (0, horizon); an
        # empty snapshot (nothing down) carries no failure and is skipped, as
        # are repeats of an already-captured failure set.
        for index in range(samples):
            time = horizon * (index + 1) / (samples + 1)
            down = down_links_at(traces, time)
            if not down or down in seen:
                continue
            seen.add(down)
            scenario = FailureScenario(
                down,
                kind="churn",
                description=f"{params['process']} snapshot at t={time:.1f}s",
            )
            if non_disconnecting and not scenario.keeps_connected(graph):
                continue
            scenarios.append(scenario)
        return scenarios
