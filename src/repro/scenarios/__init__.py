"""Pluggable failure-scenario models for the campaign runner.

The paper evaluates resilient forwarding under independent failures: every
single link, sampled k-subsets, every node.  Real outages are correlated —
links share conduits, regions lose power, maintenance sweeps the backbone,
links flap in bursts.  This package turns "failure scenario generator" into
an extension point: a :class:`~repro.scenarios.base.ScenarioModel` is a
named, deterministic, parameterised generator of
:class:`~repro.failures.scenarios.FailureScenario` lists, and a campaign
selects one with ``ScenarioSpec(kind="model", model="srlg", ...)``.

Built-in models (see ``python -m repro scenarios list``):

============  ==========================================================
``srlg``      shared-risk link groups — conduit-sharing links fail together
``regional``  a BFS hop-ball around a sampled epicenter goes dark
``weighted``  failure probability proportional to betweenness or length
``maintenance``  rolling maintenance windows over a seeded link schedule
``churn``     Gilbert-Elliott/Weibull per-link churn, snapshotted in time
============  ==========================================================

Registering a custom model::

    from repro.scenarios import ScenarioModel, register_scenario_model

    class MeteorStrike(ScenarioModel):
        name = "meteor"
        summary = "a very local problem"
        def generate(self, graph, *, seed, samples, non_disconnecting, params):
            ...

    register_scenario_model(MeteorStrike())

(Register at import time of a module the executor's worker processes also
import — see :func:`~repro.scenarios.registry.register_scenario_model` for
the ``fork`` vs ``spawn`` caveat on parallel sweeps.)
"""

from repro.scenarios.base import ModelParam, ParamValue, ScenarioModel
from repro.scenarios.registry import (
    available_scenario_models,
    get_scenario_model,
    register_scenario_model,
    registered_models,
)
from repro.scenarios.srlg import SharedRiskGroups
from repro.scenarios.regional import RegionalFailures, hop_ball
from repro.scenarios.weighted import WeightedLinkFailures, edge_betweenness
from repro.scenarios.maintenance import RollingMaintenance
from repro.scenarios.churn import (
    CHURN_PROCESSES,
    ChurnSnapshots,
    churn_events,
    churn_traces,
    down_links_at,
    gilbert_elliott_events,
    weibull_events,
)

#: The built-in models, registered on import so that specs referring to them
#: by name resolve in every process (including executor workers).
register_scenario_model(SharedRiskGroups())
register_scenario_model(RegionalFailures())
register_scenario_model(WeightedLinkFailures())
register_scenario_model(RollingMaintenance())
register_scenario_model(ChurnSnapshots())

__all__ = [
    "CHURN_PROCESSES",
    "ChurnSnapshots",
    "ModelParam",
    "ParamValue",
    "RegionalFailures",
    "RollingMaintenance",
    "ScenarioModel",
    "SharedRiskGroups",
    "WeightedLinkFailures",
    "available_scenario_models",
    "churn_events",
    "churn_traces",
    "down_links_at",
    "edge_betweenness",
    "get_scenario_model",
    "gilbert_elliott_events",
    "hop_ball",
    "register_scenario_model",
    "registered_models",
    "weibull_events",
]
