"""The scenario-model contract: seeded, parameterised scenario generators.

A *scenario model* turns a topology into a list of
:class:`~repro.failures.scenarios.FailureScenario` objects.  Unlike the three
built-in generators (every single link, sampled k-subsets, every node), a
model captures a *correlated* failure process — shared conduits, regional
events, maintenance churn — behind a uniform interface:

* models are **named** and live in a registry
  (:mod:`repro.scenarios.registry`), so a campaign spec can refer to one by
  string and round-trip through JSON;
* models are **deterministic in their seed**: the same ``(graph, seed,
  samples, params)`` always yields the identical scenario list, which is what
  lets the campaign runner guarantee serial == parallel == resumed results;
* model **parameters are declared**, not free-form: unknown parameter names
  and uncoercible values are rejected with an
  :class:`~repro.errors.ExperimentError` at spec-construction time, so a
  stale campaign JSON fails loudly instead of silently generating the wrong
  scenarios.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple, Union

from repro.errors import ExperimentError
from repro.failures.scenarios import FailureScenario
from repro.graph.multigraph import Graph

#: Parameter values are JSON scalars so that specs round-trip losslessly.
ParamValue = Union[int, float, str, bool]


@dataclass(frozen=True)
class ModelParam:
    """One declared parameter of a scenario model.

    The default's type doubles as the parameter's type: overrides are coerced
    to it (``int`` accepts integral floats and digit strings, ``float``
    accepts ints, ``bool`` accepts ``"true"``/``"false"`` strings) and
    anything that does not coerce is rejected.
    """

    name: str
    default: ParamValue
    doc: str

    def coerce(self, value: object) -> ParamValue:
        """Coerce ``value`` to this parameter's type or raise ``ExperimentError``."""
        kind = type(self.default)
        try:
            if kind is bool:
                if isinstance(value, bool):
                    return value
                if isinstance(value, str) and value.lower() in ("true", "false"):
                    return value.lower() == "true"
                raise ValueError(value)
            if kind is int:
                if isinstance(value, bool):
                    raise ValueError(value)
                coerced = int(str(value)) if isinstance(value, str) else int(value)
                if isinstance(value, float) and value != coerced:
                    raise ValueError(value)
                return coerced
            if kind is float:
                if isinstance(value, bool):
                    raise ValueError(value)
                coerced = float(value)
                # nan/inf satisfy no ordering constraint and would send the
                # generators' time loops spinning forever.
                if not math.isfinite(coerced):
                    raise ValueError(value)
                return coerced
            return str(value)
        except (TypeError, ValueError, OverflowError):
            raise ExperimentError(
                f"parameter {self.name!r} expects a {kind.__name__}, "
                f"got {value!r}"
            ) from None


class ScenarioModel(ABC):
    """Base class for pluggable failure-scenario models.

    Subclasses set :attr:`name` (the registry key), :attr:`summary` (one
    line for ``repro scenarios list``) and :attr:`params` (declared
    parameters), and implement :meth:`generate`.
    """

    name: str = ""
    summary: str = ""
    params: Tuple[ModelParam, ...] = ()

    def param(self, name: str) -> ModelParam:
        for param in self.params:
            if param.name == name:
                return param
        raise ExperimentError(f"model {self.name!r} has no parameter {name!r}")

    def default_params(self) -> Dict[str, ParamValue]:
        """The fully-resolved defaults, in declaration order."""
        return {param.name: param.default for param in self.params}

    def resolve_params(self, overrides: Mapping[str, object]) -> Dict[str, ParamValue]:
        """Merge ``overrides`` into the defaults, rejecting unknown names.

        The result always contains every declared parameter, so two specs
        that differ only in whether a default was spelled out explicitly
        resolve to the same canonical parameter set (and the same cell ids).
        """
        known = {param.name for param in self.params}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise ExperimentError(
                f"unknown parameters {unknown!r} for scenario model "
                f"{self.name!r}; declared: {sorted(known)}"
            )
        resolved = self.default_params()
        for name, value in overrides.items():
            resolved[name] = self.param(name).coerce(value)
        self.validate_params(resolved)
        return resolved

    def validate_params(self, params: Dict[str, ParamValue]) -> None:
        """Hook for cross-parameter constraints; raise ``ExperimentError``."""

    @abstractmethod
    def generate(
        self,
        graph: Graph,
        *,
        seed: int,
        samples: int,
        non_disconnecting: bool,
        params: Mapping[str, ParamValue],
    ) -> List[FailureScenario]:
        """Generate the scenario list for ``graph``.

        ``params`` is always fully resolved (every declared parameter
        present).  Implementations must be deterministic in ``seed`` and must
        not mutate ``graph``.  ``non_disconnecting`` asks the model to skip
        scenarios that disconnect the surviving part of the network; models
        for which that filter is meaningless may document and ignore it.
        """
