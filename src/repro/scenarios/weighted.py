"""Weighted link failures: heavily-used or long links fail more often.

Field studies consistently find that failure probability is not uniform
across links — long-haul spans see more fibre cuts and links carrying more
shortest paths are the ones whose failures matter.  Each scenario of this
model fails ``failures`` links drawn *without replacement* with probability
proportional to a per-link weight:

* ``by="betweenness"`` — the number of shortest paths (over all ordered
  node pairs, deterministic tie-breaking) that traverse the link;
* ``by="length"`` — the link's routing cost, a proxy for physical span
  length on the ISP topologies.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping

from repro.errors import ExperimentError
from repro.failures.scenarios import FailureScenario
from repro.graph.multigraph import Graph
from repro.graph.shortest_paths import dijkstra
from repro.scenarios.base import ModelParam, ParamValue, ScenarioModel

_WEIGHT_MODES = ("betweenness", "length")


def edge_betweenness(graph: Graph) -> Dict[int, int]:
    """How many shortest paths (over ordered pairs) traverse each edge.

    Uses the same deterministic tie-breaking as the routing tables, so the
    counts — and everything sampled from them — are reproducible.
    """
    counts: Dict[int, int] = {edge_id: 0 for edge_id in graph.edge_ids()}
    for source in graph.nodes():
        _dist, parent = dijkstra(graph, source)
        for destination in graph.nodes():
            node = destination
            while node != source and node in parent:
                node, edge_id = parent[node]
                counts[edge_id] += 1
    return counts


def _weighted_sample(
    rng: random.Random, weights: Dict[int, float], count: int
) -> List[int]:
    """Draw ``count`` distinct keys with probability proportional to weight."""
    remaining = dict(weights)
    chosen: List[int] = []
    for _ in range(count):
        total = sum(remaining.values())
        if total <= 0:
            break
        pick = rng.random() * total
        cumulative = 0.0
        # Iterate in key order so the draw is independent of dict history.
        for edge_id in sorted(remaining):
            cumulative += remaining[edge_id]
            if pick < cumulative:
                chosen.append(edge_id)
                del remaining[edge_id]
                break
        else:  # pragma: no cover - float round-off fallback
            edge_id = max(sorted(remaining))
            chosen.append(edge_id)
            del remaining[edge_id]
    return chosen


class WeightedLinkFailures(ScenarioModel):
    """Sampled failure sets biased towards important or long links."""

    name = "weighted"
    summary = "link failure probability proportional to betweenness or length"
    params = (
        ModelParam("failures", 1, "simultaneous link failures per scenario"),
        ModelParam("by", "betweenness", "weighting: 'betweenness' or 'length'"),
        ModelParam("attempts", 200, "rejection-sampling budget per scenario"),
    )

    def validate_params(self, params) -> None:
        if params["failures"] < 1:
            raise ExperimentError("failures must be at least 1")
        if params["by"] not in _WEIGHT_MODES:
            raise ExperimentError(
                f"unknown weighting {params['by']!r}; expected one of {_WEIGHT_MODES}"
            )
        if params["attempts"] < 1:
            raise ExperimentError("attempts must be at least 1")

    def generate(
        self,
        graph: Graph,
        *,
        seed: int,
        samples: int,
        non_disconnecting: bool,
        params: Mapping[str, ParamValue],
    ) -> List[FailureScenario]:
        failures = int(params["failures"])
        if failures > graph.number_of_edges():
            raise ExperimentError(
                f"cannot fail {failures} links in a topology with "
                f"{graph.number_of_edges()} links"
            )
        if params["by"] == "betweenness":
            weights = {k: float(v) for k, v in edge_betweenness(graph).items()}
        else:
            weights = {edge.edge_id: edge.weight for edge in graph.edges()}
        # Zero-weight links can never be drawn; with too few drawable links
        # the sampler would silently emit scenarios milder than the spec
        # (and its cell ids) claim, so fail loudly instead.
        drawable = sum(1 for weight in weights.values() if weight > 0)
        if failures > drawable:
            raise ExperimentError(
                f"cannot fail {failures} links: only {drawable} links have "
                f"positive {params['by']} weight on {graph.name!r}"
            )
        rng = random.Random(seed)
        scenarios: List[FailureScenario] = []
        seen = set()
        budget = samples * int(params["attempts"])
        while len(scenarios) < samples and budget > 0:
            budget -= 1
            combination = tuple(sorted(_weighted_sample(rng, weights, failures)))
            if combination in seen:
                continue
            scenario = FailureScenario(
                combination, kind="weighted", description=f"weighted by {params['by']}"
            )
            if non_disconnecting and not scenario.keeps_connected(graph):
                seen.add(combination)
                continue
            seen.add(combination)
            scenarios.append(scenario)
        return scenarios
