"""Shared-risk link groups: links sharing a conduit fail together.

Backbone links are not independent: several logical links routinely ride the
same fibre conduit, duct or landing station, and a single backhoe takes all
of them down at once.  ISP SRLG databases are proprietary, so this model
*synthesises* a plausible grouping: links are shuffled deterministically and
partitioned into groups of ``group_size`` (the last group keeps the
remainder), and each scenario is the simultaneous failure of one whole
group.  The grouping — and therefore the scenario list — is a pure function
of the seed.
"""

from __future__ import annotations

import random
from typing import List, Mapping

from repro.failures.scenarios import FailureScenario
from repro.graph.multigraph import Graph
from repro.scenarios.base import ModelParam, ParamValue, ScenarioModel
from repro.errors import ExperimentError


class SharedRiskGroups(ScenarioModel):
    """One scenario per synthetic shared-risk group of ``group_size`` links."""

    name = "srlg"
    summary = "conduit-sharing link groups fail together"
    params = (
        ModelParam("group_size", 3, "links per shared-risk group"),
    )

    def validate_params(self, params) -> None:
        if params["group_size"] < 1:
            raise ExperimentError("group_size must be at least 1")

    def generate(
        self,
        graph: Graph,
        *,
        seed: int,
        samples: int,
        non_disconnecting: bool,
        params: Mapping[str, ParamValue],
    ) -> List[FailureScenario]:
        group_size = int(params["group_size"])
        rng = random.Random(seed)
        edge_ids = graph.edge_ids()
        rng.shuffle(edge_ids)
        scenarios: List[FailureScenario] = []
        for start in range(0, len(edge_ids), group_size):
            group = tuple(edge_ids[start : start + group_size])
            scenario = FailureScenario(
                group, kind="srlg", description=f"risk group {start // group_size}"
            )
            if non_disconnecting and not scenario.keeps_connected(graph):
                continue
            scenarios.append(scenario)
            if len(scenarios) >= samples:
                break
        return scenarios
