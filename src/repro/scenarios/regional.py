"""Geographically-correlated regional failures: a BFS ball goes dark.

Earthquakes, floods and grid outages take out every router in an area, not
one link.  Without PoP coordinates the best proxy for "an area" is hop
distance: the model samples an epicenter node and fails every link incident
to a node within ``radius - 1`` hops of it (so ``radius=1`` fails the same
link set as a single-node failure, ``radius=2`` additionally takes the
epicenter's neighbours down, and so on).

Nodes inside the region are isolated by construction, so plain connectivity
of the survivor graph would reject every scenario; instead, as in
``node_failure_scenarios(only_non_disconnecting=True)``,
``non_disconnecting`` is interpreted as "at least two routers must survive,
mutually connected".  Note the asymmetry with the built-in ``kind="node"``
campaign scenarios, which enumerate *every* node (cut vertices included, as
in the paper's node-failure experiment): under the campaign default
``non_disconnecting=True`` this model drops regions whose loss splits the
survivors, so ``regional`` with ``radius=1`` is a *filtered* subset of the
node kind, not an identical regime.  Traffic sourced at or destined to a
dead region is excluded by the experiment's per-pair component check,
exactly as for node failures.
"""

from __future__ import annotations

import random
from typing import List, Mapping, Set

from repro.errors import ExperimentError
from repro.failures.scenarios import FailureScenario
from repro.graph.connectivity import is_connected
from repro.graph.multigraph import Graph
from repro.scenarios.base import ModelParam, ParamValue, ScenarioModel


def hop_ball(graph: Graph, center: str, radius: int) -> Set[str]:
    """Nodes within ``radius`` hops of ``center`` (BFS, failure-free graph)."""
    frontier = [center]
    ball = {center}
    for _ in range(radius):
        next_frontier: List[str] = []
        for node in frontier:
            for neighbor in graph.neighbors(node):
                if neighbor not in ball:
                    ball.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return ball


class RegionalFailures(ScenarioModel):
    """Sampled epicenters; every link touching the hop ball fails."""

    name = "regional"
    summary = "all links within a hop ball of a sampled epicenter fail"
    params = (
        ModelParam("radius", 1, "hop radius of the dead region (1 = one node)"),
    )

    def validate_params(self, params) -> None:
        if params["radius"] < 1:
            raise ExperimentError("radius must be at least 1")

    def generate(
        self,
        graph: Graph,
        *,
        seed: int,
        samples: int,
        non_disconnecting: bool,
        params: Mapping[str, ParamValue],
    ) -> List[FailureScenario]:
        radius = int(params["radius"])
        rng = random.Random(seed)
        nodes = graph.nodes()
        # Epicenters are sampled without replacement; once every node has
        # served as an epicenter there are no new regions to draw.
        order = list(nodes)
        rng.shuffle(order)
        scenarios: List[FailureScenario] = []
        seen = set()
        for epicenter in order:
            region = hop_ball(graph, epicenter, radius - 1)
            failed = sorted(
                {
                    edge_id
                    for node in region
                    for edge_id in graph.incident_edge_ids(node)
                }
            )
            # Distinct epicenters can resolve to the same failed-link set
            # (overlapping balls); measuring it twice would overweight it.
            if not failed or tuple(failed) in seen:
                continue
            seen.add(tuple(failed))
            if non_disconnecting:
                survivors = graph.without_edges(failed)
                for node in region:
                    survivors.remove_node(node)
                # Fewer than two survivors means no network is left to carry
                # traffic — a total outage, the strongest possible
                # disconnection, not a vacuously "connected" remainder.
                if survivors.number_of_nodes() < 2 or not is_connected(survivors):
                    continue
            scenarios.append(
                FailureScenario(
                    tuple(failed),
                    kind="regional",
                    description=f"region around {epicenter} (radius {radius})",
                )
            )
            if len(scenarios) >= samples:
                break
        return scenarios
