"""Time-aware forwarding behaviours for the discrete-event simulator.

The path-tracing engine of :mod:`repro.forwarding` answers "where does this
packet go given this failure set"; the simulator additionally needs to know
*when* each router starts behaving differently.  A
:class:`TimeAwareForwarder` therefore takes the current simulation time into
account:

* :class:`StaticForwarder` — routers forward on fixed (stale) tables forever;
  packets meeting a failed link are lost.  This is the no-protection floor.
* :class:`ConvergenceAwareForwarder` — each router switches from the stale to
  the re-converged table at its own convergence instant (from
  :class:`~repro.routing.reconvergence.ReconvergenceModel`).
* :class:`ProtectionForwarder` — wraps any :class:`ForwardingScheme` logic
  (e.g. Packet Re-cycling), which reacts to the failure immediately.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.forwarding.network_state import NetworkState
from repro.forwarding.packets import Packet
from repro.forwarding.router import Action, RouterLogic
from repro.forwarding.scheme import ForwardingScheme
from repro.graph.darts import Dart
from repro.graph.multigraph import Graph
from repro.routing.tables import RoutingTables


class TimeAwareForwarder:
    """Interface the simulator drives: one decision per (time, node, packet)."""

    name = "abstract"

    def egress_for(
        self,
        time: float,
        node: str,
        ingress: Optional[Dart],
        packet: Packet,
    ) -> Optional[Dart]:
        """The dart to forward over, or ``None`` to drop the packet."""
        raise NotImplementedError


class StaticForwarder(TimeAwareForwarder):
    """Stale shortest-path tables; drops at failed links. No protection at all."""

    name = "no-protection"

    def __init__(self, graph: Graph, state: NetworkState, tables: Optional[RoutingTables] = None) -> None:
        self.graph = graph
        self.state = state
        self.tables = tables if tables is not None else RoutingTables(graph)

    def egress_for(
        self,
        time: float,
        node: str,
        ingress: Optional[Dart],
        packet: Packet,
    ) -> Optional[Dart]:
        if not self.tables.has_route(node, packet.destination):
            return None
        egress = self.tables.egress(node, packet.destination)
        if not self.state.dart_usable(egress):
            return None
        return egress


class ConvergenceAwareForwarder(TimeAwareForwarder):
    """Each router flips from stale to converged tables at its own instant."""

    name = "re-convergence"

    def __init__(
        self,
        graph: Graph,
        state: NetworkState,
        updated_at: Dict[str, float],
        stale_tables: Optional[RoutingTables] = None,
    ) -> None:
        self.graph = graph
        self.state = state
        self.updated_at = dict(updated_at)
        self.stale_tables = stale_tables if stale_tables is not None else RoutingTables(graph)
        self.converged_tables = RoutingTables(graph, excluded_edges=state.failed_edges)

    def egress_for(
        self,
        time: float,
        node: str,
        ingress: Optional[Dart],
        packet: Packet,
    ) -> Optional[Dart]:
        converged = time >= self.updated_at.get(node, 0.0)
        tables = self.converged_tables if converged else self.stale_tables
        if not tables.has_route(node, packet.destination):
            return None
        egress = tables.egress(node, packet.destination)
        if not self.state.dart_usable(egress):
            # Before convergence the stale route may point at the dead link;
            # the packet is black-holed, which is precisely the loss the
            # experiment measures.
            return None
        return egress


class ProtectionForwarder(TimeAwareForwarder):
    """Adapter running any :class:`ForwardingScheme` logic inside the simulator.

    Fast-reroute schemes such as PR act on local failure detection, so the
    reaction is effectively immediate at simulation time scales (tens of
    milliseconds of detection delay can be modelled by ``active_from``).
    """

    def __init__(self, scheme: ForwardingScheme, state: NetworkState, active_from: float = 0.0) -> None:
        self.scheme = scheme
        self.name = scheme.name
        self.state = state
        self.active_from = active_from
        self._protected_logic: RouterLogic = scheme.build_logic(state)
        self._unprotected_state = NetworkState(scheme.graph, ())
        self._unprotected_logic: RouterLogic = scheme.build_logic(self._unprotected_state)

    def egress_for(
        self,
        time: float,
        node: str,
        ingress: Optional[Dart],
        packet: Packet,
    ) -> Optional[Dart]:
        if time >= self.active_from:
            logic, state = self._protected_logic, self.state
        else:
            logic, state = self._unprotected_logic, self._unprotected_state
        decision = logic.decide(node, ingress, packet, state)
        if decision.action is Action.FORWARD and self.state.dart_usable(decision.egress):
            return decision.egress
        if decision.action is Action.FORWARD:
            # The logic decided on a link that is physically down right now
            # (possible only in the pre-detection window); the packet is lost.
            return None
        return None
