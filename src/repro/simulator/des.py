"""The packet-level discrete-event simulator.

The simulator moves individual packets hop by hop through the topology with
serialisation and propagation delays, FIFO per-link queueing, constant-rate
flows, and a forwarding behaviour that may change over time (stale tables →
converged tables, or an always-on fast-reroute scheme).  It exists to answer
the question posed by the paper's introduction quantitatively: *how many
packets does one link failure cost under re-convergence, and how many under
PR?*
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.forwarding.network_state import NetworkState
from repro.forwarding.packets import Packet
from repro.graph.darts import Dart
from repro.graph.multigraph import Graph
from repro.simulator.events import EventQueue
from repro.simulator.flows import TrafficFlow
from repro.simulator.forwarders import TimeAwareForwarder
from repro.simulator.links import LinkModel


@dataclass
class SimulationReport:
    """Aggregate statistics of one simulation run."""

    forwarder: str
    packets_sent: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    packets_in_flight: int = 0
    total_latency: float = 0.0
    total_hops: int = 0
    drop_times: List[float] = field(default_factory=list)
    events_processed: int = 0

    @property
    def loss_fraction(self) -> float:
        """Fraction of sent packets that were dropped."""
        if self.packets_sent == 0:
            return 0.0
        return self.packets_dropped / self.packets_sent

    @property
    def mean_latency(self) -> float:
        """Mean end-to-end latency of delivered packets (seconds)."""
        if self.packets_delivered == 0:
            return 0.0
        return self.total_latency / self.packets_delivered

    @property
    def mean_hops(self) -> float:
        """Mean hop count of delivered packets."""
        if self.packets_delivered == 0:
            return 0.0
        return self.total_hops / self.packets_delivered

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.forwarder}: sent={self.packets_sent} delivered={self.packets_delivered} "
            f"dropped={self.packets_dropped} ({100.0 * self.loss_fraction:.2f}% loss), "
            f"mean latency={1000.0 * self.mean_latency:.2f} ms"
        )


class PacketLevelSimulator:
    """Discrete-event simulation of flows over a (possibly failing) topology."""

    def __init__(
        self,
        graph: Graph,
        forwarder: TimeAwareForwarder,
        link_model: Optional[LinkModel] = None,
        max_hops: int = 1024,
    ) -> None:
        self.graph = graph
        self.forwarder = forwarder
        self.link_model = link_model if link_model is not None else LinkModel()
        self.max_hops = max_hops
        self.queue = EventQueue()
        self.report = SimulationReport(forwarder=forwarder.name)
        # Per-dart next-free time models FIFO serialisation on each interface.
        self._interface_free_at: Dict[Dart, float] = {}
        self._hops_taken: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # workload setup
    # ------------------------------------------------------------------
    def add_flow(self, flow: TrafficFlow) -> None:
        """Schedule every packet emission of ``flow``."""
        if not self.graph.has_node(flow.source) or not self.graph.has_node(flow.destination):
            raise SimulationError("flow endpoints must exist in the topology")
        emission = flow.start
        index = 0
        while emission < flow.end:
            self._schedule_emission(flow, emission)
            index += 1
            emission = flow.start + index * flow.interval

    def _schedule_emission(self, flow: TrafficFlow, time: float) -> None:
        def emit() -> None:
            packet = Packet(
                flow.source,
                flow.destination,
                size_bytes=flow.packet_size_bytes,
                created_at=self.queue.now,
            )
            self.report.packets_sent += 1
            self.report.packets_in_flight += 1
            self._hops_taken[packet.packet_id] = 0
            self._arrive(packet, flow.source, None)

        self.queue.schedule(time, emit, label=f"emit {flow.source}->{flow.destination}")

    # ------------------------------------------------------------------
    # packet movement
    # ------------------------------------------------------------------
    def _arrive(self, packet: Packet, node: str, ingress: Optional[Dart]) -> None:
        now = self.queue.now
        if node == packet.destination:
            self.report.packets_delivered += 1
            self.report.packets_in_flight -= 1
            self.report.total_latency += now - packet.created_at
            self.report.total_hops += self._hops_taken.pop(packet.packet_id, 0)
            return
        if self._hops_taken.get(packet.packet_id, 0) >= self.max_hops:
            self._drop(packet, now)
            return
        egress = self.forwarder.egress_for(now, node, ingress, packet)
        if egress is None:
            self._drop(packet, now)
            return
        self._transmit(packet, egress)

    def _drop(self, packet: Packet, time: float) -> None:
        self.report.packets_dropped += 1
        self.report.packets_in_flight -= 1
        self.report.drop_times.append(time)
        self._hops_taken.pop(packet.packet_id, None)

    def _transmit(self, packet: Packet, egress: Dart) -> None:
        now = self.queue.now
        serialization = self.link_model.serialization_delay(packet.size_bytes)
        start = max(now, self._interface_free_at.get(egress, now))
        finish = start + serialization
        self._interface_free_at[egress] = finish
        propagation = self.link_model.propagation_delay(self.graph.weight(egress.edge_id))
        arrival_time = finish + propagation
        self._hops_taken[packet.packet_id] = self._hops_taken.get(packet.packet_id, 0) + 1

        def deliver_to_next_hop() -> None:
            self._arrive(packet, egress.head, egress)

        self.queue.schedule(arrival_time, deliver_to_next_hop, label=f"rx {egress.head}")

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> SimulationReport:
        """Process all scheduled events (optionally only up to ``until``)."""
        self.report.events_processed += self.queue.run(until=until)
        return self.report


def estimate_packets_lost(
    link_rate_bps: float,
    utilization: float,
    outage_seconds: float,
    packet_size_bytes: int = 1000,
) -> float:
    """Closed-form check of the introduction's back-of-the-envelope number.

    A link of ``link_rate_bps`` loaded at ``utilization`` and black-holed for
    ``outage_seconds`` drops ``rate * utilization * outage / packet size``
    packets.  For an OC-192 at full load, one second and 1 kB packets this is
    ≈ 1.24 million packets; at the ~25 % load implied by the paper's "more
    than a quarter of a million packets" phrasing it is ≈ 311 k.
    """
    if not 0.0 <= utilization <= 1.0:
        raise SimulationError("utilization must lie in [0, 1]")
    bits_lost = link_rate_bps * utilization * outage_seconds
    return bits_lost / (packet_size_bytes * 8.0)
