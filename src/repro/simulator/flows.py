"""Traffic flows for the discrete-event simulator."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class TrafficFlow:
    """A constant-bit-rate packet flow.

    Attributes
    ----------
    source, destination:
        Endpoints of the flow (router names).
    rate_pps:
        Packets emitted per second, evenly spaced.
    packet_size_bytes:
        Size of every packet (the paper's motivating example uses 1 kB).
    start, end:
        Emission window in simulation seconds.
    """

    source: str
    destination: str
    rate_pps: float
    packet_size_bytes: int = 1000
    start: float = 0.0
    end: float = 1.0

    def __post_init__(self) -> None:
        if self.rate_pps <= 0:
            raise SimulationError("flow rate must be positive")
        if self.end <= self.start:
            raise SimulationError("flow end time must be after its start time")
        if self.packet_size_bytes <= 0:
            raise SimulationError("packet size must be positive")

    @property
    def interval(self) -> float:
        """Seconds between consecutive packet emissions."""
        return 1.0 / self.rate_pps

    @property
    def total_packets(self) -> int:
        """Number of packets emitted over the whole window."""
        return int((self.end - self.start) * self.rate_pps)

    @property
    def rate_bps(self) -> float:
        """Offered load in bits per second."""
        return self.rate_pps * self.packet_size_bytes * 8.0
