"""Link models: capacity and propagation delay."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class LinkModel:
    """Transmission characteristics shared by every link of a simulation.

    Attributes
    ----------
    capacity_bps:
        Line rate in bits per second (serialisation delay = size / capacity).
    propagation_delay_s:
        One-way propagation delay per hop.  When ``delay_per_km_s`` is set,
        the per-hop delay is instead derived from the link weight interpreted
        as a distance in kilometres (the built-in ISP topologies use
        kilometre weights).
    delay_per_km_s:
        Propagation delay per kilometre of link length (``None`` disables the
        distance-based model).
    """

    capacity_bps: float = 10_000_000_000.0
    propagation_delay_s: float = 0.005
    delay_per_km_s: Optional[float] = None

    def serialization_delay(self, size_bytes: int) -> float:
        """Time to clock one packet of ``size_bytes`` onto the wire."""
        return (size_bytes * 8.0) / self.capacity_bps

    def propagation_delay(self, link_weight: float) -> float:
        """One-way propagation delay for a link of the given weight."""
        if self.delay_per_km_s is not None:
            return link_weight * self.delay_per_km_s
        return self.propagation_delay_s


#: An OC-192 backbone link (~9.95 Gbit/s), the example of the paper's introduction.
OC192 = LinkModel(capacity_bps=9_953_280_000.0, propagation_delay_s=0.005)
