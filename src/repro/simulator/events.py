"""Event queue for the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled simulator event.

    Events compare by ``(time, sequence)`` so that simultaneous events are
    processed in scheduling order, which keeps runs reproducible.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")


class EventQueue:
    """Minimal binary-heap event queue with monotonic time checking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time (time of the last processed event)."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events processed so far."""
        return self._processed

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to run at simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time} before current time {self._now}"
            )
        event = Event(time=time, sequence=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        return self.schedule(self._now + delay, action, label)

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Process events in time order until the queue drains or ``until`` is reached.

        Returns the number of events processed by this call.
        """
        processed = 0
        while self._heap and processed < max_events:
            if until is not None and self._heap[0].time > until:
                break
            event = heapq.heappop(self._heap)
            self._now = event.time
            event.action()
            processed += 1
            self._processed += 1
        if until is not None and self._now < until and not self._heap:
            self._now = until
        return processed
