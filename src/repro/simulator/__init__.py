"""Discrete-event packet-level simulator.

The stretch results of Figure 2 only need path tracing, but the paper's
motivation is about *time*: "If, for instance, a heavily loaded OC-192 link
is down for a second, more than a quarter of a million packets could be
lost".  This package provides a small discrete-event simulator with link
propagation and serialisation delays, constant-bit-rate flows, link failure
events and per-router re-convergence times, so that the packets-lost-during-
convergence experiment (and the PR counterfactual, which loses none) can be
run end to end.
"""

from repro.simulator.events import Event, EventQueue
from repro.simulator.links import LinkModel, OC192
from repro.simulator.flows import TrafficFlow
from repro.simulator.forwarders import (
    ConvergenceAwareForwarder,
    ProtectionForwarder,
    StaticForwarder,
    TimeAwareForwarder,
)
from repro.simulator.des import PacketLevelSimulator, SimulationReport, estimate_packets_lost

__all__ = [
    "Event",
    "EventQueue",
    "LinkModel",
    "OC192",
    "TrafficFlow",
    "ConvergenceAwareForwarder",
    "ProtectionForwarder",
    "StaticForwarder",
    "TimeAwareForwarder",
    "PacketLevelSimulator",
    "SimulationReport",
    "estimate_packets_lost",
]
