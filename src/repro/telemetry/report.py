"""Rendering the telemetry manifest for humans (``repro report``).

Three views, all plain-text tables so they compose with the rest of the CLI
output:

* **phase-time breakdown** — one row per span, with total/mean/max seconds
  and each span's share of the summed span time;
* **cache efficiency** — hit/miss/rate rows for every cache layer that
  reports counters (engine memo, incremental repair, scheme outcome memos,
  artifact cache);
* **slowest cells** — the manifest's top-N cells with their dominant phase.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: ``(label, hit counter, miss counter)`` per cache layer, in display order.
#: Repair rows divide repair hits by the misses repair was attempted on.
_CACHE_LAYERS = (
    ("engine memo", "engine/hits", "engine/misses"),
    ("incremental repair", "engine/repair_hits", "engine/repair_fallbacks"),
    ("outcome memo", "outcome_memo/hits", "outcome_memo/misses"),
    ("artifact cache", "artifact_cache/hits", "artifact_cache/misses"),
)


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000.0:.1f}ms"


def phase_rows(manifest: Dict[str, Any]) -> List[List[str]]:
    """Span table rows: name, count, total, mean, max, share of span time."""
    spans = manifest.get("spans", {})
    grand_total = sum(entry["total_s"] for entry in spans.values()) or 1.0
    ordered = sorted(spans.items(), key=lambda item: -item[1]["total_s"])
    return [
        [
            path,
            str(entry["count"]),
            _format_seconds(entry["total_s"]),
            _format_seconds(entry["mean_s"]),
            _format_seconds(entry["max_s"]),
            f"{100.0 * entry['total_s'] / grand_total:.1f}%",
        ]
        for path, entry in ordered
    ]


def cache_rows(manifest: Dict[str, Any]) -> List[List[str]]:
    """Cache-efficiency rows for every layer with at least one event."""
    counters = manifest.get("counters", {})
    rows: List[List[str]] = []
    for label, hit_key, miss_key in _CACHE_LAYERS:
        hits = counters.get(hit_key, 0)
        misses = counters.get(miss_key, 0)
        total = hits + misses
        if not total:
            continue
        rows.append([label, str(hits), str(misses), f"{100.0 * hits / total:.1f}%"])
    write_bytes = counters.get("artifact_cache/write_bytes")
    if write_bytes:
        rows.append(["artifact cache writes", str(counters.get("artifact_cache/stores", 0)),
                     f"{write_bytes / 1024.0:.1f} KiB", "-"])
    return rows


def slowest_rows(
    manifest: Dict[str, Any], limit: Optional[int] = None
) -> List[List[str]]:
    """Slowest-cell rows: cell id, coordinates, elapsed, dominant phase."""
    cells = manifest.get("slowest_cells", [])
    if limit is not None:
        cells = cells[: max(0, limit)]
    rows: List[List[str]] = []
    for cell in cells:
        phases = cell.get("phases", {})
        if phases:
            dominant = max(phases.items(), key=lambda item: item[1])
            phase_text = f"{dominant[0]} ({_format_seconds(dominant[1])})"
        else:
            phase_text = "-"
        rows.append(
            [
                str(cell.get("cell_id", "-")),
                str(cell.get("topology", "-")),
                str(cell.get("scheme", "-")),
                str(cell.get("scenario", "-")),
                _format_seconds(float(cell.get("elapsed_s", 0.0))),
                phase_text,
            ]
        )
    return rows


def render_report(manifest: Dict[str, Any], slowest: int = 10) -> str:
    """The full ``repro report`` body for one manifest."""
    from repro.experiments.asciiplot import render_table

    campaign = manifest.get("campaign", {})
    run = manifest.get("run", {})
    records = manifest.get("records", {})
    lines: List[str] = []
    header = ", ".join(
        f"{key}={value}"
        for key, value in (
            ("spec", campaign.get("spec_hash")),
            ("cells", campaign.get("cells")),
            ("executed", run.get("executed")),
            ("skipped", run.get("skipped")),
            ("workers", run.get("workers")),
        )
        if value is not None
    )
    lines.append(f"campaign telemetry: {header or 'no campaign metadata'}")
    if records:
        lines.append(
            f"records: {records.get('total', 0)} total, "
            f"{records.get('with_telemetry', 0)} with telemetry"
        )
    phases = phase_rows(manifest)
    if phases:
        lines.append("")
        lines.append("=== phase-time breakdown ===")
        lines.append(
            render_table(["span", "count", "total", "mean", "max", "share"], phases)
        )
    caches = cache_rows(manifest)
    if caches:
        lines.append("")
        lines.append("=== cache efficiency ===")
        lines.append(render_table(["layer", "hits", "misses", "hit rate"], caches))
    slow = slowest_rows(manifest, slowest)
    if slow:
        lines.append("")
        lines.append(f"=== slowest cells (top {len(slow)}) ===")
        lines.append(
            render_table(
                ["cell", "topology", "scheme", "scenario", "elapsed", "dominant phase"],
                slow,
            )
        )
    if not (phases or caches or slow):
        lines.append("no telemetry recorded (run the sweep without --no-telemetry)")
    return "\n".join(lines)
