"""Cross-worker telemetry merge and the queryable run manifest.

Every campaign cell record carries the telemetry snapshot of its own
execution under ``record["meta"]["telemetry"]`` (see
:func:`repro.runner.executor.run_cell`).  Because the snapshots ride inside
the records, they flow through the existing chunk-result envelopes from
worker processes to the parent, survive the JSONL store, and are reused by
resumed campaigns exactly like the payloads they accompany.

This module is the read side: it merges those per-cell snapshots — counter
addition is order-independent, span/distribution folds keep only commutative
aggregates, and all keys are emitted sorted — into a campaign **telemetry
manifest**, a JSON document written as a sidecar next to the JSONL results.
The manifest's ``counters`` section is deterministic: serial, parallel and
(topology-aligned) resumed runs of the same campaign merge to byte-identical
counter totals, which is what lets the perf trajectory compare *why* numbers
moved across runs and machines.  Wall-clock sections (``spans``,
``slowest_cells``, ``run``) are measured, not deterministic, and are
excluded from :func:`deterministic_view`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.telemetry.collector import TelemetryCollector, merge_snapshots

#: Manifest schema identifier; bump when the document shape changes.
MANIFEST_SCHEMA = "repro-telemetry/v1"

#: Counters every campaign produces regardless of scheme mix — the CI smoke
#: validation requires them (see :func:`validate_manifest`).
REQUIRED_COUNTERS = (
    "engine/builds",
    "engine/hits",
    "engine/misses",
    "cells/executed",
)

#: Span prefixes of which at least one representative must appear in a
#: telemetry-enabled manifest.
REQUIRED_SPAN_PREFIXES = ("cell/", "delivery/")

Record = Dict[str, Any]


def record_snapshot(record: Record) -> Optional[Dict[str, Any]]:
    """The telemetry snapshot a record carries, or ``None`` (disabled run)."""
    meta = record.get("meta")
    if not isinstance(meta, dict):
        return None
    snapshot = meta.get("telemetry")
    return snapshot if isinstance(snapshot, dict) else None


def merge_records(records: Sequence[Record]) -> TelemetryCollector:
    """Merged collector over every snapshot-bearing record, in record order."""
    return merge_snapshots(
        snapshot for snapshot in map(record_snapshot, records) if snapshot is not None
    )


def _cell_phases(record: Record) -> Dict[str, float]:
    """Per-phase seconds of one cell, from its snapshot's span totals."""
    snapshot = record_snapshot(record)
    if snapshot is None:
        return {}
    return {
        path: entry["total_s"] for path, entry in snapshot.get("spans", {}).items()
    }


def slowest_cells(records: Sequence[Record], limit: int = 10) -> List[Dict[str, Any]]:
    """The ``limit`` slowest cells with their per-phase breakdowns.

    Sorted by measured ``meta.elapsed_s`` descending, ties broken by cell
    order so the table is stable for equal timings.
    """
    timed = [
        (float(record.get("meta", {}).get("elapsed_s", 0.0)), position, record)
        for position, record in enumerate(records)
    ]
    timed.sort(key=lambda item: (-item[0], item[1]))
    rows = []
    for elapsed, _position, record in timed[: max(0, limit)]:
        rows.append(
            {
                "cell_id": record.get("cell_id"),
                "topology": record.get("topology"),
                "scheme": record.get("scheme"),
                "scenario": record.get("scenario_family")
                or record.get("scenario", {}).get("kind"),
                "elapsed_s": elapsed,
                "phases": dict(sorted(_cell_phases(record).items())),
            }
        )
    return rows


def build_manifest(
    records: Sequence[Record],
    campaign: Optional[Dict[str, Any]] = None,
    run: Optional[Dict[str, Any]] = None,
    slowest: int = 10,
    extra_counters: Optional[Dict[str, int]] = None,
) -> Dict[str, Any]:
    """Assemble the campaign telemetry manifest from cell records.

    ``campaign`` holds run-independent identity (spec hash, cell count);
    ``run`` holds facts about this particular invocation (executed/skipped
    counts, worker count, wall time) and is deliberately outside the
    deterministic view — a resumed run reports different ``run`` facts while
    merging to the identical ``counters`` section.

    ``extra_counters`` carries run-level counters that no cell snapshot can
    hold — the executor's fault accounting (``faults/retries``,
    ``faults/pool_rebuilds``, ...) happens in the parent, outside any cell.
    Only **non-zero** entries are merged in, so a fault-free run's counters
    section is byte-identical whether or not the fault layer was armed.
    """
    merged = merge_records(records)
    with_snapshots = sum(1 for r in records if record_snapshot(r) is not None)
    counters: Dict[str, int] = dict(merged.counters)
    for name, value in (extra_counters or {}).items():
        if value:
            counters[name] = counters.get(name, 0) + value
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "campaign": dict(sorted((campaign or {}).items())),
        "counters": {name: counters[name] for name in sorted(counters)},
        "spans": {
            path: {
                "count": entry[0],
                "total_s": entry[1],
                "mean_s": entry[1] / entry[0] if entry[0] else 0.0,
                "min_s": entry[2],
                "max_s": entry[3],
            }
            for path, entry in sorted(merged.spans.items())
        },
        "distributions": {
            name: merged.values[name].summary() for name in sorted(merged.values)
        },
        "slowest_cells": slowest_cells(records, slowest),
        "run": dict(sorted((run or {}).items())),
        "records": {"total": len(records), "with_telemetry": with_snapshots},
    }
    return manifest


def deterministic_view(manifest: Dict[str, Any]) -> Dict[str, Any]:
    """The portion of a manifest that is identical across equivalent runs.

    Covers the schema id, the campaign identity and the merged counters —
    everything wall-clock-derived (spans, distributions of timings, slowest
    cells, per-run facts) is excluded.  Serial, parallel and resumed runs of
    the same campaign from cold per-process caches serialize this view to
    identical bytes (asserted by ``tests/telemetry/test_manifest.py``).
    """
    return {
        "schema": manifest.get("schema"),
        "campaign": manifest.get("campaign", {}),
        "counters": manifest.get("counters", {}),
    }


def canonical_bytes(document: Dict[str, Any]) -> bytes:
    """Byte-stable serialization used by the determinism tests."""
    return json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")


# ----------------------------------------------------------------------
# sidecar persistence
# ----------------------------------------------------------------------
def manifest_path_for(results_path: Union[str, Path]) -> Path:
    """The sidecar manifest path of a JSONL results file.

    ``campaign.jsonl`` -> ``campaign.telemetry.json``; any other name gets
    ``.telemetry.json`` appended so the pairing stays visually obvious.
    """
    path = Path(results_path)
    if path.suffix == ".jsonl":
        return path.with_name(path.stem + ".telemetry.json")
    return path.with_name(path.name + ".telemetry.json")


def write_manifest(manifest: Dict[str, Any], path: Union[str, Path]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def load_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    return json.loads(Path(path).read_text())


# ----------------------------------------------------------------------
# schema validation (the CI smoke gate)
# ----------------------------------------------------------------------
def validate_manifest(manifest: Dict[str, Any]) -> List[str]:
    """Schema problems of a manifest; an empty list means it validates.

    Checks the invariants the CI smoke step gates on: the schema id, the
    presence of the always-produced counter keys, at least one span per
    required phase prefix, and non-negativity of every counter and span
    total.
    """
    problems: List[str] = []
    if manifest.get("schema") != MANIFEST_SCHEMA:
        problems.append(
            f"schema is {manifest.get('schema')!r}, expected {MANIFEST_SCHEMA!r}"
        )
    counters = manifest.get("counters")
    if not isinstance(counters, dict):
        problems.append("counters section missing or not a mapping")
        counters = {}
    for name in REQUIRED_COUNTERS:
        if name not in counters:
            problems.append(f"required counter {name!r} missing")
    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            problems.append(f"counter {name!r} is not a non-negative integer: {value!r}")
    spans = manifest.get("spans")
    if not isinstance(spans, dict):
        problems.append("spans section missing or not a mapping")
        spans = {}
    for prefix in REQUIRED_SPAN_PREFIXES:
        if not any(path.startswith(prefix) for path in spans):
            problems.append(f"no span with required prefix {prefix!r}")
    for path, entry in spans.items():
        if not isinstance(entry, dict) or not {
            "count",
            "total_s",
            "min_s",
            "max_s",
        } <= set(entry):
            problems.append(f"span {path!r} missing required keys")
            continue
        if entry["count"] < 0 or entry["total_s"] < 0:
            problems.append(f"span {path!r} has negative totals")
    for section in ("campaign", "run"):
        if not isinstance(manifest.get(section), dict):
            problems.append(f"{section} section missing or not a mapping")
    return problems
