"""Campaign telemetry: spans, counters, distributions, cross-worker merge.

A lightweight, stdlib-only instrumentation layer with three parts:

* :mod:`repro.telemetry.collector` — the write side: a per-process (or
  per-cell) :class:`TelemetryCollector` fed through the module-level
  :func:`span` / :func:`count` / :func:`record_value` primitives, with a
  near-zero disabled fast path;
* :mod:`repro.telemetry.merge` — the read side: deterministic merging of
  per-cell snapshots into the campaign telemetry manifest (the JSON sidecar
  next to a campaign's JSONL results), plus schema validation for CI;
* :mod:`repro.telemetry.report` — plain-text rendering for ``repro report``
  and the sweep ``--slowest`` table.

See the README's "Observability" section for the manifest schema and the
counter glossary.
"""

from repro.telemetry.collector import (
    RESERVOIR_SIZE,
    Distribution,
    TelemetryCollector,
    active_collector,
    collector_scope,
    count,
    counters_with_prefix,
    enabled,
    merge_snapshots,
    record_value,
    set_enabled,
    span,
)
from repro.telemetry.merge import (
    MANIFEST_SCHEMA,
    build_manifest,
    canonical_bytes,
    deterministic_view,
    load_manifest,
    manifest_path_for,
    merge_records,
    record_snapshot,
    slowest_cells,
    validate_manifest,
    write_manifest,
)
from repro.telemetry.report import render_report

__all__ = [
    "Distribution",
    "MANIFEST_SCHEMA",
    "RESERVOIR_SIZE",
    "TelemetryCollector",
    "active_collector",
    "build_manifest",
    "canonical_bytes",
    "collector_scope",
    "count",
    "counters_with_prefix",
    "deterministic_view",
    "enabled",
    "load_manifest",
    "manifest_path_for",
    "merge_records",
    "merge_snapshots",
    "record_snapshot",
    "record_value",
    "render_report",
    "set_enabled",
    "slowest_cells",
    "span",
    "validate_manifest",
    "write_manifest",
]
