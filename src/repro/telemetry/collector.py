"""Per-process telemetry collection: spans, counters, value distributions.

The collector is the write side of the campaign telemetry subsystem.  It is
deliberately tiny and stdlib-only — every hot layer of the codebase (the
shortest-path engine, the scheme fast paths, the artifact cache, the campaign
executor) reports into the *active* collector through three module-level
primitives:

* :func:`count` — monotonic named counters (``count("engine/builds")``);
* :func:`span` — wall-clock timing of a code region, aggregated per span
  name (``with span("delivery/scheme=fcp"): ...``).  Nested spans record
  under the joined path of the enclosing spans, so hierarchy can be given
  either explicitly in the name or implicitly by nesting;
* :func:`record_value` — value distributions (min/max/sum/count plus a
  fixed-size first-K reservoir for p50/p95).

Telemetry is **disabled by setting the active collector to ``None``** — the
disabled fast path of every primitive is one module-global load plus an
``is None`` test, which keeps the instrumented hot paths within benchmark
noise.  The default state comes from the ``REPRO_TELEMETRY`` environment
variable (enabled unless it is ``0``/``false``/``off``).

Snapshots (:meth:`TelemetryCollector.snapshot`) are plain JSON-ready dicts
with sorted keys; the campaign executor attaches one per cell record, which
is how worker processes ship their telemetry back through the existing
chunk-result envelopes (see :mod:`repro.telemetry.merge`).
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Iterable, List, Optional

#: Values kept per distribution for percentile estimates.  The reservoir is
#: the *first* ``RESERVOIR_SIZE`` values rather than a random sample: first-K
#: is deterministic (a requirement for byte-identical merged manifests), at
#: the cost of bias when a metric drifts beyond the first K observations.
RESERVOIR_SIZE = 512


def _percentile(ordered: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an already sorted, non-empty list."""
    rank = max(0, min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


class Distribution:
    """Streaming min/max/sum/count with a fixed first-K reservoir."""

    __slots__ = ("count", "total", "minimum", "maximum", "reservoir")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.reservoir: List[float] = []

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if len(self.reservoir) < RESERVOIR_SIZE:
            self.reservoir.append(value)

    def merge(self, payload: Dict[str, Any]) -> None:
        """Fold a snapshot dict produced by :meth:`to_dict` into this one."""
        if not payload.get("count"):
            return
        self.count += int(payload["count"])
        self.total += float(payload["sum"])
        for bound, better in (("min", min), ("max", max)):
            value = payload.get(bound)
            if value is None:
                continue
            current = self.minimum if bound == "min" else self.maximum
            merged = float(value) if current is None else better(current, float(value))
            if bound == "min":
                self.minimum = merged
            else:
                self.maximum = merged
        room = RESERVOIR_SIZE - len(self.reservoir)
        if room > 0:
            self.reservoir.extend(payload.get("reservoir", ())[:room])

    def to_dict(self) -> Dict[str, Any]:
        """Snapshot for transport (keeps the reservoir so merges can refine)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "reservoir": list(self.reservoir),
        }

    def summary(self) -> Dict[str, Any]:
        """Manifest-facing summary (reservoir reduced to p50/p95)."""
        ordered = sorted(self.reservoir)
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.total / self.count if self.count else 0.0,
            "min": self.minimum,
            "max": self.maximum,
            "p50": _percentile(ordered, 0.50) if ordered else None,
            "p95": _percentile(ordered, 0.95) if ordered else None,
        }


class TelemetryCollector:
    """One process's (or one cell's) accumulated telemetry.

    ``counters`` maps name -> int, ``spans`` maps span path -> ``[count,
    total_s, min_s, max_s]`` and ``values`` maps name ->
    :class:`Distribution`.  All three use flat ``/``-separated names; the
    span stack additionally prefixes nested spans with their enclosing path.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.spans: Dict[str, List[float]] = {}
        self.values: Dict[str, Distribution] = {}
        self._span_stack: List[str] = []

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def record_value(self, name: str, value: float) -> None:
        distribution = self.values.get(name)
        if distribution is None:
            distribution = self.values[name] = Distribution()
        distribution.add(value)

    def record_span(self, path: str, seconds: float) -> None:
        entry = self.spans.get(path)
        if entry is None:
            self.spans[path] = [1, seconds, seconds, seconds]
            return
        entry[0] += 1
        entry[1] += seconds
        if seconds < entry[2]:
            entry[2] = seconds
        if seconds > entry[3]:
            entry[3] = seconds

    def span_path(self, name: str) -> str:
        """The full path ``name`` records under, given the open span stack."""
        if not self._span_stack:
            return name
        return f"{self._span_stack[-1]}/{name}"

    # ------------------------------------------------------------------
    # snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready snapshot with deterministic (sorted) key order."""
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "spans": {
                path: {
                    "count": entry[0],
                    "total_s": entry[1],
                    "min_s": entry[2],
                    "max_s": entry[3],
                }
                for path, entry in sorted(self.spans.items())
            },
            "values": {
                name: self.values[name].to_dict() for name in sorted(self.values)
            },
        }

    def merge_snapshot(self, payload: Dict[str, Any]) -> None:
        """Fold one :meth:`snapshot` dict into this collector.

        Counter addition is commutative and the span/distribution folds keep
        only order-independent aggregates (count/total/min/max and a first-K
        reservoir filled in merge order), so merging per-cell snapshots in
        cell order is deterministic regardless of which worker produced them.
        """
        for name, amount in payload.get("counters", {}).items():
            self.count(name, int(amount))
        for path, entry in payload.get("spans", {}).items():
            current = self.spans.get(path)
            if current is None:
                self.spans[path] = [
                    int(entry["count"]),
                    float(entry["total_s"]),
                    float(entry["min_s"]),
                    float(entry["max_s"]),
                ]
                continue
            current[0] += int(entry["count"])
            current[1] += float(entry["total_s"])
            current[2] = min(current[2], float(entry["min_s"]))
            current[3] = max(current[3], float(entry["max_s"]))
        for name, dist_payload in payload.get("values", {}).items():
            distribution = self.values.get(name)
            if distribution is None:
                distribution = self.values[name] = Distribution()
            distribution.merge(dist_payload)

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return (
            f"TelemetryCollector(counters={len(self.counters)}, "
            f"spans={len(self.spans)}, values={len(self.values)})"
        )


# ----------------------------------------------------------------------
# the active collector (None == disabled)
# ----------------------------------------------------------------------
def _env_enabled() -> bool:
    return os.environ.get("REPRO_TELEMETRY", "1").strip().lower() not in (
        "0",
        "false",
        "off",
    )


_ACTIVE: Optional[TelemetryCollector] = TelemetryCollector() if _env_enabled() else None


def enabled() -> bool:
    """Whether telemetry is being collected in this process right now."""
    return _ACTIVE is not None


def set_enabled(on: bool) -> None:
    """Turn collection on (fresh process collector) or off (no collector)."""
    global _ACTIVE
    _ACTIVE = TelemetryCollector() if on else None


def active_collector() -> Optional[TelemetryCollector]:
    return _ACTIVE


class collector_scope:
    """Temporarily make ``collector`` the active one (``None`` disables).

    The campaign executor wraps each cell in a scope holding a *fresh*
    collector, so a cell's snapshot is exactly the telemetry produced while
    it ran — no delta arithmetic, and no cross-cell leakage.  Reentrant and
    exception-safe; restores the previous collector on exit.
    """

    __slots__ = ("collector", "_previous")

    def __init__(self, collector: Optional[TelemetryCollector]) -> None:
        self.collector = collector
        self._previous: Optional[TelemetryCollector] = None

    def __enter__(self) -> Optional[TelemetryCollector]:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self.collector
        return self.collector

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        _ACTIVE = self._previous


# ----------------------------------------------------------------------
# module-level primitives (near-zero overhead when disabled)
# ----------------------------------------------------------------------
def count(name: str, amount: int = 1) -> None:
    """Add ``amount`` to counter ``name`` on the active collector."""
    collector = _ACTIVE
    if collector is not None:
        collector.count(name, amount)


def record_value(name: str, value: float) -> None:
    """Record ``value`` into distribution ``name`` on the active collector."""
    collector = _ACTIVE
    if collector is not None:
        collector.record_value(name, value)


class _NullSpan:
    """Shared no-op context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("collector", "path", "_started")

    def __init__(self, collector: TelemetryCollector, path: str) -> None:
        self.collector = collector
        self.path = path

    def __enter__(self) -> "_Span":
        self.collector._span_stack.append(self.path)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._started
        stack = self.collector._span_stack
        if stack and stack[-1] == self.path:
            stack.pop()
        self.collector.record_span(self.path, elapsed)


def span(name: str):
    """Time a code region under span ``name`` (hierarchical via nesting).

    Usage::

        with span("delivery/scheme=fcp"):
            ...

    Opening a span inside another records under the joined path
    (``outer/inner``).  When telemetry is disabled this returns a shared
    no-op context manager — no allocation, no clock reads.
    """
    collector = _ACTIVE
    if collector is None:
        return _NULL_SPAN
    return _Span(collector, collector.span_path(name))


def counters_with_prefix(
    counters: Dict[str, int], prefix: str
) -> Dict[str, int]:
    """The sub-dict of ``counters`` whose names start with ``prefix``."""
    return {name: value for name, value in counters.items() if name.startswith(prefix)}


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> TelemetryCollector:
    """Fold snapshot dicts (in iteration order) into one collector."""
    merged = TelemetryCollector()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged
