"""Exception hierarchy shared by every subsystem of the reproduction.

All exceptions raised by the package derive from :class:`ReproError` so that
callers can catch everything the library throws with a single ``except``
clause while still being able to distinguish individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Base class for errors raised by the graph substrate."""


class NodeNotFound(GraphError):
    """A node referenced by name does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFound(GraphError):
    """An edge referenced by id or endpoints does not exist in the graph."""

    def __init__(self, edge: object) -> None:
        super().__init__(f"edge {edge!r} is not in the graph")
        self.edge = edge


class DuplicateNode(GraphError):
    """A node with the same name already exists in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} already exists in the graph")
        self.node = node


class DisconnectedGraph(GraphError):
    """An operation requires a connected graph but the graph is not."""


class NoPathExists(GraphError):
    """There is no path between the requested source and destination."""

    def __init__(self, source: object, destination: object) -> None:
        super().__init__(f"no path from {source!r} to {destination!r}")
        self.source = source
        self.destination = destination


class EmbeddingError(ReproError):
    """Base class for errors raised by the embedding subsystem."""


class NotPlanar(EmbeddingError):
    """Planar embedding was requested for a graph that is not planar."""


class InvalidRotationSystem(EmbeddingError):
    """A rotation system is inconsistent with its underlying graph."""


class RoutingError(ReproError):
    """Base class for errors raised by the routing subsystem."""


class ForwardingError(ReproError):
    """Base class for errors raised by the forwarding subsystem."""


class HeaderFieldOverflow(ForwardingError):
    """A packet header field was assigned a value it cannot encode."""


class ProtocolError(ReproError):
    """A protocol implementation reached an inconsistent internal state."""


class TopologyError(ReproError):
    """A topology definition or generator produced an invalid network."""


class FailureScenarioError(ReproError):
    """A failure scenario is inconsistent with the topology it applies to."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class ExperimentError(ReproError):
    """An experiment runner was configured inconsistently."""


class ResultStoreError(ExperimentError):
    """A campaign result store holds a record that cannot be trusted.

    Raised for mid-file corruption (malformed JSON, checksum mismatch) where
    silently dropping the record would under-count results; a torn *trailing*
    record — the expected shape of a crash mid-append — is skipped instead.
    """


class CellTimeoutError(ExperimentError):
    """A campaign cell exceeded its per-cell wall-clock timeout."""


class WorkerCrashError(ExperimentError):
    """A worker process died (SIGKILL, OOM, segfault) while running a cell."""


class JobError(ExperimentError):
    """A ``repro serve`` job queue operation was invalid or inconsistent."""


class JobCancelled(JobError):
    """A running job observed its cancel request and aborted between cells."""


class InjectedFault(ReproError):
    """An error deliberately raised by the fault-injection harness."""
