"""``python -m repro bench`` — reproducible wall-clock benchmarks.

Runs the two workloads the performance work is anchored on and reports their
wall-clock timings as a JSON artifact (``BENCH_*.json``):

* **figure2** — one multi-failure Figure 2 panel driven through the campaign
  runner (the per-cell hot path: scenario generation, affected-pair
  conditioning, per-scheme delivery walks, aggregation);
* **sweep** — a (topologies × schemes) campaign executed four ways: cold
  (offline embedding computed and persisted), warm (artifact cache hit,
  in-process engine caches hot), parallel (worker processes) and resumed
  (every cell skipped via the JSONL store);
* **corpus** — a corpus-sharded single-link campaign over zoo snapshots and
  parameterized synthetic instances (quick mode uses a 4-topology slice,
  full mode the entire ``all`` set), exercising lazy per-worker topology
  construction and the cross-topology aggregation path;
* **incremental** — a repair-heavy serial campaign (srlg groups plus
  multi-link samples over two ISP maps) whose per-scenario trees are almost
  all served by the incremental SSSP repair layer; ``sweep_incremental_s``
  tracks that layer specifically, and the report's ``repair_hits`` /
  ``repair_fallbacks`` totals show how much of the workload it carried;
* **warm query** — the resident ``repro serve`` hot path: an in-process
  :class:`~repro.store.serve.ServeSession` answering the same filter query
  against a warm SQLite campaign store, reported as ``query_warm_qps``
  under the higher-is-better ``throughput`` section — plus
  ``query_warm_qps_under_load``, the same query answered while the
  session's job worker executes a submitted campaign in the background
  (the daemon's no-head-of-line-blocking guarantee, as a number).

The CI benchmark-regression step runs ``repro bench --quick --check
benchmarks/bench_baseline.json``: the run fails when any timing regresses
more than ``--tolerance`` (default 25%) against the committed baseline, or
when any ``throughput`` rate drops below the baseline by the same margin
(see :func:`check_throughput`).
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.graph.spcache import aggregate_cache_info
from repro.runner.executor import run_campaign
from repro.runner.policy import ExecutionPolicy
from repro.runner.spec import (
    CampaignSpec,
    ScenarioSpec,
    corpus_campaign_spec,
    figure2_campaign_spec,
)


def _corpus_spec(quick: bool) -> CampaignSpec:
    if quick:
        return CampaignSpec(
            topologies=(
                "nsfnet1991",
                "switch2003",
                "fat-tree:k=4",
                "waxman:size=24,seed=7",
            ),
            schemes=("reconvergence", "fcp"),
            scenarios=(ScenarioSpec(kind="single-link"),),
        )
    return corpus_campaign_spec("all")


def _incremental_spec(quick: bool) -> CampaignSpec:
    """A repair-heavy workload: every scenario re-solves trees near failures.

    SRLG groups and multi-link samples produce many distinct failure sets on
    the same two topologies, so nearly every post-failure tree is a repair
    of a memoized failure-free tree rather than a full recompute.
    """
    return CampaignSpec(
        topologies=("abilene", "geant"),
        schemes=("reconvergence", "fcp"),
        scenarios=(
            ScenarioSpec.for_model("srlg", samples=8 if quick else 30),
            ScenarioSpec(
                kind="multi-link", failures=3, samples=6 if quick else 20
            ),
        ),
    )


def _sweep_spec(quick: bool) -> CampaignSpec:
    return CampaignSpec(
        topologies=("abilene", "geant"),
        schemes=("reconvergence", "fcp", "pr"),
        scenarios=(
            ScenarioSpec("multi-link", failures=4, samples=2 if quick else 4),
        ),
        embedding_method="local-search",
        embedding_iterations=600 if quick else 1200,
        embedding_seed=0,
    )


def _figure2_spec(quick: bool) -> CampaignSpec:
    return figure2_campaign_spec("2d", samples=20 if quick else 60, seed=1)


def run_bench(
    quick: bool = False,
    workers: int = 2,
) -> Dict[str, Any]:
    """Run both benchmark workloads and return the timing document."""
    timings: Dict[str, float] = {}

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        cache_dir = Path(tmp) / "cache"

        started = time.perf_counter()
        run_campaign(_figure2_spec(quick), workers=1, cache_dir=cache_dir)
        timings["figure2_s"] = time.perf_counter() - started

    # The cross-topology aggregation is part of the corpus workload: the
    # sweep is not done until the per-topology summary exists.
    started = time.perf_counter()
    corpus_result = run_campaign(_corpus_spec(quick), workers=1)
    corpus_rows = len(corpus_result.topology_summary())
    timings["corpus_sweep_s"] = time.perf_counter() - started
    # Merged telemetry counters of the corpus workload (empty when telemetry
    # is disabled): where the corpus wall-clock went, cache layer by layer.
    corpus_counters = corpus_result.merged_counters()

    # The same corpus workload with the fault-tolerance layer armed but
    # idle (retries + timeout + quarantine configured, zero faults firing):
    # the *_ft_s timings exist so CI can gate the layer's overhead against
    # the fault-free baseline (see check_ft_overhead).
    ft_policy = ExecutionPolicy(max_retries=2, cell_timeout=600.0, on_error="quarantine")
    started = time.perf_counter()
    ft_result = run_campaign(_corpus_spec(quick), workers=1, policy=ft_policy)
    timings["corpus_sweep_ft_s"] = time.perf_counter() - started
    assert not ft_result.quarantined, "idle fault layer must quarantine nothing"

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        cache_dir = Path(tmp) / "cache"
        results = Path(tmp) / "results.jsonl"
        spec = _sweep_spec(quick)

        started = time.perf_counter()
        cold = run_campaign(spec, workers=1, cache_dir=cache_dir, results=results)
        timings["sweep_cold_s"] = time.perf_counter() - started

        started = time.perf_counter()
        run_campaign(spec, workers=1, cache_dir=cache_dir)
        timings["sweep_warm_s"] = time.perf_counter() - started

        started = time.perf_counter()
        run_campaign(spec, workers=workers, cache_dir=cache_dir)
        timings["sweep_parallel_s"] = time.perf_counter() - started

        started = time.perf_counter()
        run_campaign(spec, workers=workers, cache_dir=cache_dir, policy=ft_policy)
        timings["sweep_parallel_ft_s"] = time.perf_counter() - started

        started = time.perf_counter()
        resumed = run_campaign(
            spec, workers=1, cache_dir=cache_dir, results=results, resume=True
        )
        timings["sweep_resumed_s"] = time.perf_counter() - started

        offline_cold = cold.offline_seconds()
        cells = cold.executed
        resumed_skipped = resumed.skipped

        # Warm-query throughput: the resident ``repro serve`` hot path.
        # The sweep lands in the SQLite campaign store, then one
        # ServeSession answers the same cross-campaign filter query
        # repeatedly with the store handle and engines already warm.
        # Driven in-process (no socket) so the number tracks the query
        # layer, not Unix-socket framing.
        from repro.store.serve import ServeSession

        store_path = Path(tmp) / "results.sqlite"
        run_campaign(spec, workers=1, cache_dir=cache_dir, results=store_path)
        session = ServeSession(cache_dir=cache_dir)
        try:
            query_request = {
                "op": "query",
                "results": str(store_path),
                "filter": "scheme=pr campaign:last1",
            }
            warmup = session.handle(dict(query_request))
            assert warmup.get("ok"), warmup
            query_rounds = 100 if quick else 400
            started = time.perf_counter()
            for _ in range(query_rounds):
                session.handle(dict(query_request))
            query_elapsed = time.perf_counter() - started
        finally:
            session.close()
        query_warm_qps = query_rounds / query_elapsed if query_elapsed else 0.0

        # Under-load throughput: the same warm query while the daemon's
        # job worker executes a submitted campaign in the background.
        # The rate necessarily drops (one GIL, two workloads) — the floor
        # gate asserts the service keeps *answering* during a job instead
        # of blocking behind it (head-of-line protection).
        session = ServeSession(
            cache_dir=cache_dir, jobs_path=Path(tmp) / "jobs.sqlite"
        )
        try:
            warmup = session.handle(dict(query_request))
            assert warmup.get("ok"), warmup
            submitted = session.handle({
                "op": "submit",
                "spec": spec.to_dict(),
                "results": str(Path(tmp) / "load.sqlite"),
                "workers": 1,
            })
            assert submitted.get("ok"), submitted
            load_rounds = 0
            started = time.perf_counter()
            while True:
                response = session.handle(dict(query_request))
                assert response.get("ok"), response
                load_rounds += 1
                job = session.handle(
                    {"op": "job", "job_id": submitted["job_id"]}
                )
                if job["job"]["state"] not in ("queued", "running"):
                    break
            load_elapsed = time.perf_counter() - started
        finally:
            session.close()
        query_warm_qps_under_load = (
            load_rounds / load_elapsed if load_elapsed else 0.0
        )

    # Incremental-repair workload: serial, in-process, so the engine cache
    # counters below describe this process's work.  Runs after the sweep
    # block — growing the parent heap before the parallel leg forks would
    # bill copy-on-write churn to ``sweep_parallel_s``.
    started = time.perf_counter()
    run_campaign(_incremental_spec(quick), workers=1)
    timings["sweep_incremental_s"] = time.perf_counter() - started
    engine_info = aggregate_cache_info()

    timings["sweep_total_s"] = (
        timings["sweep_cold_s"]
        + timings["sweep_warm_s"]
        + timings["sweep_parallel_s"]
        + timings["sweep_resumed_s"]
    )
    return {
        "timings": {name: round(value, 4) for name, value in timings.items()},
        # Higher-is-better rates live apart from "timings" so the
        # lower-is-better regression check never sees them.
        "throughput": {
            "query_warm_qps": round(query_warm_qps, 1),
            "query_warm_qps_under_load": round(query_warm_qps_under_load, 1),
        },
        "meta": {
            "quick": quick,
            "workers": workers,
            "cells": cells,
            "corpus_topologies": len(corpus_result.spec.topologies),
            "corpus_summary_rows": corpus_rows,
            "repair_hits": engine_info.get("repair_hits", 0),
            "repair_fallbacks": engine_info.get("repair_fallbacks", 0),
            "corpus_counters": corpus_counters,
            "offline_cold_s": round(offline_cold, 4),
            "resumed_skipped": resumed_skipped,
            "query_rounds": query_rounds,
            "load_rounds": load_rounds,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
    }


#: (fault-layer timing, fault-free timing) pairs compared by
#: :func:`check_ft_overhead`.
FT_OVERHEAD_PAIRS = (
    ("corpus_sweep_ft_s", "corpus_sweep_s"),
    ("sweep_parallel_ft_s", "sweep_parallel_s"),
)


def check_ft_overhead(
    document: Dict[str, Any],
    limit: float = 0.03,
    floor_s: float = 0.05,
) -> List[str]:
    """Violations of the idle fault-layer overhead budget, empty when ok.

    Compares each ``*_ft_s`` timing against its fault-free twin *from the
    same run* (same machine, same thermal state — the only comparison where
    a 3% relative budget is meaningful).  ``floor_s`` is an absolute noise
    floor: quick-mode legs finish in well under 100 ms, where 3% is below
    scheduler jitter, so a delta must exceed BOTH the relative budget and
    the floor to count as a violation.
    """
    timings = document.get("timings", {})
    violations: List[str] = []
    for ft_name, base_name in FT_OVERHEAD_PAIRS:
        ft_value = timings.get(ft_name)
        base_value = timings.get(base_name)
        if not isinstance(ft_value, (int, float)) or not isinstance(
            base_value, (int, float)
        ):
            continue
        delta = ft_value - base_value
        if delta > base_value * limit and delta > floor_s:
            violations.append(
                f"{ft_name}: {ft_value:.3f}s is {delta:.3f}s over fault-free "
                f"{base_name} {base_value:.3f}s (> {limit:.0%} and > {floor_s:.2f}s)"
            )
    return violations


def check_regression(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.25,
) -> List[str]:
    """Timings in ``current`` that exceed the baseline by more than ``tolerance``.

    Only timing keys present in both documents are compared; a missing key is
    not a regression (it lets the baseline trail the benchmark's evolution).
    Returns human-readable violation strings, empty when the check passes.
    """
    violations: List[str] = []
    baseline_timings = baseline.get("timings", {})
    current_timings = current.get("timings", {})
    for name, allowed in sorted(baseline_timings.items()):
        measured = current_timings.get(name)
        if measured is None or not isinstance(allowed, (int, float)):
            continue
        budget = allowed * (1.0 + tolerance)
        if measured > budget:
            violations.append(
                f"{name}: {measured:.3f}s exceeds baseline {allowed:.3f}s "
                f"+{tolerance:.0%} (budget {budget:.3f}s)"
            )
    return violations


def check_throughput(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.25,
) -> List[str]:
    """Throughput rates in ``current`` that fall short of the baseline.

    The mirror image of :func:`check_regression` for higher-is-better
    numbers (the ``throughput`` section, e.g. ``query_warm_qps``): a rate
    violates when it drops below ``baseline / (1 + tolerance)``.  Only keys
    present in both documents are compared, so a baseline can trail the
    benchmark's evolution without failing the gate.
    """
    violations: List[str] = []
    baseline_rates = baseline.get("throughput", {})
    current_rates = current.get("throughput", {})
    for name, required in sorted(baseline_rates.items()):
        measured = current_rates.get(name)
        if measured is None or not isinstance(required, (int, float)):
            continue
        floor = required / (1.0 + tolerance)
        if measured < floor:
            violations.append(
                f"{name}: {measured:.1f}/s is below baseline {required:.1f}/s "
                f"-{tolerance:.0%} (floor {floor:.1f}/s)"
            )
    return violations


def write_bench(document: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Write a timing document as pretty JSON (sorted keys).

    When the target file already carries a perf-history trajectory (the
    committed ``BENCH_sweep.json`` keeps one entry per optimization PR under
    ``history``) and the new document does not bring its own, the existing
    history and note are preserved: a routine local or CI bench run
    refreshes ``timings``/``meta`` without silently erasing the recorded
    trajectory, while a document that deliberately updates the trajectory
    wins over the stale one.
    """
    path = Path(path)
    if path.exists() and "history" not in document:
        try:
            previous = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            previous = {}
        if isinstance(previous, dict) and "history" in previous:
            merged = dict(previous)
            merged.update(document)
            document = merged
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a timing document written by :func:`write_bench`."""
    return json.loads(Path(path).read_text())
