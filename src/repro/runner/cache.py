"""Content-addressed on-disk cache for offline-stage artifacts.

The paper computes the cellular embedding "offline, on a server designated
for that purpose" and ships the result to the routers.  In the reproduction
that offline stage used to be re-run by every experiment that needed a
Packet Re-cycling instance; this cache makes it run once per (topology,
embedding method, seed) and be reloaded everywhere else — including from
worker processes of a parallel campaign, which share the cache through the
filesystem.

Keys are content hashes of the topology *structure* (nodes, edges with their
stable ids and weights — the name is deliberately excluded) combined with
the embedding parameters.  Any change to the topology therefore invalidates
the entry automatically, and two differently-named copies of the same graph
share one artifact.  Writes go through a temporary file plus an atomic
rename so that concurrent workers computing the same artifact can never
leave a torn entry behind; unreadable or corrupt entries are treated as
misses and rebuilt in place.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import zlib

from repro import telemetry
from repro.embedding.builder import CellularEmbedding, embed
from repro.embedding.serialization import embedding_from_dict, embedding_to_dict
from repro.graph.multigraph import Graph
from repro.runner import faults

#: Default cache location, overridable through the environment.
DEFAULT_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")

_CACHE_FORMAT_VERSION = 1


def topology_fingerprint(graph: Graph) -> str:
    """Content hash of a topology's structure (ids, endpoints, weights).

    The graph *name* is excluded on purpose: a renamed copy of the same
    network has the same embeddings.  Edge ids are included because every
    offline artifact (rotation systems, cycle tables, failure sets) refers
    to links by id.
    """
    payload = {
        "nodes": sorted(graph.nodes()),
        "edges": sorted(
            (edge.edge_id, edge.u, edge.v, edge.weight) for edge in graph.edges()
        ),
    }
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ArtifactCache:
    """Content-addressed store of serialized offline-stage artifacts.

    Parameters
    ----------
    root:
        Directory holding the artifacts.  Created lazily on the first store.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.heals = 0

    # ------------------------------------------------------------------
    # keys and paths
    # ------------------------------------------------------------------
    def embedding_key(
        self,
        graph: Graph,
        method: str = "auto",
        seed: Optional[int] = 0,
        iterations: int = 200,
    ) -> str:
        """The content-addressed key of one embedding artifact."""
        material = json.dumps(
            {
                "artifact": "embedding",
                "topology": topology_fingerprint(graph),
                "method": method,
                "seed": seed,
                "iterations": iterations,
                "format": _CACHE_FORMAT_VERSION,
            },
            sort_keys=True,
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def path_for(self, key: str) -> Path:
        """On-disk location of an artifact (two-level fan-out like git)."""
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # load / store
    # ------------------------------------------------------------------
    @staticmethod
    def content_crc(embedding_payload: Any) -> str:
        """CRC-32 (hex) over the canonical JSON of a serialized embedding."""
        canonical = json.dumps(embedding_payload, sort_keys=True)
        return format(zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF, "08x")

    def load_embedding(
        self,
        graph: Graph,
        method: str = "auto",
        seed: Optional[int] = 0,
        iterations: int = 200,
    ) -> Optional[CellularEmbedding]:
        """Return the cached embedding, or ``None`` on a miss.

        Entries carry a content checksum; a corrupt, truncated or
        checksum-failing entry **self-heals**: the bad file is evicted
        (counted as ``artifact_cache/heals``) and the miss makes the caller
        rebuild it in place.  Entries written before the checksum protocol
        (no ``content_crc`` field) are accepted unverified.
        """
        key = self.embedding_key(graph, method, seed, iterations)
        path = self.path_for(key)
        if not path.exists():
            return None
        spec = faults.checkpoint("cache-read", key)
        if spec is not None and spec.kind == "partial-write":
            # Simulate a torn artifact: truncate the entry in place, then
            # read it back like any other corrupt file.
            data = path.read_bytes()
            path.write_bytes(data[: len(data) // 2])
        try:
            payload = json.loads(path.read_text())
            if payload.get("key") != key:
                raise ValueError("artifact key mismatch")
            crc = payload.get("content_crc")
            if crc is not None and crc != self.content_crc(payload["embedding"]):
                raise ValueError("artifact content checksum mismatch")
            return embedding_from_dict(payload["embedding"])
        except Exception:
            self._heal(path)
            return None

    def _heal(self, path: Path) -> None:
        """Evict a corrupt artifact so the caller's rebuild replaces it."""
        try:
            path.unlink()
        except OSError:  # pragma: no cover - lost a race with another healer
            pass
        self.heals += 1
        telemetry.count("artifact_cache/heals")

    def store_embedding(
        self,
        graph: Graph,
        embedding: CellularEmbedding,
        method: str = "auto",
        seed: Optional[int] = 0,
        iterations: int = 200,
    ) -> Path:
        """Persist one embedding artifact atomically and return its path."""
        key = self.embedding_key(graph, method, seed, iterations)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        serialized = embedding_to_dict(embedding)
        payload: Dict[str, Any] = {
            "key": key,
            "topology_fingerprint": topology_fingerprint(graph),
            "method": method,
            "seed": seed,
            "iterations": iterations,
            "content_crc": self.content_crc(serialized),
            "embedding": serialized,
        }
        handle, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(payload, stream, sort_keys=True)
            os.replace(tmp_name, path)
        except Exception:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        self.stores += 1
        telemetry.count("artifact_cache/stores")
        telemetry.count("artifact_cache/write_bytes", path.stat().st_size)
        return path

    def get_or_build(
        self,
        graph: Graph,
        method: str = "auto",
        seed: Optional[int] = 0,
        iterations: int = 200,
    ) -> CellularEmbedding:
        """The cached embedding, computing and persisting it on a miss."""
        cached = self.load_embedding(graph, method, seed, iterations)
        if cached is not None:
            self.hits += 1
            telemetry.count("artifact_cache/hits")
            return cached
        self.misses += 1
        telemetry.count("artifact_cache/misses")
        embedding = embed(graph, method=method, iterations=iterations, seed=seed)
        self.store_embedding(graph, embedding, method, seed, iterations)
        return embedding

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def entries(self) -> List[Path]:
        """Paths of every artifact currently in the cache."""
        if not self.root.exists():
            return []
        return sorted(self.root.glob("*/*.json"))

    def __len__(self) -> int:
        return len(self.entries())

    def clear(self) -> int:
        """Delete every artifact; returns how many were removed."""
        removed = 0
        for path in self.entries():
            path.unlink()
            removed += 1
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "heals": self.heals,
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return f"ArtifactCache(root={str(self.root)!r}, entries={len(self)})"


def cached_embedding(
    graph: Graph,
    method: str = "auto",
    seed: Optional[int] = 0,
    iterations: int = 200,
    cache: Optional[ArtifactCache] = None,
) -> CellularEmbedding:
    """Embedding through an optional cache (``None`` computes directly)."""
    if cache is None:
        return embed(graph, method=method, iterations=iterations, seed=seed)
    return cache.get_or_build(graph, method=method, seed=seed, iterations=iterations)
