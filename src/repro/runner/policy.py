"""Execution policy for fault-tolerant campaigns: retries, timeouts, quarantine.

:class:`ExecutionPolicy` bundles the knobs `run_campaign` consults when a
cell fails: how many times to retry, how long a cell may run, and whether a
cell that exhausts its retries aborts the campaign (``on_error="fail"``, the
legacy behaviour and the default) or is quarantined into a JSONL sidecar
next to the results file (``on_error="quarantine"``) so the rest of the
sweep completes.

Backoff between retries is exponential with **deterministic jitter**: the
jitter fraction is hashed from ``(cell_id, attempt)``, so a rerun of the
same campaign against the same flaky resource spaces its retries
identically — reproducibility extends to the failure path.
"""

from __future__ import annotations

import hashlib
import signal
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Optional, Union

from repro.errors import CellTimeoutError, ExperimentError

#: Valid ``on_error`` dispositions.
ON_ERROR_MODES = ("fail", "quarantine")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How `run_campaign` treats failing, hanging, and crashing cells.

    The defaults reproduce the legacy semantics exactly: no retries, no
    timeout, first error aborts the campaign.
    """

    max_retries: int = 0
    cell_timeout: Optional[float] = None
    on_error: str = "fail"
    backoff_base_s: float = 0.1
    backoff_cap_s: float = 5.0
    max_pool_rebuilds: int = 16

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ExperimentError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ExperimentError(
                f"cell_timeout must be positive, got {self.cell_timeout}"
            )
        if self.on_error not in ON_ERROR_MODES:
            raise ExperimentError(
                f"on_error must be one of {ON_ERROR_MODES}, got {self.on_error!r}"
            )
        if self.max_pool_rebuilds < 0:
            raise ExperimentError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )

    @property
    def quarantines(self) -> bool:
        return self.on_error == "quarantine"

    def to_dict(self) -> dict:
        """The policy as a JSON-shaped dictionary (the job-journal form)."""
        return {
            "max_retries": self.max_retries,
            "cell_timeout": self.cell_timeout,
            "on_error": self.on_error,
            "backoff_base_s": self.backoff_base_s,
            "backoff_cap_s": self.backoff_cap_s,
            "max_pool_rebuilds": self.max_pool_rebuilds,
        }

    @classmethod
    def from_dict(cls, payload: Optional[dict]) -> "ExecutionPolicy":
        """A policy from its dictionary form (missing keys keep defaults).

        This is how a ``repro serve`` ``submit`` request carries its
        fault-tolerance knobs into the journal and back out to the worker
        that eventually executes the job.  Unknown keys fail loudly —
        a typo in a policy field must not silently run with defaults.
        """
        if not payload:
            return cls()
        known = {
            "max_retries",
            "cell_timeout",
            "on_error",
            "backoff_base_s",
            "backoff_cap_s",
            "max_pool_rebuilds",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ExperimentError(
                f"unknown execution-policy fields {unknown!r};"
                f" expected a subset of {sorted(known)}"
            )
        return cls(**payload)

    def backoff_seconds(self, cell_id: str, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based) of a cell.

        Exponential in the attempt number, capped, with a deterministic
        jitter in ``[0, 1)`` of the base delay hashed from the cell id so
        two cells failing together don't retry in lockstep — yet the same
        cell always waits the same amount on the same attempt.
        """
        if attempt <= 0:
            return 0.0
        base = self.backoff_base_s * (2.0 ** (attempt - 1))
        digest = hashlib.sha256(f"{cell_id}|{attempt}".encode("utf-8")).digest()
        jitter = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return min(self.backoff_cap_s, base * (1.0 + jitter))


def run_with_timeout(
    fn: Callable[[], Any], timeout: Optional[float], label: str = "cell"
) -> Any:
    """Run ``fn`` with a wall-clock deadline, raising :class:`CellTimeoutError`.

    On the main thread of a process (the only thread a worker process runs
    cells on) the deadline is enforced with ``SIGALRM``/``setitimer``, which
    interrupts even a CPU-bound cell body.  Off the main thread — e.g. a
    library caller driving campaigns from a thread — we fall back to running
    ``fn`` on a daemon thread and abandoning it on timeout: the result is
    discarded, but the campaign regains control.
    """
    if timeout is None:
        return fn()
    if threading.current_thread() is threading.main_thread():
        def _on_alarm(signum, frame):
            raise CellTimeoutError(f"{label} exceeded {timeout:g}s wall-clock timeout")

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
        try:
            return fn()
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

    box: dict = {}

    def _target() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:  # propagated below
            box["error"] = exc

    worker = threading.Thread(target=_target, daemon=True)
    worker.start()
    worker.join(timeout)
    if worker.is_alive():
        raise CellTimeoutError(f"{label} exceeded {timeout:g}s wall-clock timeout")
    if "error" in box:
        raise box["error"]
    return box["value"]


def quarantine_path_for(results_path: Union[str, Path]) -> Path:
    """The quarantine sidecar path of a JSONL results file.

    ``campaign.jsonl`` -> ``campaign.quarantine.jsonl``; other names get
    ``.quarantine.jsonl`` appended, mirroring the telemetry sidecar naming.
    """
    path = Path(results_path)
    if path.suffix == ".jsonl":
        return path.with_name(path.stem + ".quarantine.jsonl")
    return path.with_name(path.name + ".quarantine.jsonl")
