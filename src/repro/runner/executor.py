"""Parallel campaign execution with streaming results and resume.

The executor turns a :class:`~repro.runner.spec.CampaignSpec` into records:
one JSON-serialisable dictionary per cell, appended to the results backend
(the SQLite campaign store of :mod:`repro.store`, or checksummed JSONL —
selected by the ``results`` path suffix) as soon as the cell finishes.  Cells are independent by construction, so
they fan out across worker processes with :mod:`concurrent.futures`; the
artifact cache is shared through the filesystem, which means the expensive
offline stage of a topology runs in exactly one worker and every other cell
of that topology loads the artifact.

Records have three parts:

* identity — ``cell_id``, the grid coordinates and the derived seed;
* ``payload`` — the measured results.  The payload is **deterministic**: the
  same spec produces byte-identical payloads whether the campaign runs
  serially or in parallel, cold or cached (this is what the resume logic and
  the determinism tests rely on);
* ``meta`` — timing, cache statistics and the worker pid.  Never compared.

Records are flushed to the store in cell order (a completed record waits
until every earlier cell has completed), so a results file produced by a
parallel run is record-for-record comparable with a serial one — whichever
backend it streamed into.
"""

from __future__ import annotations

import os
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro import telemetry
from repro.baselines.fcp import FailureCarryingPackets
from repro.baselines.lfa import LoopFreeAlternates
from repro.baselines.noprotection import NoProtection
from repro.baselines.reconvergence import Reconvergence
from repro.core.coverage import CoverageReport, reachable_pairs
from repro.core.scheme import PacketRecycling, SimplePacketRecycling
from repro.errors import (
    CellTimeoutError,
    ExperimentError,
    WorkerCrashError,
)
from repro.failures.sampling import sample_multi_link_failures
from repro.failures.scenarios import (
    FailureScenario,
    all_affecting_pairs,
    node_failure_scenarios,
    single_link_failures,
)
from repro.forwarding.engine import DeliveryStatus
from repro.forwarding.scheme import ForwardingScheme
from repro.graph.multigraph import Graph
from repro.graph.compiled import graph_signature
from repro.graph.spcache import clear_engines, engine_counter_totals, engine_for
from repro.metrics.ccdf import ccdf_curve, default_stretch_thresholds, distribution_summary
from repro.metrics.overhead import overhead_comparison
from repro.routing.discriminator import DiscriminatorKind
from repro.runner import aggregate, faults
from repro.runner.cache import ArtifactCache, cached_embedding
from repro.runner.policy import ExecutionPolicy, quarantine_path_for, run_with_timeout
from repro.runner.spec import (
    EMBEDDING_SCHEMES,
    SCHEME_NAMES,
    CampaignCell,
    CampaignSpec,
    chunk_cells,
)
from repro.scenarios import get_scenario_model
from repro.store.database import BoundCampaign, CampaignStore, is_store_path
from repro.store.jsonl import ResultStore
from repro.store.query import Filter, parse_filter
from repro.topologies import corpus


#: Per-process topology memo: a campaign's cells repeatedly load the same
#: few topologies, and a shared ``Graph`` object lets every cell of a worker
#: resolve to the same shortest-path engine without re-parsing or
#: re-generating anything — corpus topologies are constructed lazily, once
#: per worker, on the first cell that shards onto them.  Corpus specs are
#: keyed by their canonical form; file-based topologies by (path, mtime,
#: size) so an edited file is reloaded.
_TOPOLOGY_CACHE: Dict[Tuple, Graph] = {}


def load_topology(spec: str) -> Graph:
    """A corpus topology spec (``name[:k=v,...]``) or a path to a topology file.

    Corpus specs cover the legacy registry names (``abilene``), the
    parameterized synthetic families (``waxman:size=40,seed=3``) and the
    committed zoo snapshots (``nsfnet1991``); anything else is treated as a
    path to a GraphML or edge-list file.
    """
    parsed = corpus.try_parse_spec(spec)
    if parsed is not None:
        key: Tuple = ("corpus", parsed.canonical)
    else:
        try:
            stat = os.stat(spec)
        except OSError:
            # Not a registered name and not a file: surface the loader's
            # missing-file error.
            return corpus.load_topology_file(spec)
        key = ("file", spec, stat.st_mtime_ns, stat.st_size)
    graph = _TOPOLOGY_CACHE.get(key)
    if graph is None:
        if parsed is not None:
            graph = parsed.build()
        else:
            graph = corpus.load_topology_file(spec)
        if len(_TOPOLOGY_CACHE) >= 64:
            _TOPOLOGY_CACHE.clear()
        _TOPOLOGY_CACHE[key] = graph
    return graph


def build_scheme(
    key: str,
    graph: Graph,
    discriminator: str = DiscriminatorKind.HOP_COUNT.value,
    embedding: Optional[object] = None,
) -> ForwardingScheme:
    """Instantiate the scheme behind a registry key.

    ``embedding`` is only consulted by the Packet Re-cycling variants; the
    baselines have no embedding in their offline stage.
    """
    if key not in SCHEME_NAMES:
        raise ExperimentError(
            f"unknown scheme key {key!r}; available: {sorted(SCHEME_NAMES)}"
        )
    kind = DiscriminatorKind(discriminator)
    if key == "pr":
        return PacketRecycling(graph, embedding=embedding, discriminator_kind=kind)
    if key == "pr-1bit":
        return SimplePacketRecycling(graph, embedding=embedding, discriminator_kind=kind)
    if key == "fcp":
        return FailureCarryingPackets(graph)
    if key == "reconvergence":
        return Reconvergence(graph)
    if key == "lfa":
        return LoopFreeAlternates(graph)
    return NoProtection(graph)


def generate_scenarios(graph: Graph, cell: CampaignCell) -> List[FailureScenario]:
    """The failure scenarios of one cell, deterministic in the cell's seed."""
    scenario = cell.scenario
    if scenario.kind == "single-link":
        return single_link_failures(
            graph, only_non_disconnecting=scenario.non_disconnecting
        )
    if scenario.kind == "node":
        return node_failure_scenarios(graph)
    if scenario.kind == "model":
        model = get_scenario_model(scenario.model)
        generated = model.generate(
            graph,
            seed=cell.seed,
            samples=scenario.samples,
            non_disconnecting=scenario.non_disconnecting,
            params=dict(scenario.params),
        )
        if not generated:
            raise ExperimentError(
                f"scenario model {scenario.model!r} produced no scenarios on "
                f"{graph.name!r} (params {dict(scenario.params)!r})"
            )
        return generated
    generated = sample_multi_link_failures(
        graph,
        failures=scenario.failures,
        samples=scenario.samples,
        seed=cell.seed,
        require_connected=scenario.non_disconnecting,
    )
    if not generated:
        raise ExperimentError(
            f"could not sample any {scenario.failures}-failure scenario on "
            f"{graph.name!r} that keeps the network connected"
        )
    return generated


def _scenario_context(
    graph: Graph, cell: CampaignCell
) -> List[Tuple[Tuple[int, ...], List[Tuple[str, str]], List[Tuple[str, str]]]]:
    """``(failure key, affected pairs, measured pairs)`` per scenario of a cell.

    The context depends only on (topology content, scenario spec, seed,
    coverage mode) — deliberately *not* on the scheme or discriminator — so
    the cells of one scenario column share it through the per-process engine
    cache: scenario generation, the affected-pair conditioning and the
    connectivity filtering all run once per worker instead of once per cell.
    """
    engine = engine_for(graph)
    key = ("cell-context", cell.scenario.key(), cell.seed, cell.coverage)
    cached = engine.consumer_cache.get_or_none(key)
    if cached is not None:
        return cached
    scenarios = generate_scenarios(graph, cell)
    context = []
    # Scenario models (srlg, regional, maintenance, ...) can emit the same
    # failed-link set repeatedly; the conditioning work is a pure function
    # of that set, so duplicates share one entry (and downstream one
    # delivery pass per pattern, see run_cell).
    by_pattern: Dict[Tuple[int, ...], Tuple] = {}
    for scenario in scenarios:
        failed = tuple(sorted(scenario.failed_links))
        entry = by_pattern.get(failed)
        if entry is None:
            failed_set = frozenset(failed)
            affected = [
                pair
                for pair in all_affecting_pairs(graph, scenario)
                if engine.same_component(pair[0], pair[1], failed_set)
            ]
            if cell.coverage == "full":
                measured = reachable_pairs(graph, failed)
            else:
                measured = affected
            entry = (failed, affected, measured)
            by_pattern[failed] = entry
        context.append(entry)
    engine.consumer_cache.put(key, context)
    return context


# ----------------------------------------------------------------------
# cell execution (top-level so it pickles into worker processes)
# ----------------------------------------------------------------------
def run_cell(
    cell: CampaignCell, cache_dir: Optional[str] = None, attempt: int = 0
) -> Dict[str, Any]:
    """Run one campaign cell and return its result record.

    When telemetry is enabled the cell body runs under a *fresh*
    :class:`~repro.telemetry.TelemetryCollector`, and the record's ``meta``
    gains a ``telemetry`` snapshot: phase spans, outcome-memo and artifact
    cache counters, plus the cell's *delta* of the per-process engine
    counters (hits/misses/repair/evictions/builds accumulate on the engines
    across a whole worker; diffing around the cell attributes them to it).
    Snapshots ride inside the records, so they cross the chunk-result
    envelopes from workers unchanged and survive the JSONL store for
    resumed campaigns.  The ``payload`` is byte-identical with telemetry on
    or off.
    """
    faults.checkpoint("cell-body", cell.cell_id, attempt)
    collector = telemetry.TelemetryCollector() if telemetry.enabled() else None
    if collector is None:
        return _run_cell_body(cell, cache_dir)
    engines_before = engine_counter_totals()
    with telemetry.collector_scope(collector):
        record = _run_cell_body(cell, cache_dir)
    engines_after = engine_counter_totals()
    for name in sorted(engines_after):
        # Clamped at zero: a registry eviction mid-cell can make a raw
        # delta negative, and merged counters must stay monotonic.
        delta = engines_after[name] - engines_before.get(name, 0)
        collector.count(f"engine/{name}", max(0, delta))
    collector.count("cells/executed")
    record["meta"]["telemetry"] = collector.snapshot()
    return record


def _run_cell_body(cell: CampaignCell, cache_dir: Optional[str] = None) -> Dict[str, Any]:
    """The instrumented cell body (see :func:`run_cell`).

    The forwarding work is one delivery pass per scenario over the measured
    pair set; coverage accounting and stretch samples are both derived from
    that single pass (stretch only over the pairs whose failure-free path
    the scenario broke — the Figure 2 conditioning).
    """
    started = time.perf_counter()
    with telemetry.span("cell/topology_load"):
        graph = load_topology(cell.topology)
    with telemetry.span("cell/scenarios"):
        context = _scenario_context(graph, cell)
    # Failure-free baseline costs come straight off the engine's memoized
    # destination trees (the same values RoutingTables.cost would return),
    # so a cell whose scheme builds no routing tables doesn't force a full
    # table construction just for the stretch baseline.
    engine = engine_for(graph)
    engine_distances = engine.distances

    cache: Optional[ArtifactCache] = None
    embedding = None
    offline_started = time.perf_counter()
    if cell.scheme in EMBEDDING_SCHEMES:
        cache = ArtifactCache(cache_dir) if cache_dir else None
        with telemetry.span("offline/embedding"):
            embedding = cached_embedding(
                graph,
                method=cell.embedding_method,
                seed=cell.embedding_seed,
                iterations=cell.embedding_iterations,
                cache=cache,
            )
    with telemetry.span("cell/build_scheme"):
        scheme = build_scheme(cell.scheme, graph, cell.discriminator, embedding)
    offline_seconds = time.perf_counter() - offline_started

    report = CoverageReport(scheme=scheme.name)
    nodes = graph.nodes()
    all_pairs_count = len(nodes) * (len(nodes) - 1)
    measured_pairs = 0
    # Accounting runs over every (scenario, pair) outcome, so the loop works
    # on primitives: per-sample payload rows are built directly (identical
    # values to the StretchSample-based construction they replace) and
    # failure-free baseline costs are memoized per pair.
    delivered_status = DeliveryStatus.DELIVERED
    sample_rows: List[List[Any]] = []
    stretch_values: List[float] = []
    n_samples = 0
    delivered_samples = 0
    baseline_cost_of: Dict[Tuple[str, str], float] = {}
    record_samples = cell.record_samples
    # One delivery pass per distinct failed-link pattern: scenarios sharing
    # a pattern (common under srlg/regional/maintenance models) reuse the
    # same outcome dict — deliver_many is deterministic in (pairs, failed
    # links), so the per-scenario accounting below is unchanged.
    outcomes_by_pattern: Dict[Tuple[int, ...], Dict[Tuple, Any]] = {}
    with telemetry.span(f"delivery/scheme={cell.scheme}"):
        for key, affected, measured in context:
            measured_pairs += len(affected)
            if cell.coverage == "full":
                report.unreachable_pairs_skipped += all_pairs_count - len(measured)
            if not measured:
                continue
            affected_set = set(affected)
            outcomes = outcomes_by_pattern.get(key)
            if outcomes is None:
                outcomes = scheme.deliver_many(measured, failed_links=key)
                outcomes_by_pattern[key] = outcomes
            key_row = list(key)
            for pair, outcome in outcomes.items():
                status = outcome.status
                delivered = status is delivered_status
                if delivered:
                    report.attempts += 1
                    report.delivered += 1
                else:
                    report.record(status, key, outcome.drop_reason)
                if pair not in affected_set:
                    continue
                baseline_cost = baseline_cost_of.get(pair)
                if baseline_cost is None:
                    # cost(source -> destination) == dist[source] of the
                    # destination-rooted failure-free tree (undirected graph,
                    # exactly what RoutingTables stores in its cost column).
                    baseline_cost = engine_distances(pair[1])[pair[0]]
                    baseline_cost_of[pair] = baseline_cost
                n_samples += 1
                if delivered and baseline_cost > 0:
                    stretch = outcome.cost / baseline_cost
                    stretch_values.append(stretch)
                    delivered_samples += 1
                else:
                    stretch = None
                    if delivered:
                        delivered_samples += 1
                if record_samples:
                    sample_rows.append(
                        [
                            pair[0],
                            pair[1],
                            key_row,
                            stretch,
                            delivered,
                            outcome.hops,
                            outcome.cost,
                            baseline_cost,
                        ]
                    )

    telemetry.record_value("cell/measured_pairs", measured_pairs)
    telemetry.record_value("cell/stretch_samples", len(stretch_values))
    with telemetry.span("cell/aggregate"):
        [overhead_row] = overhead_comparison(graph, [scheme])
        payload: Dict[str, Any] = {
            "scenarios": len(context),
            "failures_per_scenario": len(context[0][0]) if context else 0,
            "measured_pairs": measured_pairs,
            "n_samples": n_samples,
            "delivered_samples": delivered_samples,
            "delivery_ratio": delivered_samples / n_samples if n_samples else 1.0,
            "n_stretch": len(stretch_values),
            # JSON-normalised (lists, not tuples) so in-memory records compare
            # equal to records reloaded from the JSONL store.
            "ccdf": [
                [x, p]
                for x, p in ccdf_curve(stretch_values, default_stretch_thresholds())
            ],
            "stretch_summary": distribution_summary(stretch_values),
            "coverage": {
                "attempts": report.attempts,
                "delivered": report.delivered,
                "dropped": report.dropped,
                "looped": report.looped,
                "unreachable_pairs_skipped": report.unreachable_pairs_skipped,
                "drop_reasons": dict(sorted(report.drop_reasons.items())),
            },
            "header_bits": overhead_row.header_bits,
            "header_bits_note": overhead_row.header_bits_note,
            "memory_entries": overhead_row.memory_entries,
            "online_computation": overhead_row.online_computation,
        }
        if record_samples:
            payload["samples"] = sample_rows
    return {
        "cell_id": cell.cell_id,
        "index": cell.index,
        "topology": cell.topology,
        "scheme": cell.scheme,
        "scheme_name": SCHEME_NAMES[cell.scheme],
        "discriminator": cell.discriminator,
        "scenario": cell.scenario.to_dict(),
        "scenario_family": cell.scenario.family,
        "seed": cell.seed,
        "payload": payload,
        "meta": {
            "elapsed_s": time.perf_counter() - started,
            "offline_s": offline_seconds,
            "cache_hits": cache.hits if cache else 0,
            "cache_misses": cache.misses if cache else 0,
            "pid": os.getpid(),
        },
    }


def _worker_init(
    active_topologies: Tuple[str, ...] = (), telemetry_enabled: Optional[bool] = None
) -> None:
    """Per-worker process initializer: shed every stale per-process cache.

    Fork-started workers inherit the parent's engine registry and topology
    memo.  The registries are content-addressed, so inherited entries are
    never *wrong* — but a resumed campaign after a topology-set change (or a
    long sequence of sweeps in one driver process) would keep every stale
    engine alive in every worker.  ``clear_engines`` with the campaign's
    active topology signatures drops exactly those stale engines while
    keeping the warm, still-valid engines of the topologies this campaign
    sweeps (on a machine where workers time-share cores, re-deriving them
    per worker is the dominant dispatch cost).

    ``telemetry_enabled`` carries the parent's telemetry state into the
    worker explicitly (spawn-started workers re-read only the environment,
    which a ``--no-telemetry`` run does not touch).
    """
    # Fault plans travel through REPRO_FAULTS: fork-started workers must
    # shed the parent's fire accounting, spawn-started ones must load the
    # plan at all.
    faults.reload_from_env()
    if telemetry_enabled is not None:
        telemetry.set_enabled(telemetry_enabled)
    keep_sigs = []
    keep_graphs = []
    for spec in active_topologies:
        try:
            graph = load_topology(spec)  # usually an inherited cache hit
        except Exception:
            # A broken spec fails in run_cell with its real error; the
            # initializer must never take the whole pool down.
            continue
        keep_graphs.append(graph)
        keep_sigs.append(graph_signature(graph))
    clear_engines(keep=keep_sigs)
    alive = {id(graph) for graph in keep_graphs}
    for key in [key for key, graph in _TOPOLOGY_CACHE.items() if id(graph) not in alive]:
        del _TOPOLOGY_CACHE[key]


def _run_cell_attempts(
    cell: CampaignCell,
    cache_dir: Optional[str],
    policy: ExecutionPolicy,
    base_attempt: int = 0,
) -> Tuple[str, Any, Dict[str, int]]:
    """Run one cell under the execution policy: timeout, retries, backoff.

    Returns a ``(status, payload, info)`` envelope: ``("ok", record, info)``
    or ``("error", last_exception, info)`` once the retry budget is spent.
    ``info`` carries the fault accounting (``retries``, ``timeouts``,
    ``attempts``) that the parent folds into the campaign fault counters.
    ``base_attempt`` is the number of attempts already consumed elsewhere —
    a crashed worker's re-dispatch arrives here with the crash counted.
    """
    attempt = base_attempt
    info = {"retries": 0, "timeouts": 0, "attempts": 0}
    while True:
        info["attempts"] = attempt + 1
        try:
            record = run_with_timeout(
                lambda: run_cell(cell, cache_dir, attempt=attempt),
                policy.cell_timeout,
                label=f"cell {cell.cell_id}",
            )
            return "ok", record, info
        except CellTimeoutError as exc:
            info["timeouts"] += 1
            last_error: Exception = exc
        except Exception as exc:
            last_error = exc
        attempt += 1
        if attempt > policy.max_retries:
            return "error", last_error, info
        info["retries"] += 1
        delay = policy.backoff_seconds(cell.cell_id, attempt)
        if delay > 0:
            time.sleep(delay)


def _run_cell_chunk(
    cells: List[CampaignCell],
    cache_dir: Optional[str] = None,
    policy: Optional[ExecutionPolicy] = None,
    base_attempts: Optional[List[int]] = None,
) -> List[Tuple[str, Any, Dict[str, int]]]:
    """Run a chunk of cells in one worker round trip (see ``chunk_cells``).

    Cells of one topology share the worker's graph, engine and scenario
    context across the whole chunk; one submission and one result message
    replace a per-cell pickling round trip.  Cells stay independent even
    inside a chunk: one cell raising must not discard its siblings'
    completed records (they still reach the JSONL store, so a resumed run
    skips them), hence the per-cell ``("ok", record, info) | ("error", exc,
    info)`` envelope instead of a bare record list.  Retries and the cell
    timeout run *inside* the worker (the cheapest place to re-attempt);
    only worker crashes need parent-side recovery, which re-dispatches with
    ``base_attempts`` advanced so the crash counts against the retry budget.
    """
    if policy is None:
        policy = ExecutionPolicy()
    outcomes: List[Tuple[str, Any, Dict[str, int]]] = []
    for position, cell in enumerate(cells):
        base = base_attempts[position] if base_attempts else 0
        outcomes.append(_run_cell_attempts(cell, cache_dir, policy, base))
    faults.checkpoint(
        "chunk-envelope",
        cells[0].cell_id if cells else None,
        base_attempts[0] if base_attempts else 0,
    )
    return outcomes


# ----------------------------------------------------------------------
# campaign driver
# ----------------------------------------------------------------------
@dataclass
class CampaignResult:
    """Everything a finished (or resumed) campaign produced.

    This is the ``CampaignHandle`` the redesigned results API returns: on
    top of the aggregation views it exposes the results backend itself
    (:attr:`store`, ``None`` for JSONL or in-memory runs), the filter-based
    :meth:`query` and the one-dictionary :meth:`summary`.
    """

    spec: CampaignSpec
    records: List[Dict[str, Any]] = field(default_factory=list)
    executed: int = 0
    skipped: int = 0
    elapsed_s: float = 0.0
    results_path: Optional[Path] = None
    #: The SQLite store the campaign ran into (``None`` for JSONL/in-memory).
    store: Optional[CampaignStore] = None
    #: cell_ids actually run in this invocation (resumed cells excluded).
    executed_cell_ids: Set[str] = field(default_factory=set)
    #: Worker count of this invocation (recorded in the telemetry manifest).
    workers: int = 1
    #: Sidecar manifest path, when the campaign streamed to a JSONL store.
    telemetry_path: Optional[Path] = None
    #: Quarantined-cell entries (``on_error="quarantine"``), in cell order.
    quarantined: List[Dict[str, Any]] = field(default_factory=list)
    #: Quarantine sidecar path, when quarantining into a JSONL store.
    quarantine_path: Optional[Path] = None
    #: Non-zero ``faults/*`` counters of this invocation (retries, timeouts,
    #: quarantined cells, pool rebuilds, torn records skipped on resume).
    fault_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def campaign_id(self) -> str:
        """The canonical campaign identity (the spec hash)."""
        return self.spec.spec_hash()

    def query(
        self,
        expression: Union[str, Sequence[str], Filter, None] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Records matching a filter expression (see :mod:`repro.store.query`).

        A ``campaign:`` selector in the expression routes the query through
        the backing store (cross-campaign); otherwise this campaign's own
        records are filtered in memory, identically for every backend.
        """
        filt = (
            expression
            if isinstance(expression, Filter)
            else parse_filter(expression)
        )
        if (filt.campaign_explicit or filt.campaign != ("all",)) and self.store is not None:
            return self.store.query(filt, limit=limit)
        records = filt.filter_records(self.records)
        return records[:limit] if limit is not None else records

    def summary(self) -> Dict[str, Any]:
        """The run facts in one JSON-shaped dictionary."""
        return {
            "campaign_id": self.campaign_id,
            "cells": self.spec.cell_count(),
            "records": len(self.records),
            "executed": self.executed,
            "skipped": self.skipped,
            "quarantined": len(self.quarantined),
            "elapsed_s": self.elapsed_s,
            "workers": self.workers,
            "results": str(self.results_path) if self.results_path else None,
            "backend": "sqlite" if self.store is not None else (
                "jsonl" if self.results_path is not None else "memory"
            ),
            "fault_counters": dict(self.fault_counters),
            "topologies": aggregate.topologies_in(self.records),
            "schemes": sorted({r.get("scheme", "") for r in self.records}),
        }

    # Aggregation views over the records (see :mod:`repro.runner.aggregate`).
    def stretch_result(self, topology: Optional[str] = None):
        return aggregate.stretch_result_from_records(self.records, topology)

    def merged_ccdf(self, topology: Optional[str] = None):
        return aggregate.merged_ccdf(self.records, topology)

    def coverage_reports(self):
        return aggregate.coverage_reports(self.records)

    def overhead_rows(self):
        return aggregate.overhead_rows(self.records)

    def family_summary(self, topology: Optional[str] = None):
        return aggregate.family_summary_rows(self.records, topology)

    def topology_summary(self):
        """Per-(topology, scheme) rows spanning the whole corpus swept."""
        return aggregate.topology_summary_rows(self.records)

    def _executed_records(self) -> List[Dict[str, Any]]:
        """Records produced by this invocation (resumed records excluded)."""
        return [r for r in self.records if r.get("cell_id") in self.executed_cell_ids]

    def cache_stats(self) -> Dict[str, int]:
        """Cache hit/miss totals summed over the cells this invocation ran."""
        executed = self._executed_records()
        hits = sum(r.get("meta", {}).get("cache_hits", 0) for r in executed)
        misses = sum(r.get("meta", {}).get("cache_misses", 0) for r in executed)
        return {"hits": hits, "misses": misses}

    def offline_seconds(self) -> float:
        """Offline-stage time this invocation spent (what the cache removes)."""
        return sum(
            r.get("meta", {}).get("offline_s", 0.0) for r in self._executed_records()
        )

    # ------------------------------------------------------------------
    # telemetry views
    # ------------------------------------------------------------------
    def telemetry(self, slowest: int = 10) -> Dict[str, Any]:
        """The campaign telemetry manifest merged over every record.

        Includes resumed records: their snapshots were produced when those
        cells actually ran, so a resumed campaign reports the same merged
        counters a fresh one does.
        """
        return telemetry_manifest(self, slowest=slowest)

    def merged_counters(self) -> Dict[str, int]:
        """Deterministically merged telemetry counters over every record.

        This is the campaign-wide answer :func:`aggregate_cache_info` cannot
        give: engine counters accumulate per *process*, so in a parallel run
        the parent's registry only ever saw its own cells.  The per-cell
        snapshots merged here crossed the chunk envelopes from every worker.
        """
        return dict(telemetry.merge_records(self.records).counters)

    def engine_counters(self) -> Dict[str, int]:
        """Merged ``engine/*`` counters with the prefix stripped."""
        return {
            name.split("/", 1)[1]: value
            for name, value in self.merged_counters().items()
            if name.startswith("engine/")
        }


#: The name the redesigned results API returns ``run_campaign``'s value
#: under.  An alias (not a subclass) so every existing isinstance check and
#: caller of :class:`CampaignResult` keeps working unchanged.
CampaignHandle = CampaignResult


def telemetry_manifest(result: CampaignResult, slowest: int = 10) -> Dict[str, Any]:
    """The telemetry manifest of a campaign result (see :mod:`repro.telemetry`)."""
    return telemetry.build_manifest(
        result.records,
        campaign={
            "spec_hash": result.spec.spec_hash(),
            "cells": result.spec.cell_count(),
        },
        run={
            "executed": result.executed,
            "skipped": result.skipped,
            "workers": result.workers,
            "elapsed_s": result.elapsed_s,
            "quarantined": len(result.quarantined),
        },
        slowest=slowest,
        extra_counters=result.fault_counters,
    )


ProgressCallback = Callable[[CampaignCell, Dict[str, Any], int, int], None]

#: Sentinel distinguishing "not passed" from an explicit ``None`` for the
#: deprecated ``results_path`` keyword.
_RESULTS_PATH_UNSET: Any = object()


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    results: Optional[Union[str, Path]] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    policy: Optional[ExecutionPolicy] = None,
    results_path: Optional[Union[str, Path]] = _RESULTS_PATH_UNSET,
) -> CampaignHandle:
    """Run every cell of a campaign, optionally in parallel and resumably.

    Parameters
    ----------
    workers:
        Number of worker processes; ``1`` (or fewer pending cells than
        workers would help) runs in-process.  ``0``/``None`` means one
        process per CPU.
    cache_dir:
        Artifact-cache directory shared by all workers; ``None`` disables
        caching (every cell recomputes its offline stage).
    results:
        Results backend records stream into, selected by suffix: a
        ``.sqlite``/``.sqlite3``/``.db`` path opens (or creates) a
        :class:`~repro.store.database.CampaignStore` and the campaign lands
        in it under its spec hash; anything else streams checksummed JSONL.
        Required for ``resume``.
    resume:
        Skip cells whose ``cell_id`` already has a record in ``results``
        and reuse those records in the returned handle.
    progress:
        Called as ``progress(cell, record, done, total)`` after each cell.
    policy:
        Fault-tolerance policy (retries, per-cell timeout, quarantine,
        pool-rebuild budget); ``None`` keeps the legacy semantics: no
        retries, no timeout, the first error aborts the campaign (raised
        only after every completed record — and the telemetry manifest —
        has been flushed).
    results_path:
        Deprecated spelling of ``results`` (same values, same slot).
    """
    if results_path is not _RESULTS_PATH_UNSET:
        warnings.warn(
            "run_campaign(results_path=...) is deprecated; call"
            " run_campaign(results=...) instead (same values: a .jsonl path"
            " streams JSONL, a .sqlite path lands in the campaign store)",
            DeprecationWarning,
            stacklevel=2,
        )
        if results is None:
            results = results_path
    started = time.perf_counter()
    if policy is None:
        policy = ExecutionPolicy()
    if not workers:
        workers = os.cpu_count() or 1
    cache_str = str(cache_dir) if cache_dir is not None else None
    cells = spec.cells()
    cells_by_id = {cell.cell_id: cell for cell in cells}

    fault_counters = {
        "faults/retries": 0,
        "faults/timeouts": 0,
        "faults/quarantined_cells": 0,
        "faults/pool_rebuilds": 0,
        "faults/torn_records_skipped": 0,
    }
    # Backend selection: a store path binds the campaign (keyed by its spec
    # hash) inside the SQLite store; anything else keeps the JSONL path.
    # Both expose the same append/load/truncate surface from here on.
    store: Optional[Union[ResultStore, BoundCampaign]] = None
    if results is not None:
        if is_store_path(results):
            store = BoundCampaign(CampaignStore(results), spec.spec_hash())
            store.begin(
                spec_dict=spec.to_dict(),
                cells=len(cells),
                workers=workers,
                resume=resume,
            )
        else:
            store = ResultStore(results)
    previous: Dict[str, Dict[str, Any]] = {}
    if resume:
        if store is None:
            raise ExperimentError("resume requires a results backend to resume from")
        for record in store.load():
            if record.get("cell_id") in cells_by_id:
                previous[record["cell_id"]] = record
        fault_counters["faults/torn_records_skipped"] += store.torn_records_skipped
    elif isinstance(store, ResultStore) and store.exists():
        # Without resume the file represents *this* run; appending to the
        # previous run's records would double-count every cell downstream.
        # (The store backend already started the campaign over in begin().)
        store.truncate()

    pending = [cell for cell in cells if cell.cell_id not in previous]
    total = len(pending)
    done = 0

    def finish(cell: CampaignCell, record: Dict[str, Any]) -> None:
        nonlocal done
        done += 1
        if store is not None:
            store.append(record)
        if progress is not None:
            progress(cell, record, done, total)

    # Failure disposition: quarantine mode records the cell and moves on;
    # fail mode remembers the first error, which is re-raised only after
    # the campaign has drained and the manifest sidecar is on disk.
    first_error: Optional[BaseException] = None
    quarantined: List[Dict[str, Any]] = []

    def dispose_failure(cell: CampaignCell, exc: BaseException, attempts: int) -> None:
        nonlocal first_error
        if policy.quarantines:
            fault_counters["faults/quarantined_cells"] += 1
            quarantined.append(
                {
                    "cell_id": cell.cell_id,
                    "index": cell.index,
                    "topology": cell.topology,
                    "scheme": cell.scheme,
                    "scenario_family": cell.scenario.family,
                    "seed": cell.seed,
                    "error_type": type(exc).__name__,
                    "error": str(exc),
                    "attempts": attempts,
                }
            )
        elif first_error is None:
            first_error = exc

    def fold_info(info: Dict[str, int]) -> None:
        fault_counters["faults/retries"] += info.get("retries", 0)
        fault_counters["faults/timeouts"] += info.get("timeouts", 0)

    # Bookkeeping is keyed by cell.index (unique by construction) rather
    # than cell_id, which content-hashes the inputs and could in principle
    # collide for equivalent cells.
    new_records: Dict[int, Dict[str, Any]] = {}
    if workers <= 1 or len(pending) <= 1:
        # Same failure semantics as the chunked parallel path below: cells
        # are independent, so one failing cell must not stop its siblings'
        # records from being computed and flushed — the first error is
        # re-raised only after the campaign has drained, and a resumed run
        # then only redoes the failed cells.
        for cell in pending:
            status, payload, info = _run_cell_attempts(cell, cache_str, policy)
            fold_info(info)
            if status == "error":
                dispose_failure(cell, payload, info["attempts"])
                continue
            new_records[cell.index] = payload
            finish(cell, payload)
    else:
        # Chunked dispatch: one future per chunk of (topology-grouped) cells
        # instead of one per cell, with per-worker persistent engine reuse
        # across a chunk.  Records are still flushed to the store in cell
        # order even though chunks complete out of order, so parallel and
        # serial runs produce identical files.
        # position -> (cell, record), or None for a failed cell (the flush
        # loop skips the sentinel instead of stalling on the gap).
        buffered: Dict[int, Optional[Tuple[CampaignCell, Dict[str, Any]]]] = {}
        next_position = 0
        positions = {cell.index: position for position, cell in enumerate(pending)}
        chunks = chunk_cells(pending, workers)
        active_topologies = tuple(dict.fromkeys(cell.topology for cell in pending))
        max_workers = min(workers, len(chunks))

        def make_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_worker_init,
                initargs=(active_topologies, telemetry.enabled()),
            )

        def flush_ready() -> None:
            nonlocal next_position
            while next_position in buffered:
                ready = buffered.pop(next_position)
                if ready is not None:
                    finish(*ready)
                next_position += 1

        Group = Tuple[List[CampaignCell], List[int]]

        def process_envelopes(group: Group, envelopes: List[Tuple]) -> None:
            group_cells, bases = group
            for cell, base, (status, payload, info) in zip(
                group_cells, bases, envelopes
            ):
                fold_info(info)
                if status == "error":
                    # A sentinel keeps the in-order flush advancing past the
                    # failed cell — completed records that sort after it
                    # must still reach the store.
                    buffered[positions[cell.index]] = None
                    dispose_failure(cell, payload, info["attempts"])
                    continue
                new_records[cell.index] = payload
                buffered[positions[cell.index]] = (cell, payload)
            flush_ready()

        def submit(pool: ProcessPoolExecutor, group: Group):
            return pool.submit(_run_cell_chunk, group[0], cache_str, policy, group[1])

        # Two dispatch regimes.  Normal: every chunk in flight at once.
        # Recovery (after a pool crash): the doomed groups re-dispatch ONE
        # AT A TIME — `BrokenProcessPool` dooms every in-flight future, so
        # solo dispatch is the only way to attribute a crash to a group,
        # and a crashing multi-cell group bisects down to the poison cell.
        normal_queue: deque = deque((list(chunk), [0] * len(chunk)) for chunk in chunks)
        recovery_queue: deque = deque()
        in_flight: Dict[Any, Group] = {}
        rebuilds = 0
        pool = make_pool()
        try:
            while normal_queue or recovery_queue or in_flight:
                crashed_groups: List[Group] = []
                broken = False
                try:
                    if recovery_queue:
                        if not in_flight:
                            group = recovery_queue.popleft()
                            in_flight[submit(pool, group)] = group
                    else:
                        while normal_queue:
                            group = normal_queue.popleft()
                            in_flight[submit(pool, group)] = group
                except BrokenProcessPool:
                    # The pool died between submissions (e.g. an initializer
                    # crash); the unsubmitted group is doomed-by-association.
                    broken = True
                    crashed_groups.append(group)
                if in_flight and not broken:
                    finished, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
                    for future in finished:
                        group = in_flight.pop(future)
                        try:
                            process_envelopes(group, future.result())
                        except BrokenProcessPool:
                            broken = True
                            crashed_groups.append(group)
                if not broken:
                    continue
                # A worker died.  Every in-flight future of a broken pool
                # completes immediately: harvest the ones that finished
                # before the crash, doom the rest.
                if in_flight:
                    wait(set(in_flight))
                    for future, group in list(in_flight.items()):
                        try:
                            process_envelopes(group, future.result())
                        except BrokenProcessPool:
                            crashed_groups.append(group)
                    in_flight.clear()
                rebuilds += 1
                fault_counters["faults/pool_rebuilds"] += 1
                if rebuilds > policy.max_pool_rebuilds:
                    raise ExperimentError(
                        f"worker pool died {rebuilds} times; giving up"
                        f" (max_pool_rebuilds={policy.max_pool_rebuilds})"
                    )
                pool.shutdown(wait=False)
                pool = make_pool()
                if len(crashed_groups) == 1 and len(crashed_groups[0][0]) == 1:
                    # Solo dispatch of a single cell crashed: definitive
                    # attribution.  The crash consumes one retry attempt.
                    [poison], [base] = crashed_groups[0]
                    attempt = base + 1
                    if attempt <= policy.max_retries:
                        fault_counters["faults/retries"] += 1
                        time.sleep(policy.backoff_seconds(poison.cell_id, attempt))
                        recovery_queue.appendleft(([poison], [attempt]))
                    else:
                        buffered[positions[poison.index]] = None
                        dispose_failure(
                            poison,
                            WorkerCrashError(
                                f"worker process died while running cell"
                                f" {poison.cell_id} (attempt {attempt})"
                            ),
                            attempt,
                        )
                        flush_ready()
                else:
                    # Ambiguous: several groups were in flight.  Re-dispatch
                    # them solo, bisecting multi-cell groups so repeated
                    # crashes converge on the poison cell.
                    for group_cells, bases in crashed_groups:
                        if len(group_cells) <= 1:
                            recovery_queue.append((group_cells, bases))
                        else:
                            mid = (len(group_cells) + 1) // 2
                            recovery_queue.append((group_cells[:mid], bases[:mid]))
                            recovery_queue.append((group_cells[mid:], bases[mid:]))
        finally:
            pool.shutdown(wait=True)

    ordered: List[Dict[str, Any]] = []
    executed_ids = set()
    for cell in cells:
        record = new_records.get(cell.index)
        if record is not None:
            executed_ids.add(cell.cell_id)
        else:
            record = previous.get(cell.cell_id)
        if record is not None:
            ordered.append(record)
    # Quarantine entries are sorted into cell order and rewritten as a
    # whole at the end of the run, so serial and parallel runs of the same
    # campaign leave identical sidecars (quarantined cells never enter the
    # results store — a resumed run re-attempts them).
    quarantined.sort(key=lambda entry: entry["index"])
    quarantine_path: Optional[Path] = None
    if isinstance(store, ResultStore) and policy.quarantines:
        quarantine_store = ResultStore(quarantine_path_for(store.path))
        quarantine_store.truncate()
        for entry in quarantined:
            quarantine_store.append(entry)
        quarantine_path = quarantine_store.path
    result = CampaignResult(
        spec=spec,
        records=ordered,
        executed=len(new_records),
        skipped=len(previous),
        elapsed_s=time.perf_counter() - started,
        results_path=store.path if store is not None else None,
        store=store.store if isinstance(store, BoundCampaign) else None,
        executed_cell_ids=executed_ids,
        workers=workers,
        quarantined=quarantined,
        quarantine_path=quarantine_path,
        fault_counters={k: v for k, v in fault_counters.items() if v},
    )
    if store is not None:
        # The manifest merges over *all* records (resumed included), so a
        # resumed campaign rewrites a manifest covering the whole campaign.
        # Written before the first-error re-raise below: a failing cell
        # must not lose the telemetry of the records that did complete.
        manifest = telemetry_manifest(result)
        if isinstance(store, BoundCampaign):
            # The store backend has no sidecars: the manifest lands in the
            # telemetry table and the quarantine entries in theirs.
            store.finalize(
                executed=result.executed,
                skipped=result.skipped,
                elapsed_s=result.elapsed_s,
                manifest=manifest,
                quarantined=quarantined if policy.quarantines else None,
                status="failed" if first_error is not None else "done",
            )
        else:
            result.telemetry_path = telemetry.write_manifest(
                manifest, telemetry.manifest_path_for(store.path)
            )
    if first_error is not None:
        raise first_error
    return result
