"""Deterministic fault-injection harness for campaign chaos testing.

The campaign runner claims to survive worker crashes, cell hangs, poison
cells and torn writes; this module makes those failures *reproducible* so
the chaos suite can assert the claim.  A :class:`FaultPlan` is a list of
:class:`FaultSpec` entries, each naming an injection **site** (a checkpoint
compiled into the runner), a fault **kind**, and a deterministic trigger —
either an explicit cell-id match or a seeded probability hashed from the
``(seed, site, key, attempt)`` coordinates, so the same plan fires the same
faults on every rerun regardless of process layout or timing.

Sites (where :func:`checkpoint` is called from):

* ``cell-body``     — start of :func:`~repro.runner.executor.run_cell`
  (key: the cell id, attempt: the retry attempt number);
* ``chunk-envelope`` — before a worker returns its chunk-result envelope
  (key: the first cell id of the chunk);
* ``store-append``  — before :meth:`ResultStore.append` writes a record
  (key: the record's cell id);
* ``cache-read``    — before :meth:`ArtifactCache.load_embedding` reads an
  artifact (key: the artifact's content-addressed key);
* ``serve-request`` — before a ``repro serve`` request dispatches to its
  op handler (key: the op name);
* ``job-journal``   — before a ``submit`` request journals its job row
  (key: the campaign id);
* ``job-dispatch``  — in the daemon's job worker, after a job is claimed
  and marked ``running`` but before any cell executes (key: the job id,
  attempt: the job's prior attempt count — ``max_attempt=1`` makes a crash
  here fire once and let the restarted daemon recover cleanly).

Kinds:

* ``exception``     — raise :class:`~repro.errors.InjectedFault`;
* ``crash``         — ``SIGKILL`` the current process (a worker OOM-kill, or
  the whole campaign when injected at a parent-side site);
* ``hang``          — sleep ``seconds`` (exercises the cell-timeout reaper);
* ``partial-write`` — returned to the call site, which simulates a torn
  write (store: half a line then death; cache: truncate the artifact).

Plans are configured through the ``REPRO_FAULTS`` environment variable — the
cross-process contract that reaches worker processes however they start —
or programmatically via :func:`install`.  The grammar is ``;``-separated
faults of ``,``-separated ``key=value`` fields::

    REPRO_FAULTS="site=cell-body,kind=exception,cells=3f2a,max_attempt=1"
    REPRO_FAULTS="site=store-append,kind=partial-write,skip=3"
    REPRO_FAULTS="site=cell-body,kind=hang,p=0.25,seed=7,seconds=5"

Fields: ``site`` (required), ``kind`` (required), ``p`` (probability,
default 1), ``seed`` (hash seed for ``p < 1``), ``cells`` (``+``-separated
cell-id prefixes to match), ``times`` (max fires per process), ``skip``
(ignore the first N eligible hits, per process), ``max_attempt`` (fire only
while ``attempt < max_attempt`` — a transient fault that retries cure), and
``seconds`` (hang duration).  ``times``/``skip`` counters are per-process:
deterministic for parent-side sites and for serial runs; parallel plans
should prefer ``cells=``/``max_attempt`` triggers, which are stateless.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ExperimentError, InjectedFault

#: Injection sites compiled into the campaign runner and the serve daemon.
SITES: Tuple[str, ...] = (
    "cell-body",
    "chunk-envelope",
    "store-append",
    "cache-read",
    "serve-request",
    "job-journal",
    "job-dispatch",
)

#: Fault kinds the harness can act out.
KINDS: Tuple[str, ...] = ("exception", "crash", "hang", "partial-write")

#: Environment variable holding the active plan (the cross-process contract).
ENV_VAR = "REPRO_FAULTS"


def fault_fraction(seed: int, site: str, key: Optional[str], attempt: int) -> float:
    """A deterministic value in ``[0, 1)`` for a probability decision.

    Hashed from every coordinate of the injection point, so the decision is
    identical across reruns, serial vs parallel layouts, and resume — the
    same property the campaign's own per-cell seeds rely on.
    """
    text = f"{seed}|{site}|{key or ''}|{attempt}"
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultSpec:
    """One fault: where it fires, what it does, and its deterministic trigger."""

    site: str
    kind: str
    probability: float = 1.0
    seed: int = 0
    cells: Tuple[str, ...] = ()
    times: Optional[int] = None
    skip: int = 0
    max_attempt: Optional[int] = None
    seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ExperimentError(
                f"unknown fault site {self.site!r}; expected one of {SITES}"
            )
        if self.kind not in KINDS:
            raise ExperimentError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ExperimentError(
                f"fault probability must be within [0, 1], got {self.probability!r}"
            )

    def matches(self, site: str, key: Optional[str], attempt: int) -> bool:
        """The stateless part of the trigger (no times/skip accounting)."""
        if site != self.site:
            return False
        if self.cells:
            if key is None or not any(key.startswith(prefix) for prefix in self.cells):
                return False
        if self.max_attempt is not None and attempt >= self.max_attempt:
            return False
        if self.probability >= 1.0:
            return True
        return fault_fraction(self.seed, site, key, attempt) < self.probability

    def describe(self) -> str:
        parts = [f"site={self.site}", f"kind={self.kind}"]
        if self.probability < 1.0:
            parts.append(f"p={self.probability:g}")
            parts.append(f"seed={self.seed}")
        if self.cells:
            parts.append("cells=" + "+".join(self.cells))
        if self.times is not None:
            parts.append(f"times={self.times}")
        if self.skip:
            parts.append(f"skip={self.skip}")
        if self.max_attempt is not None:
            parts.append(f"max_attempt={self.max_attempt}")
        if self.kind == "hang":
            parts.append(f"seconds={self.seconds:g}")
        return ",".join(parts)


def parse_fault(text: str) -> FaultSpec:
    """One ``key=value,...`` fault clause into a :class:`FaultSpec`."""
    fields: Dict[str, str] = {}
    for pair in text.split(","):
        pair = pair.strip()
        if not pair:
            continue
        if "=" not in pair:
            raise ExperimentError(
                f"cannot parse fault field {pair!r} in {text!r}; use key=value"
            )
        name, value = pair.split("=", 1)
        fields[name.strip()] = value.strip()
    unknown = sorted(
        set(fields)
        - {"site", "kind", "p", "seed", "cells", "times", "skip", "max_attempt", "seconds"}
    )
    if unknown:
        raise ExperimentError(f"unknown fault fields {unknown!r} in {text!r}")
    if "site" not in fields or "kind" not in fields:
        raise ExperimentError(f"fault spec {text!r} needs at least site= and kind=")
    try:
        return FaultSpec(
            site=fields["site"],
            kind=fields["kind"],
            probability=float(fields.get("p", 1.0)),
            seed=int(fields.get("seed", 0)),
            cells=tuple(
                prefix for prefix in fields.get("cells", "").split("+") if prefix
            ),
            times=int(fields["times"]) if "times" in fields else None,
            skip=int(fields.get("skip", 0)),
            max_attempt=int(fields["max_attempt"]) if "max_attempt" in fields else None,
            seconds=float(fields.get("seconds", 30.0)),
        )
    except ValueError as exc:
        raise ExperimentError(f"bad numeric field in fault spec {text!r}: {exc}")


@dataclass
class FaultPlan:
    """An ordered list of fault specs plus their per-process fire accounting."""

    specs: Tuple[FaultSpec, ...] = ()
    _eligible: Dict[int, int] = field(default_factory=dict, repr=False)
    _fired: Dict[int, int] = field(default_factory=dict, repr=False)

    def decide(self, site: str, key: Optional[str], attempt: int) -> Optional[FaultSpec]:
        """The first spec that fires at this checkpoint, with accounting."""
        for index, spec in enumerate(self.specs):
            if not spec.matches(site, key, attempt):
                continue
            seen = self._eligible.get(index, 0) + 1
            self._eligible[index] = seen
            if seen <= spec.skip:
                continue
            fired = self._fired.get(index, 0)
            if spec.times is not None and fired >= spec.times:
                continue
            self._fired[index] = fired + 1
            return spec
        return None

    def describe(self) -> str:
        return ";".join(spec.describe() for spec in self.specs)


def parse_plan(text: str) -> Optional[FaultPlan]:
    """A full ``REPRO_FAULTS`` value into a plan (``None`` when empty)."""
    clauses = [clause.strip() for clause in text.split(";") if clause.strip()]
    if not clauses:
        return None
    return FaultPlan(specs=tuple(parse_fault(clause) for clause in clauses))


# ----------------------------------------------------------------------
# the active plan (None == no injection, the production fast path)
# ----------------------------------------------------------------------
_PLAN: Optional[FaultPlan] = None
_LOADED = False


def active_plan() -> Optional[FaultPlan]:
    """The process's fault plan, lazily loaded from ``REPRO_FAULTS``."""
    global _PLAN, _LOADED
    if not _LOADED:
        _PLAN = parse_plan(os.environ.get(ENV_VAR, ""))
        _LOADED = True
    return _PLAN


def install(plan: Optional[FaultPlan]) -> None:
    """Install a plan programmatically (``None`` disables injection).

    In-process only: worker processes load their plan from ``REPRO_FAULTS``
    via :func:`reload_from_env`, so cross-process chaos tests must configure
    the environment variable instead.
    """
    global _PLAN, _LOADED
    _PLAN = plan
    _LOADED = True


def reload_from_env() -> None:
    """Drop the cached plan; the next checkpoint re-reads ``REPRO_FAULTS``.

    Worker initializers call this so fork-started workers shed the parent's
    fire accounting (and spawn-started workers pick the plan up at all).
    """
    global _PLAN, _LOADED
    _PLAN = None
    _LOADED = False


def crash_now() -> None:  # pragma: no cover - the caller dies
    """Die the way an OOM-killed worker dies: SIGKILL, no cleanup."""
    os.kill(os.getpid(), signal.SIGKILL)


def checkpoint(site: str, key: Optional[str] = None, attempt: int = 0) -> Optional[FaultSpec]:
    """Run the fault decision for one injection site.

    ``exception``/``crash``/``hang`` faults are acted out here; a
    ``partial-write`` fault is *returned* for the call site to simulate
    (what "partially written" means differs per site).  Returns ``None`` —
    at the cost of one module-global load — when no plan is installed.
    """
    plan = _PLAN if _LOADED else active_plan()
    if plan is None:
        return None
    spec = plan.decide(site, key, attempt)
    if spec is None:
        return None
    if spec.kind == "exception":
        raise InjectedFault(
            f"injected fault at {site} (key={key!r}, attempt={attempt})"
        )
    if spec.kind == "crash":  # pragma: no cover - the process dies
        crash_now()
    if spec.kind == "hang":
        time.sleep(spec.seconds)
        return None
    return spec  # partial-write: interpreted by the call site
