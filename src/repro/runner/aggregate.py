"""Merging campaign cell records into the existing metrics shapes.

Cell records are deliberately flat JSON; these helpers lift them back into
the result types the rest of the codebase (benchmark drivers, CLI renderers,
``assert_paper_shape``) already understands:

* pooled stretch CCDF curves per scheme (:func:`merged_ccdf`) — exact
  pooling: each cell stores the count of stretch values behind its curve, so
  the merged ``P(Stretch > x)`` is the count-weighted average;
* a :class:`~repro.experiments.stretch.StretchExperimentResult` rebuilt from
  the per-sample rows (:func:`stretch_result_from_records`);
* :class:`~repro.core.coverage.CoverageReport` objects summed per
  (topology, scheme) (:func:`coverage_reports`);
* :class:`~repro.metrics.overhead.OverheadRow` tables per topology
  (:func:`overhead_rows`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.stretch import StretchExperimentResult
from repro.core.coverage import CoverageReport
from repro.metrics.ccdf import ccdf_curve, default_stretch_thresholds, distribution_summary
from repro.metrics.overhead import OverheadRow
from repro.metrics.stretch import StretchSample
from repro.topologies.corpus import TOPOLOGY_FILE_SUFFIXES

Record = Dict[str, Any]


def records_for(
    records: Sequence[Record],
    topology: Optional[str] = None,
    scheme: Optional[str] = None,
) -> List[Record]:
    """Filter records by topology and/or scheme registry key."""
    selected = list(records)
    if topology is not None:
        selected = [r for r in selected if r["topology"] == topology]
    if scheme is not None:
        selected = [r for r in selected if r["scheme"] == scheme]
    return selected


def scenario_family(record: Record) -> str:
    """The scenario family a record belongs to.

    Built-in generators aggregate under their kind (``single-link``,
    ``multi-link``, ``node``); model cells aggregate under the model name, so
    every registered model contributes its own row to per-family output.

    New records carry the family directly (``ScenarioSpec.family`` stamped by
    the executor); records from older stores fall back to deriving it from
    the scenario payload.
    """
    family = record.get("scenario_family")
    if family:
        return family
    scenario = record["scenario"]
    if scenario.get("model"):
        return scenario["model"]
    if scenario["kind"] == "multi-link":
        return f'{scenario.get("failures", 1)}-link'
    return scenario["kind"]


def families_in(records: Sequence[Record]) -> List[str]:
    """Scenario families present in the records, in first-seen order."""
    seen: List[str] = []
    for record in records:
        family = scenario_family(record)
        if family not in seen:
            seen.append(family)
    return seen


def topologies_in(records: Sequence[Record]) -> List[str]:
    """Topologies present in the records, in first-seen order."""
    seen: List[str] = []
    for record in records:
        if record["topology"] not in seen:
            seen.append(record["topology"])
    return seen


def scheme_label(record: Record, records: Sequence[Record]) -> str:
    """Display label of a record's scheme within a record set.

    When the set sweeps more than one discriminator kind, the discriminator
    is part of the label — otherwise cells that differ only in their DD
    function would silently pool under one name.
    """
    discriminators = {r.get("discriminator") for r in records}
    if len(discriminators) <= 1:
        return record["scheme_name"]
    return f'{record["scheme_name"]} [{record.get("discriminator")}]'


def _scheme_labels(records: Sequence[Record]) -> List[str]:
    """:func:`scheme_label` for every record, deciding the format once.

    The multi-discriminator check scans the whole record set; calling
    :func:`scheme_label` per record would redo that scan per record
    (quadratic on corpus-scale campaigns).
    """
    multi = len({r.get("discriminator") for r in records}) > 1
    if not multi:
        return [record["scheme_name"] for record in records]
    return [
        f'{record["scheme_name"]} [{record.get("discriminator")}]'
        for record in records
    ]


def merged_ccdf(
    records: Sequence[Record], topology: Optional[str] = None
) -> Dict[str, List[Tuple[float, float]]]:
    """Pooled ``P(Stretch > x | path)`` per scheme across cells.

    Pooling is exact: every cell carries ``n_stretch`` (how many stretch
    values produced its curve), and the pooled probability at each threshold
    is the count-weighted average of the per-cell probabilities.
    """
    selected = records_for(records, topology)
    order: List[str] = []
    weights: Dict[str, int] = {}
    sums: Dict[str, Dict[float, float]] = {}
    for record, name in zip(selected, _scheme_labels(selected)):
        if name not in order:
            order.append(name)
        count = record["payload"]["n_stretch"]
        if count == 0:
            continue
        weights[name] = weights.get(name, 0) + count
        accumulator = sums.setdefault(name, {})
        for x, probability in record["payload"]["ccdf"]:
            accumulator[x] = accumulator.get(x, 0.0) + count * probability
    curves: Dict[str, List[Tuple[float, float]]] = {}
    for name in order:
        accumulator = sums.get(name)
        if accumulator is None:
            # A scheme that delivered nothing still belongs in the figure —
            # as an all-zero curve, not as a silently missing series.
            curves[name] = [(x, 0.0) for x in default_stretch_thresholds()]
            continue
        total = weights[name]
        curves[name] = [(x, accumulator[x] / total) for x in sorted(accumulator)]
    return curves


def _samples_from_record(record: Record, name: Optional[str] = None) -> List[StretchSample]:
    rows = record["payload"].get("samples")
    if rows is None:
        raise ExperimentError(
            "records were produced with record_samples=False; per-sample "
            "reconstruction is not possible"
        )
    if name is None:
        name = record["scheme_name"]
    # Consecutive rows of one scenario share the failed-links list object
    # (and JSONL-loaded rows repeat equal lists), so the tuple conversion is
    # cached across the run of identical values.
    last_links = None
    last_tuple: tuple = ()
    samples = []
    append = samples.append
    for row in rows:
        links = row[2]
        if links is not last_links:
            last_tuple = tuple(links)
            last_links = links
        append(
            StretchSample(
                name,
                row[0],
                row[1],
                last_tuple,
                row[3],
                row[4],
                row[5],
                row[6],
                row[7],
            )
        )
    return samples


def stretch_result_from_records(
    records: Sequence[Record], topology: Optional[str] = None
) -> StretchExperimentResult:
    """Rebuild a :class:`StretchExperimentResult` from cell records.

    Requires records produced with ``record_samples=True`` (the default).
    When cells of several scenario specs are present for the topology their
    samples are pooled and the scenario counts summed.
    """
    selected = records_for(records, topology)
    if topology is None:
        topologies = topologies_in(selected)
        if len(topologies) != 1:
            raise ExperimentError(
                f"records cover topologies {topologies!r}; pass topology= to select one"
            )
        topology = topologies[0]
    if not selected:
        raise ExperimentError(f"no records for topology {topology!r}")

    by_scheme: Dict[str, List[StretchSample]] = {}
    scenario_cells: Dict[Tuple[object, ...], Record] = {}
    for record, name in zip(selected, _scheme_labels(selected)):
        by_scheme.setdefault(name, []).extend(_samples_from_record(record, name))
        scenario_key = tuple(sorted(record["scenario"].items()))
        scenario_cells.setdefault(scenario_key, record)

    scenarios = sum(r["payload"]["scenarios"] for r in scenario_cells.values())
    measured_pairs = sum(r["payload"]["measured_pairs"] for r in scenario_cells.values())
    first = selected[0]
    result = StretchExperimentResult(
        topology=load_name(first),
        failures_per_scenario=first["payload"]["failures_per_scenario"],
        scenarios=scenarios,
        measured_pairs=measured_pairs,
    )
    thresholds = default_stretch_thresholds()
    for name, samples in by_scheme.items():
        values = [s.stretch for s in samples if s.stretch is not None]
        result.samples[name] = samples
        result.ccdf[name] = ccdf_curve(values, thresholds)
        result.summary[name] = distribution_summary(values)
        delivered = sum(1 for s in samples if s.delivered)
        result.delivery_ratio[name] = delivered / len(samples) if samples else 1.0
    return result


def load_name(record: Record) -> str:
    """The display name of a record's topology.

    File paths reduce to their stem; corpus specs (which may contain dots
    inside parameter values, e.g. ``waxman:alpha=0.6,...``) pass through
    unchanged.
    """
    topology = record["topology"].replace("\\", "/").rsplit("/", 1)[-1]
    for suffix in TOPOLOGY_FILE_SUFFIXES:
        if topology.lower().endswith(suffix):
            return topology[: -len(suffix)]
    return topology


def coverage_reports(
    records: Sequence[Record],
) -> Dict[Tuple[str, str], CoverageReport]:
    """Summed :class:`CoverageReport` per (topology, scheme display name)."""
    reports: Dict[Tuple[str, str], CoverageReport] = {}
    for record, name in zip(records, _scheme_labels(records)):
        key = (record["topology"], name)
        report = reports.setdefault(key, CoverageReport(scheme=name))
        coverage = record["payload"]["coverage"]
        report.attempts += coverage["attempts"]
        report.delivered += coverage["delivered"]
        report.dropped += coverage["dropped"]
        report.looped += coverage["looped"]
        report.unreachable_pairs_skipped += coverage["unreachable_pairs_skipped"]
        for reason, count in coverage["drop_reasons"].items():
            report.drop_reasons[reason] = report.drop_reasons.get(reason, 0) + count
    return reports


def overhead_rows(records: Sequence[Record]) -> Dict[str, List[OverheadRow]]:
    """Per-topology overhead tables from the per-cell overhead figures.

    Overheads are properties of (topology, scheme), not of the scenario, so
    duplicate cells collapse to one row; rows keep first-seen scheme order.
    """
    tables: Dict[str, List[OverheadRow]] = {}
    seen: set = set()
    for record, name in zip(records, _scheme_labels(records)):
        key = (record["topology"], name)
        if key in seen:
            continue
        seen.add(key)
        payload = record["payload"]
        tables.setdefault(record["topology"], []).append(
            OverheadRow(
                scheme=name,
                header_bits=payload["header_bits"],
                header_bits_note=payload.get(
                    "header_bits_note", "measured by campaign runner"
                ),
                memory_entries=payload["memory_entries"],
                online_computation=payload.get("online_computation", 0),
            )
        )
    return tables


def _pooled_totals(
    selected: Sequence[Record], keys: Sequence[Tuple[object, ...]]
) -> Dict[Tuple[object, ...], Dict[str, float]]:
    """Accumulate poolable payload figures per grouping key (one per record)."""
    totals: Dict[Tuple[object, ...], Dict[str, float]] = {}
    for record, key in zip(selected, keys):
        payload = record["payload"]
        if key not in totals:
            totals[key] = {
                "scenarios": 0.0,
                "samples": 0.0,
                "delivered": 0.0,
                "stretch_sum": 0.0,
                "n_stretch": 0.0,
                "max": 0.0,
                "attempts": 0.0,
                "covered": 0.0,
            }
        entry = totals[key]
        entry["scenarios"] += payload["scenarios"]
        entry["samples"] += payload["n_samples"]
        entry["delivered"] += payload["delivered_samples"]
        entry["stretch_sum"] += payload["stretch_summary"]["mean"] * payload["n_stretch"]
        entry["n_stretch"] += payload["n_stretch"]
        entry["max"] = max(entry["max"], payload["stretch_summary"]["max"])
        entry["attempts"] += payload["coverage"]["attempts"]
        entry["covered"] += payload["coverage"]["delivered"]
    return totals


def _totals_columns(entry: Dict[str, float]) -> List[object]:
    """The rendered (delivery, mean, max, coverage) columns of one group."""
    delivery = entry["delivered"] / entry["samples"] if entry["samples"] else 1.0
    mean = entry["stretch_sum"] / entry["n_stretch"] if entry["n_stretch"] else 0.0
    coverage = entry["covered"] / entry["attempts"] if entry["attempts"] else 1.0
    return [
        f"{delivery:.3f}",
        f"{mean:.2f}",
        f"{entry['max']:.2f}",
        f"{100.0 * coverage:.2f}%",
    ]


def summary_rows(
    records: Sequence[Record], topology: Optional[str] = None
) -> List[List[object]]:
    """Per-scheme summary table rows (delivery, pooled mean/max stretch)."""
    selected = records_for(records, topology)
    keys = [(name,) for name in _scheme_labels(selected)]
    totals = _pooled_totals(selected, keys)
    return [
        [name] + _totals_columns(totals[(name,)])
        for (name,) in dict.fromkeys(keys)
    ]


def topology_summary_rows(records: Sequence[Record]) -> List[List[object]]:
    """Per-(topology, scheme) summary rows spanning a whole corpus sweep.

    The cross-topology companion of :func:`summary_rows`: one row per
    (topology, scheme display name) pair in first-seen order, so a campaign
    sharded over dozens of corpus topologies aggregates into one table in a
    single pass over the records instead of one :func:`records_for` scan per
    topology.
    """
    keys = [
        (record["topology"], name)
        for record, name in zip(records, _scheme_labels(records))
    ]
    totals = _pooled_totals(records, keys)
    rows: List[List[object]] = []
    for topology, name in dict.fromkeys(keys):
        entry = totals[(topology, name)]
        rows.append(
            [topology, name, f"{int(entry['scenarios'])}"]
            + _totals_columns(entry)
        )
    return rows


def family_summary_rows(
    records: Sequence[Record], topology: Optional[str] = None
) -> List[List[object]]:
    """Per-(scenario family, scheme) summary rows.

    A campaign sweeping several scenario generators — built-in kinds and
    registered models alike — gets one row per (family, scheme) pair, so the
    schemes can be compared *within* each failure regime instead of pooled
    across regimes with very different severities.
    """
    selected = records_for(records, topology)
    keys = [
        (scenario_family(record), name)
        for record, name in zip(selected, _scheme_labels(selected))
    ]
    totals = _pooled_totals(selected, keys)
    rows: List[List[object]] = []
    for family, name in dict.fromkeys(keys):
        entry = totals[(family, name)]
        rows.append(
            [family, name, f"{int(entry['scenarios'])}"]
            + _totals_columns(entry)
        )
    return rows
