"""Campaign runner: parallel experiment sweeps over the evaluation grid.

The paper's evaluation is a grid of (topology x scheme x failure scenario)
runs.  This subsystem turns that grid into a first-class object:

* :mod:`repro.runner.spec` — declarative :class:`CampaignSpec` sweeps with
  deterministic per-cell seeds;
* :mod:`repro.runner.cache` — a content-addressed on-disk cache of
  offline-stage artifacts (cellular embeddings), shared across processes;
* :mod:`repro.runner.executor` — a :mod:`concurrent.futures`-based parallel
  executor streaming into a results backend (the SQLite campaign store of
  :mod:`repro.store`, or checksummed JSONL) with resume-from-partial;
* :mod:`repro.runner.policy` — the fault-tolerance policy (per-cell
  timeouts, bounded retries with deterministic backoff, quarantine);
* :mod:`repro.runner.faults` — a deterministic fault-injection harness for
  chaos-testing the executor (``REPRO_FAULTS``);
* :mod:`repro.runner.aggregate` — merges cell records back into the
  codebase's existing metrics shapes (stretch CCDFs, coverage reports,
  overhead tables).

Quickstart::

    from repro.runner import CampaignSpec, ScenarioSpec, run_campaign

    spec = CampaignSpec(
        topologies=("abilene", "geant"),
        schemes=("reconvergence", "fcp", "pr"),
        scenarios=(ScenarioSpec("single-link"),
                   ScenarioSpec("multi-link", failures=4, samples=20)),
    )
    handle = run_campaign(spec, workers=4, cache_dir=".repro-cache",
                          results="campaign.sqlite", resume=True)
    print(handle.merged_ccdf("abilene"))
    print(handle.query("scheme=pr topology=abilene"))
"""

from repro.runner.spec import (
    CampaignCell,
    CampaignSpec,
    ScenarioSpec,
    available_schemes,
    corpus_campaign_spec,
    figure2_campaign_spec,
    node_failure_campaign_spec,
    scenario_model_campaign_spec,
)
from repro.runner.cache import ArtifactCache, cached_embedding, topology_fingerprint
from repro.runner import aggregate, faults
from repro.runner.faults import FaultPlan, FaultSpec, parse_plan
from repro.runner.policy import ExecutionPolicy, quarantine_path_for, run_with_timeout
from repro.runner.aggregate import (
    coverage_reports,
    families_in,
    family_summary_rows,
    merged_ccdf,
    overhead_rows,
    scenario_family,
    stretch_result_from_records,
    summary_rows,
    topology_summary_rows,
)
from repro.runner.executor import (
    CampaignHandle,
    CampaignResult,
    ResultStore,
    build_scheme,
    generate_scenarios,
    load_topology,
    run_campaign,
    run_cell,
    telemetry_manifest,
)
from repro.store.database import CampaignStore
from repro.runner.bench import (
    check_ft_overhead,
    check_regression,
    check_throughput,
    run_bench,
)

__all__ = [
    "ArtifactCache",
    "CampaignCell",
    "CampaignHandle",
    "CampaignResult",
    "CampaignSpec",
    "CampaignStore",
    "ExecutionPolicy",
    "FaultPlan",
    "FaultSpec",
    "ResultStore",
    "ScenarioSpec",
    "available_schemes",
    "build_scheme",
    "cached_embedding",
    "check_ft_overhead",
    "check_regression",
    "check_throughput",
    "corpus_campaign_spec",
    "coverage_reports",
    "families_in",
    "family_summary_rows",
    "figure2_campaign_spec",
    "generate_scenarios",
    "load_topology",
    "merged_ccdf",
    "node_failure_campaign_spec",
    "overhead_rows",
    "parse_plan",
    "quarantine_path_for",
    "run_bench",
    "run_campaign",
    "run_cell",
    "run_with_timeout",
    "scenario_family",
    "scenario_model_campaign_spec",
    "stretch_result_from_records",
    "summary_rows",
    "telemetry_manifest",
    "topology_fingerprint",
    "topology_summary_rows",
]
