"""Declarative campaign specifications for experiment sweeps.

A campaign is the cross product of topologies x schemes x discriminators x
failure-scenario generators — exactly the grid behind the paper's evaluation
(Figure 2 is one topology row and one scenario column of it).  A
:class:`CampaignSpec` describes that grid declaratively; :meth:`CampaignSpec.cells`
expands it into independent :class:`CampaignCell` work units that the executor
can fan out across processes.

Two determinism rules make campaign results reproducible and comparable:

* The scenario-generation seed of a cell is derived from the campaign seed
  and the (topology, scenario) coordinates only — **not** from the scheme or
  discriminator — so every scheme is measured against the identical set of
  failure scenarios, as in Figure 2.
* A cell's identity (:attr:`CampaignCell.cell_id`) is a content hash of all
  the inputs that can change its result, which is what lets the executor
  resume a partially completed campaign and skip cells that are already done.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

from repro.errors import ExperimentError
from repro.routing.discriminator import DiscriminatorKind
from repro.scenarios import get_scenario_model
from repro.topologies.corpus import canonical_topology, topology_set

#: Scheme registry keys accepted by campaign specs, with their display names
#: (the ``name`` attribute of the scheme class the executor instantiates).
SCHEME_NAMES: Dict[str, str] = {
    "reconvergence": "Re-convergence",
    "fcp": "Failure-Carrying Packets",
    "pr": "Packet Re-cycling",
    "pr-1bit": "Packet Re-cycling (1-bit)",
    "lfa": "Loop-Free Alternates",
    "noprotection": "No protection",
}

#: Scheme keys whose offline stage includes a cellular embedding (and can
#: therefore be served from the artifact cache).
EMBEDDING_SCHEMES: Tuple[str, ...] = ("pr", "pr-1bit")

_SCENARIO_KINDS = ("single-link", "multi-link", "node", "model")
_COVERAGE_MODES = ("affected", "full")


def available_schemes() -> List[str]:
    """Scheme registry keys accepted by :class:`CampaignSpec`."""
    return list(SCHEME_NAMES)


def derive_seed(base: int, *parts: object) -> int:
    """A deterministic 63-bit seed from a base seed and a coordinate tuple."""
    text = "|".join(str(part) for part in (base,) + parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class ScenarioSpec:
    """One failure-scenario generator of a campaign.

    ``kind`` selects the generator: ``"single-link"`` enumerates every link
    failure, ``"multi-link"`` samples ``samples`` non-disconnecting
    combinations of ``failures`` simultaneous link failures, ``"node"``
    enumerates every single-node failure (all the node's links fail at once),
    and ``"model"`` delegates to a registered
    :class:`~repro.scenarios.base.ScenarioModel` named by ``model`` with the
    parameter overrides in ``params`` (see ``python -m repro scenarios list``
    and :meth:`ScenarioSpec.for_model`).
    """

    kind: str = "single-link"
    failures: int = 1
    samples: int = 50
    non_disconnecting: bool = True
    model: str = ""
    #: Canonicalised model parameters: the *fully resolved* parameter set
    #: (every declared parameter present), as a name-sorted tuple of pairs so
    #: the spec stays hashable and two spellings of the same parameters
    #: (defaults implicit or explicit, dict or tuple) compare equal.
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _SCENARIO_KINDS:
            raise ExperimentError(
                f"unknown scenario kind {self.kind!r}; expected one of {_SCENARIO_KINDS}"
            )
        if self.kind == "multi-link" and self.failures < 2:
            raise ExperimentError("multi-link scenarios need failures >= 2")
        if self.samples < 1:
            raise ExperimentError("at least one scenario sample is required")
        if self.kind == "model":
            if not self.model:
                raise ExperimentError(
                    'kind="model" scenario specs need a model name'
                )
            if self.failures != 1:
                # failures would silently feed key()/cell ids without the
                # model ever reading it, splitting identical regimes into
                # distinct grid cells.
                raise ExperimentError(
                    'kind="model" scenario specs configure failure counts '
                    "through model params, not failures="
                )
            # ``params`` may arrive as a mapping or as a tuple of pairs;
            # both canonicalise through dict().
            resolved = get_scenario_model(self.model).resolve_params(dict(self.params))
            object.__setattr__(
                self, "params", tuple(sorted(resolved.items()))
            )
        elif self.model or self.params:
            raise ExperimentError(
                f"scenario kind {self.kind!r} does not take a model or params "
                f'(got model={self.model!r}); use kind="model"'
            )

    @classmethod
    def for_model(
        cls,
        model: str,
        samples: int = 50,
        non_disconnecting: bool = True,
        **params: Any,
    ) -> "ScenarioSpec":
        """Convenience constructor: ``ScenarioSpec.for_model("srlg", group_size=4)``."""
        return cls(
            kind="model",
            samples=samples,
            non_disconnecting=non_disconnecting,
            model=model,
            params=tuple(sorted(params.items())),
        )

    @property
    def label(self) -> str:
        """Short human-readable label used in result tables."""
        if self.kind == "multi-link":
            return f"{self.failures}-link"
        if self.kind == "model":
            return self.model
        return self.kind

    @property
    def family(self) -> str:
        """The scenario family records aggregate under.

        Model specs aggregate under the model name; built-in kinds under
        their label, which keeps different multi-link severities ("2-link"
        vs "4-link") in separate rows — pooling across severities is exactly
        what per-family aggregation exists to avoid.
        """
        return self.model if self.kind == "model" else self.label

    def key(self) -> Tuple[object, ...]:
        """The coordinates that identify this generator inside a campaign.

        Legacy kinds keep their original 4-tuple so existing cell ids (and
        the JSONL records addressed by them) remain valid; model specs extend
        it with the model name and canonical parameters.
        """
        base: Tuple[object, ...] = (
            self.kind,
            self.failures,
            self.samples,
            self.non_disconnecting,
        )
        if self.kind == "model":
            return base + (self.model, self.params)
        return base

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "failures": self.failures,
            "samples": self.samples,
            "non_disconnecting": self.non_disconnecting,
        }
        if self.kind == "model":
            payload["model"] = self.model
            payload["params"] = dict(self.params)
        return payload

    #: Keys :meth:`from_dict` accepts; anything else means the payload was
    #: produced by an incompatible version and must fail loudly.
    _DICT_KEYS = frozenset(
        ("kind", "failures", "samples", "non_disconnecting", "model", "params")
    )

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScenarioSpec":
        unknown = sorted(set(payload) - cls._DICT_KEYS)
        if unknown:
            raise ExperimentError(
                f"unknown scenario spec keys {unknown!r}; "
                f"expected a subset of {sorted(cls._DICT_KEYS)}"
            )
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise ExperimentError(
                f"scenario spec 'params' must be a mapping, got {params!r}"
            )
        return cls(
            kind=payload.get("kind", "single-link"),
            failures=int(payload.get("failures", 1)),
            samples=int(payload.get("samples", 50)),
            non_disconnecting=bool(payload.get("non_disconnecting", True)),
            model=str(payload.get("model", "")),
            params=tuple(sorted(params.items())),
        )


@dataclass(frozen=True)
class CampaignCell:
    """One independent work unit of a campaign: a full point of the grid."""

    index: int
    topology: str
    scheme: str
    discriminator: str
    scenario: ScenarioSpec
    seed: int
    embedding_method: str = "auto"
    embedding_iterations: int = 200
    embedding_seed: int = 0
    coverage: str = "affected"
    record_samples: bool = True

    @property
    def cell_id(self) -> str:
        """Content hash of every input that can change this cell's result."""
        payload = (
            self.topology,
            self.scheme,
            self.discriminator,
            self.scenario.key(),
            self.seed,
            self.embedding_method,
            self.embedding_iterations,
            self.embedding_seed,
            self.coverage,
            self.record_samples,
        )
        digest = hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()
        return digest[:16]

    @property
    def label(self) -> str:
        return f"{self.topology}/{self.scheme}/{self.scenario.label}"


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep grid over the evaluation dimensions.

    ``topologies`` entries are corpus topology specs — registry names
    (``"abilene"``), parameterized synthetic instances
    (``"waxman:size=40,seed=3"``), committed zoo snapshots
    (``"nsfnet1991"``) — or paths to GraphML / edge-list files.  Corpus
    specs are canonicalised at construction (family lowercased, every
    declared parameter resolved, name-sorted), so two spellings of the same
    instance produce identical cell ids and cache keys; see
    :func:`repro.topologies.corpus.parse_topology_spec`.  ``schemes`` are
    keys of :data:`SCHEME_NAMES`;
    ``discriminators`` are :class:`~repro.routing.discriminator.DiscriminatorKind`
    values.  ``coverage`` selects which pairs are delivery-accounted:
    ``"affected"`` measures only pairs whose failure-free path broke (the
    Figure 2 conditioning), ``"full"`` measures every still-connected ordered
    pair (the repair-coverage conditioning of Section 4).
    """

    topologies: Tuple[str, ...]
    schemes: Tuple[str, ...] = ("reconvergence", "fcp", "pr")
    discriminators: Tuple[str, ...] = ("hop-count",)
    scenarios: Tuple[ScenarioSpec, ...] = (ScenarioSpec(),)
    seed: int = 1
    embedding_method: str = "auto"
    embedding_iterations: int = 200
    embedding_seed: int = 0
    coverage: str = "affected"
    record_samples: bool = True

    def __post_init__(self) -> None:
        def unique(values):
            # A grid axis is a set with an order; duplicate entries would
            # produce duplicate cells (same cell_id, double-counted results).
            return tuple(dict.fromkeys(values))

        # Canonicalising before dedup folds distinct spellings of the same
        # corpus instance ("WAXMAN:seed=3,size=40" vs the sorted,
        # default-resolved form) into one grid entry; file paths pass
        # through untouched.  Bad params of a *known* family raise here —
        # at spec construction — rather than inside a worker process.
        object.__setattr__(
            self,
            "topologies",
            unique(canonical_topology(entry) for entry in self.topologies),
        )
        object.__setattr__(self, "schemes", unique(self.schemes))
        object.__setattr__(self, "discriminators", unique(self.discriminators))
        object.__setattr__(self, "scenarios", unique(self.scenarios))
        if not self.topologies:
            raise ExperimentError("a campaign needs at least one topology")
        if not self.schemes:
            raise ExperimentError("a campaign needs at least one scheme")
        if not self.scenarios:
            raise ExperimentError("a campaign needs at least one scenario spec")
        unknown = [key for key in self.schemes if key not in SCHEME_NAMES]
        if unknown:
            raise ExperimentError(
                f"unknown scheme keys {unknown!r}; available: {available_schemes()}"
            )
        valid_kinds = {kind.value for kind in DiscriminatorKind}
        bad = [kind for kind in self.discriminators if kind not in valid_kinds]
        if bad:
            raise ExperimentError(
                f"unknown discriminator kinds {bad!r}; available: {sorted(valid_kinds)}"
            )
        if self.coverage not in _COVERAGE_MODES:
            raise ExperimentError(
                f"unknown coverage mode {self.coverage!r}; expected one of {_COVERAGE_MODES}"
            )

    # ------------------------------------------------------------------
    # grid expansion
    # ------------------------------------------------------------------
    def cells(self) -> List[CampaignCell]:
        """Expand the grid into cells, in deterministic presentation order.

        The scenario-generation seed depends only on (campaign seed,
        topology, scenario spec), so every scheme and discriminator is
        evaluated on the identical scenario set.
        """
        cells: List[CampaignCell] = []
        index = 0
        for topology in self.topologies:
            for scenario in self.scenarios:
                cell_seed = derive_seed(self.seed, topology, *scenario.key())
                for discriminator in self.discriminators:
                    for scheme in self.schemes:
                        cells.append(
                            CampaignCell(
                                index=index,
                                topology=topology,
                                scheme=scheme,
                                discriminator=discriminator,
                                scenario=scenario,
                                seed=cell_seed,
                                embedding_method=self.embedding_method,
                                embedding_iterations=self.embedding_iterations,
                                embedding_seed=self.embedding_seed,
                                coverage=self.coverage,
                                record_samples=self.record_samples,
                            )
                        )
                        index += 1
        return cells

    def cell_count(self) -> int:
        return (
            len(self.topologies)
            * len(self.scenarios)
            * len(self.discriminators)
            * len(self.schemes)
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "topologies": list(self.topologies),
            "schemes": list(self.schemes),
            "discriminators": list(self.discriminators),
            "scenarios": [scenario.to_dict() for scenario in self.scenarios],
            "seed": self.seed,
            "embedding_method": self.embedding_method,
            "embedding_iterations": self.embedding_iterations,
            "embedding_seed": self.embedding_seed,
            "coverage": self.coverage,
            "record_samples": self.record_samples,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CampaignSpec":
        return cls(
            topologies=tuple(payload["topologies"]),
            schemes=tuple(payload.get("schemes", ("reconvergence", "fcp", "pr"))),
            discriminators=tuple(payload.get("discriminators", ("hop-count",))),
            scenarios=tuple(
                ScenarioSpec.from_dict(item) for item in payload.get("scenarios", [{}])
            ),
            seed=int(payload.get("seed", 1)),
            embedding_method=payload.get("embedding_method", "auto"),
            embedding_iterations=int(payload.get("embedding_iterations", 200)),
            embedding_seed=int(payload.get("embedding_seed", 0)),
            coverage=payload.get("coverage", "affected"),
            record_samples=bool(payload.get("record_samples", True)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignSpec":
        return cls.from_json(Path(path).read_text())

    def spec_hash(self) -> str:
        """Content hash of the whole spec (stable across round trips)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# dispatch chunking
# ----------------------------------------------------------------------
def chunk_cells(
    cells: Sequence[CampaignCell],
    workers: int,
    chunks_per_worker: int = 2,
) -> List[List[CampaignCell]]:
    """Split cells into dispatch chunks, preferring topology boundaries.

    One future per *chunk* instead of one per cell cuts the pickling/IPC
    round trips of a parallel campaign, and keeping a topology's cells in
    one chunk lets the worker build that topology's graph and shortest-path
    engine once and reuse them across the whole chunk.  Chunks preserve cell
    order (the executor's in-order flush logic is unchanged) and target
    about ``workers * chunks_per_worker`` chunks so stragglers still
    balance.  A chunk only crosses a topology boundary when the current
    group is still under the target size, and an oversized single-topology
    group is split rather than starving the pool.
    """
    if not cells:
        return []
    target = max(1, -(-len(cells) // max(1, workers * chunks_per_worker)))
    chunks: List[List[CampaignCell]] = []
    group: List[CampaignCell] = [cells[0]]
    for cell in cells[1:]:
        boundary = cell.topology != group[-1].topology
        if (boundary and len(group) >= target) or len(group) >= 2 * target:
            chunks.append(group)
            group = [cell]
        else:
            group.append(cell)
    chunks.append(group)
    return chunks


# ----------------------------------------------------------------------
# canned specs for the paper's headline experiments
# ----------------------------------------------------------------------
def figure2_campaign_spec(panel: str, samples: int = 60, seed: int = 1) -> CampaignSpec:
    """The campaign equivalent of one Figure 2 panel.

    Single-failure panels enumerate every link failure; multi-failure panels
    sample ``samples`` non-disconnecting combinations with the panel's
    failure count, exactly as :func:`repro.experiments.stretch.figure2_panel`.
    """
    from repro.experiments.stretch import resolve_figure2_panel

    topology, failures = resolve_figure2_panel(panel)
    if failures == 1:
        scenario = ScenarioSpec(kind="single-link")
    else:
        scenario = ScenarioSpec(kind="multi-link", failures=failures, samples=samples)
    return CampaignSpec(topologies=(topology,), scenarios=(scenario,), seed=seed)


def node_failure_campaign_spec(
    topologies: Sequence[str], seed: int = 1
) -> CampaignSpec:
    """A campaign over every single-node failure of the given topologies."""
    return CampaignSpec(
        topologies=tuple(topologies),
        scenarios=(ScenarioSpec(kind="node"),),
        seed=seed,
    )


def corpus_campaign_spec(
    topology_set_name: str = "all",
    schemes: Sequence[str] = ("reconvergence", "fcp"),
    seed: int = 1,
) -> CampaignSpec:
    """A single-link-failure campaign sharded across a named corpus set.

    ``topology_set_name`` is one of ``zoo`` / ``synthetic`` / ``all`` (see
    :func:`repro.topologies.corpus.topology_set`).  The default schemes skip
    the embedding-bearing PR variants so the corpus-wide sweep stays cheap;
    pass ``schemes=("reconvergence", "fcp", "pr")`` for the full comparison.
    """
    return CampaignSpec(
        topologies=tuple(topology_set(topology_set_name)),
        schemes=tuple(schemes),
        scenarios=(ScenarioSpec(kind="single-link"),),
        seed=seed,
    )


def scenario_model_campaign_spec(
    topologies: Sequence[str],
    models: Sequence[str],
    samples: int = 20,
    seed: int = 1,
) -> CampaignSpec:
    """A campaign sweeping registered scenario models (default parameters)."""
    return CampaignSpec(
        topologies=tuple(topologies),
        scenarios=tuple(
            ScenarioSpec.for_model(model, samples=samples) for model in models
        ),
        seed=seed,
    )
