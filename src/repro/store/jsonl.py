"""Checksummed JSONL result files — the store's import/export format.

:class:`ResultStore` is the original streaming results backend of the
campaign runner (one checksummed JSON record per line, fsync-per-append,
torn-tail repair).  Since the SQLite :class:`~repro.store.database.CampaignStore`
became the queryable backend, this format is kept as the interchange shape:
``repro migrate`` converts either direction and round-trips byte-identical
files, resumed campaigns can still read their old JSONL stores, and CI
artifacts stay diffable with plain text tools.

One record per line, flushed (and by default fsynced) as soon as the cell
completes, which makes a killed campaign resumable: on the next run every
``cell_id`` already in the file is skipped and its record reused.

Each line carries an injected ``_checksum`` field (CRC-32 of the record
without it), so every line stays plain JSON while :meth:`ResultStore.load`
can tell a *trusted* record from a corrupted one.  A torn or
checksum-failing **final** line is the expected shape of a crash mid-append
and is silently skipped (counted in :attr:`ResultStore.torn_records_skipped`);
the same damage **mid-file** means the store cannot be trusted as a whole
and raises :class:`~repro.errors.ResultStoreError` with the line number,
byte offset and (when parseable) the cell id.  The first append after
reopening a file truncates any torn tail so the new record starts on a
clean line boundary instead of welding onto the crash debris.

Per-append ``fsync`` is on by default and gated by the ``REPRO_STORE_FSYNC``
environment variable (set ``0`` to trade crash consistency for throughput
on slow filesystems).
"""

from __future__ import annotations

import json
import os
import re
import zlib
from pathlib import Path
from typing import Any, Dict, List, Set, Union

from repro.errors import ResultStoreError


def _faults():
    # Imported lazily: the fault-injection harness lives in the runner
    # package, which itself imports this module at load time.
    from repro.runner import faults

    return faults


class ResultStore:
    """Append-only JSONL store of campaign cell records, crash-consistent."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        #: torn trailing records dropped by the most recent :meth:`load`.
        self.torn_records_skipped = 0
        # Whether this instance has verified the file ends on a clean line
        # boundary.  A crash mid-append leaves a torn tail without a
        # newline; appending straight onto it would weld two records into
        # one garbage line, so the first append repairs the tail first.
        self._tail_clean = False

    def exists(self) -> bool:
        return self.path.exists()

    #: Lines are written as ``{"_checksum": "xxxxxxxx", <canonical body>`` so
    #: :meth:`load` can verify them with one crc32 over the stored bytes
    #: instead of re-serialising every record.
    _CHECKSUM_PREFIX = '{"_checksum": "'
    _CHECKSUM_HEAD = len(_CHECKSUM_PREFIX) + 8 + len('", ')

    @staticmethod
    def checksum(record: Dict[str, Any]) -> str:
        """CRC-32 (hex) over the canonical JSON of a record sans ``_checksum``."""
        canonical = json.dumps(
            {k: v for k, v in record.items() if k != "_checksum"}, sort_keys=True
        )
        return format(zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF, "08x")

    def _repair_torn_tail(self) -> None:
        """Truncate a torn trailing line back to the last clean boundary.

        Only bytes after the final newline are dropped — by construction
        they are the unparseable remains of an interrupted append.
        """
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        with self.path.open("r+b") as stream:
            stream.truncate(data.rfind(b"\n") + 1)

    def append(self, record: Dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self._tail_clean:
            self._repair_torn_tail()
            self._tail_clean = True
        body = json.dumps(record, sort_keys=True)
        crc = format(zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF, "08x")
        line = f'{self._CHECKSUM_PREFIX}{crc}", {body[1:]}' if len(body) > 2 else body
        faults = _faults()
        spec = faults.checkpoint("store-append", record.get("cell_id"))
        with self.path.open("a") as stream:
            if spec is not None and spec.kind == "partial-write":
                # A realistic torn write is a crash mid-append: persist a
                # prefix of the line, then die without the trailing newline.
                stream.write(line[: max(1, len(line) // 2)])
                stream.flush()
                os.fsync(stream.fileno())
                faults.crash_now()
            stream.write(line)
            stream.write("\n")
            stream.flush()
            if os.environ.get("REPRO_STORE_FSYNC", "1") != "0":
                os.fsync(stream.fileno())

    def truncate(self) -> None:
        """Start the file over (a fresh, non-resumed campaign run)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("")
        self._tail_clean = True

    def load(self) -> List[Dict[str, Any]]:
        """Every trusted record in the file (a torn final line is dropped).

        The injected ``_checksum`` field is verified and stripped, so the
        returned records compare equal to the in-memory records that
        produced them.  Records written before the checksum protocol (no
        ``_checksum`` field) are accepted unverified.
        """
        self.torn_records_skipped = 0
        if not self.path.exists():
            return []
        records: List[Dict[str, Any]] = []
        lines = self.path.read_text().split("\n")
        last_content = max(
            (i for i, line in enumerate(lines) if line.strip()), default=-1
        )
        offset = 0
        for number, line in enumerate(lines):
            stripped = line.strip()
            if stripped:
                try:
                    record = json.loads(stripped)
                    if not isinstance(record, dict):
                        raise ValueError("record is not a JSON object")
                    stored = record.pop("_checksum", None)
                    if stored is not None:
                        if stripped.startswith(self._CHECKSUM_PREFIX) and (
                            stripped[self._CHECKSUM_HEAD - 3 : self._CHECKSUM_HEAD]
                            == '", '
                        ):
                            # Our own line layout: verify the stored bytes
                            # directly, no re-serialisation needed.
                            body = "{" + stripped[self._CHECKSUM_HEAD :]
                            computed = format(
                                zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF, "08x"
                            )
                        else:
                            computed = self.checksum(record)
                        if stored != computed:
                            raise ValueError(
                                f"checksum mismatch (stored {stored},"
                                f" computed {computed})"
                            )
                except ValueError as exc:
                    if number == last_content:
                        # The expected shape of a crash mid-append; the
                        # missing cell simply re-runs on resume.
                        self.torn_records_skipped += 1
                    else:
                        match = re.search(r'"cell_id"\s*:\s*"([^"]+)"', stripped)
                        cell = f", cell {match.group(1)}" if match else ""
                        raise ResultStoreError(
                            f"corrupt record in {self.path} at line {number + 1}"
                            f" (byte offset {offset}){cell}: {exc}"
                        )
                else:
                    records.append(record)
            offset += len(line.encode("utf-8")) + 1
        return records

    def completed_cell_ids(self) -> Set[str]:
        return {record["cell_id"] for record in self.load() if "cell_id" in record}
