"""`repro serve` — a supervised, concurrent, crash-safe resident service.

One long-lived process keeps the expensive state hot — per-process
shortest-path engines, embeddings, built forwarding schemes and open
:class:`~repro.store.database.CampaignStore` connections — and answers
requests over a Unix-domain socket with a line-delimited JSON protocol
(one JSON request per line, one JSON response per line; stdlib only).

:class:`ServeSession` is the transport-free core: a request dictionary in,
a response dictionary out, safe to drive from many threads at once.  The
socket loop (:func:`serve_forever`) and the warm-query benchmark legs both
drive the same session object, so the QPS the bench reports is the QPS the
daemon serves.

The transport is **concurrent and bounded**: one handler thread per
connection, a bounded in-flight request budget with explicit load-shedding
(``{"ok": false, "error_type": "Overloaded", "retry_after_s": ...}``
instead of unbounded blocking), a per-request deadline
(``error_type: "DeadlineExceeded"``), and a line-size cap
(``error_type: "LineTooLong"``).  Pipelined requests on one connection are
answered in order; malformed lines get error responses; a client vanishing
mid-line just drops the connection — the loop never dies with it.

``submit`` is **asynchronous** when the session has a job journal (a
``jobs`` table in the versioned SQLite schema, see
:mod:`repro.store.jobs`): the request journals a job row and returns a
``job_id`` immediately; a supervised background worker thread executes
jobs through the existing :func:`~repro.runner.executor.run_campaign` +
:class:`~repro.runner.policy.ExecutionPolicy` machinery.  On startup the
daemon refuses to clobber a live peer's socket, recovers the journal
(stale ``running`` jobs with dead pids are re-queued with resume forced)
and drains — a daemon SIGKILLed mid-job, restarted and drained produces
campaign payloads byte-identical to an uninterrupted run.

Operations (``op`` field):

``ping``
    Liveness check; echoes ``payload``.
``warm``
    Pre-build the engine/embedding/scheme of a topology so later queries
    skip the cold start: ``{"op": "warm", "topology": "abilene",
    "schemes": ["pr", "lfa"]}``.
``deliver`` / ``stretch``
    Ad-hoc forwarding query: ``{"op": "deliver", "topology": "abilene",
    "scheme": "pr", "source": "a", "destination": "b",
    "failed": [[u, v], 3]}`` — failed links as edge ids or endpoint pairs.
    Returns delivery status, hops, cost and (``stretch``/delivered) the
    path stretch against the failure-free shortest path.
``query``
    Filter records out of a results store (kept open across requests):
    ``{"op": "query", "results": "corpus.sqlite", "filter":
    "scheme=pr topology~zoo campaign:last10", "limit": 100}``.
``campaigns``
    List the campaigns of a store.
``submit``
    Journal a campaign job and return its ``job_id`` (non-blocking; needs
    a ``results`` SQLite store path and a configured journal).  Optional
    ``workers``, ``resume`` and ``policy`` (an
    :class:`~repro.runner.policy.ExecutionPolicy` dictionary) ride along.
    ``"sync": true`` — or a session without a journal — falls back to the
    legacy blocking run.
``job``
    One job's status and progress: ``{"op": "job", "job_id": ...}``.
    ``wait_s`` blocks until the job is terminal (bounded); ``follow``
    streams progress snapshots as separate response lines until the job is
    terminal (the last line carries ``"final": true``).
``jobs``
    List journal rows, optionally ``{"state": "queued"}``-filtered.
``cancel``
    Cancel a job: immediately when queued, between cells when running.
``drain``
    Block (bounded by ``timeout_s``) until no job is queued or running.
``stats``
    Session cache occupancy, ``serve/*`` counters, job-queue summary.
``shutdown``
    Stop the socket loop after responding.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import (
    CellTimeoutError,
    ExperimentError,
    JobCancelled,
    ReproError,
)
from repro.graph.multigraph import Graph
from repro.graph.spcache import engine_counter_totals, engine_for
from repro.runner import faults
from repro.runner.executor import build_scheme, load_topology
from repro.runner.policy import ExecutionPolicy, run_with_timeout
from repro.runner.spec import SCHEME_NAMES, CampaignSpec, EMBEDDING_SCHEMES
from repro.store.database import CampaignStore, is_store_path
from repro.store.jobs import ACTIVE_STATES, JobQueue, public_view
from repro.store.query import parse_filter

DEFAULT_SOCKET = ".repro-serve.sock"

#: A request line larger than this is rejected (LineTooLong) and the
#: connection dropped — a hostile or broken client must not balloon the
#: daemon's memory one unbounded buffer at a time.
MAX_LINE_BYTES = 4 * 1024 * 1024

#: What an Overloaded response tells the client to wait before retrying.
OVERLOAD_RETRY_AFTER_S = 0.05

#: Ops the per-request deadline never applies to: they block by design,
#: bounded by their own explicit timeouts (or end the loop outright).
DEADLINE_EXEMPT_OPS = frozenset({"drain", "shutdown"})


def jobs_path_for(socket_path: Union[str, Path]) -> Path:
    """The default job-journal path of a daemon socket.

    ``.repro-serve.sock`` -> ``.repro-serve.jobs.sqlite`` — next to the
    socket, so a restarted daemon on the same socket finds the same journal.
    """
    path = Path(socket_path)
    stem = path.stem if path.suffix else path.name
    return path.with_name(stem + ".jobs.sqlite")


def _resolve_failed_links(graph: Graph, failed: Any) -> Tuple[int, ...]:
    """Edge ids from a mixed list of edge ids and ``[u, v]`` endpoint pairs.

    An endpoint pair fails every parallel edge joining the two nodes, which
    is what "the link between u and v went down" means operationally.
    """
    if not failed:
        return ()
    ids: List[int] = []
    for item in failed:
        if isinstance(item, bool):
            # bool is an int subclass, so without this guard True/False
            # would silently pass as edge ids 1/0.
            raise ExperimentError(
                f"bad failed-link entry {item!r}: booleans are not edge ids;"
                " use an integer edge id or an [u, v] endpoint pair"
            )
        if isinstance(item, int):
            ids.append(item)
            continue
        if isinstance(item, (list, tuple)) and len(item) == 2:
            u, v = str(item[0]), str(item[1])
            matched = graph.edge_ids_between(u, v)
            if not matched:
                raise ExperimentError(f"no link between {u!r} and {v!r}")
            ids.extend(matched)
            continue
        raise ExperimentError(
            f"bad failed-link entry {item!r}; use an edge id or [u, v]"
        )
    return tuple(sorted(set(ids)))


class JobWorker(threading.Thread):
    """The supervised background executor of journaled jobs.

    One daemon thread claiming queued jobs oldest-first and running them
    through ``run_campaign``.  Every failure mode is contained per job —
    the worker itself only exits when asked to (or with the process); the
    session's :meth:`ServeSession.ensure_worker` restarts a worker that
    died anyway, which is the supervision contract.
    """

    poll_interval_s = 0.05

    def __init__(self, session: "ServeSession") -> None:
        super().__init__(name="repro-serve-job-worker", daemon=True)
        self.session = session
        self._halt = threading.Event()
        self.stopped = False  # set by stop(): died-on-purpose marker

    def stop(self) -> None:
        self.stopped = True
        self._halt.set()

    def run(self) -> None:
        queue = self.session.jobs
        while not self._halt.is_set():
            try:
                job = queue.claim(os.getpid())
            except Exception:
                # A journal hiccup (locked database, transient I/O) must
                # not kill the worker; back off and try again.
                self._halt.wait(self.poll_interval_s)
                continue
            if job is None:
                self._halt.wait(self.poll_interval_s)
                continue
            self._execute(job)

    def _execute(self, job: Dict[str, Any]) -> None:
        from repro.runner.executor import run_campaign

        queue = self.session.jobs
        job_id = job["job_id"]
        try:
            # A crash fault here SIGKILLs the daemon with the job row in
            # ``running`` — exactly the window the journal recovery path
            # exists for (the chaos suite injects it deliberately).
            faults.checkpoint("job-dispatch", job_id, attempt=max(0, job["attempts"] - 1))
            spec = CampaignSpec.from_dict(json.loads(job["spec_json"]))
            policy = ExecutionPolicy.from_dict(
                json.loads(job["policy_json"]) if job["policy_json"] else None
            )
            total = spec.cell_count()
            queue.progress(job_id, 0, total, phase="running")

            def on_progress(cell, record, done, total_cells) -> None:
                if queue.cancel_requested(job_id):
                    raise JobCancelled(
                        f"job {job_id} cancelled after {done}/{total_cells} cells"
                    )
                queue.progress(
                    job_id, done, total_cells, phase=f"cell {cell.cell_id[:12]}"
                )

            handle = run_campaign(
                spec,
                workers=int(job["workers"] or 1),
                cache_dir=self.session.cache_dir,
                results=job["results"],
                resume=bool(job["resume"]),
                progress=on_progress,
                policy=policy,
            )
            if handle.store is not None:
                handle.store.close()  # one connection per job must not pile up
            queue.finish(job_id, handle.executed, handle.skipped, handle.elapsed_s)
            self.session.count("serve/jobs_completed")
        except JobCancelled as exc:
            queue.fail(job_id, str(exc), cancelled=True)
            self.session.count("serve/jobs_cancelled")
        except Exception as exc:
            queue.fail(job_id, f"{type(exc).__name__}: {exc}")
            self.session.count("serve/jobs_failed")


class ServeSession:
    """The transport-free serve core: warm caches + request dispatch.

    Thread-safe: the warm caches (``_schemes``, ``_stores``), the counters
    and the shared store connections are guarded by one re-entrant lock, so
    the concurrent transport and the job worker can drive one session.
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        jobs_path: Optional[Union[str, Path]] = None,
        max_queued_jobs: int = 64,
    ) -> None:
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        #: (topology spec, scheme key, discriminator) -> built scheme.
        self._schemes: Dict[Tuple[str, str, str], Any] = {}
        #: results path -> open CampaignStore (warm across queries).
        self._stores: Dict[str, CampaignStore] = {}
        self._lock = threading.RLock()
        self.requests_served = 0
        #: ``serve/*`` telemetry counters (reported by the ``stats`` op).
        self.counters: Dict[str, int] = {}
        #: The job journal; ``None`` keeps ``submit`` synchronous (the
        #: in-process bench sessions and library embedders).
        self.jobs: Optional[JobQueue] = JobQueue(jobs_path) if jobs_path else None
        self.max_queued_jobs = max_queued_jobs
        self._worker: Optional[JobWorker] = None

    # ------------------------------------------------------------------
    # warm state
    # ------------------------------------------------------------------
    def count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + delta

    def store_for(self, results: Union[str, Path]) -> CampaignStore:
        key = str(Path(results))
        with self._lock:
            store = self._stores.get(key)
            if store is None:
                if not is_store_path(key):
                    raise ExperimentError(
                        f"serve queries need a SQLite store, got {results}"
                        " (migrate JSONL results first: repro migrate)"
                    )
                store = CampaignStore(key)
                self._stores[key] = store
            return store

    def scheme_for(
        self, topology: str, scheme: str, discriminator: Optional[str] = None
    ):
        from repro.routing.discriminator import DiscriminatorKind

        if scheme not in SCHEME_NAMES:
            raise ExperimentError(
                f"unknown scheme key {scheme!r}; available: {sorted(SCHEME_NAMES)}"
            )
        kind = discriminator or DiscriminatorKind.HOP_COUNT.value
        key = (topology, scheme, kind)
        with self._lock:
            built = self._schemes.get(key)
            if built is None:
                graph = load_topology(topology)
                embedding = None
                if scheme in EMBEDDING_SCHEMES:
                    from repro.runner.cache import ArtifactCache, cached_embedding

                    cache = ArtifactCache(self.cache_dir) if self.cache_dir else None
                    embedding = cached_embedding(graph, cache=cache)
                built = build_scheme(scheme, graph, kind, embedding)
                self._schemes[key] = built
            return built

    # ------------------------------------------------------------------
    # job-worker supervision
    # ------------------------------------------------------------------
    def ensure_worker(self) -> None:
        """Start (or restart) the job worker thread when a journal exists."""
        if self.jobs is None:
            return
        with self._lock:
            worker = self._worker
            if worker is not None and worker.is_alive():
                return
            if worker is not None and not worker.stopped:
                # The previous worker died without being asked to: restart
                # and record the supervision event.
                self.counters["serve/worker_restarts"] = (
                    self.counters.get("serve/worker_restarts", 0) + 1
                )
            self._worker = JobWorker(self)
            self._worker.start()

    def recover_jobs(self) -> List[str]:
        """Re-queue journal jobs orphaned by a dead daemon (startup path)."""
        if self.jobs is None:
            return []
        recovered = self.jobs.recover()
        if recovered:
            self.count("serve/jobs_recovered", len(recovered))
        return recovered

    def close(self) -> None:
        with self._lock:
            worker, self._worker = self._worker, None
        if worker is not None:
            worker.stop()
            worker.join(timeout=2.0)
        with self._lock:
            for store in self._stores.values():
                store.close()
            self._stores.clear()
            self._schemes.clear()
            if self.jobs is not None:
                self.jobs.close()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one request; errors come back as ``{"ok": false, ...}``."""
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            return {
                "ok": False,
                "error": f"unknown op {op!r}",
                "ops": sorted(
                    name[len("_op_") :]
                    for name in dir(self)
                    if name.startswith("_op_")
                ),
            }
        try:
            faults.checkpoint("serve-request", op)
            response = handler(request)
        except ReproError as exc:
            return {"ok": False, "error": str(exc), "error_type": type(exc).__name__}
        except Exception as exc:  # noqa: BLE001 - a resident loop must not die
            return {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "error_type": type(exc).__name__,
            }
        response.setdefault("ok", True)
        if response["ok"]:
            with self._lock:
                self.requests_served += 1
        return response

    def _require_jobs(self) -> JobQueue:
        if self.jobs is None:
            raise ExperimentError(
                "this serve session has no job journal; start the daemon"
                " with --jobs (or pass jobs_path=) to enable async submit"
            )
        return self.jobs

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True, "payload": request.get("payload")}

    def _op_warm(self, request: Dict[str, Any]) -> Dict[str, Any]:
        topology = request.get("topology")
        if not topology:
            raise ExperimentError("warm needs a topology")
        graph = load_topology(str(topology))
        engine_for(graph)  # builds + registers the shortest-path engine
        schemes = request.get("schemes") or []
        for scheme in schemes:
            self.scheme_for(str(topology), str(scheme), request.get("discriminator"))
        return {
            "topology": graph.name,
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "schemes_warm": len(schemes),
        }

    def _deliver(self, request: Dict[str, Any]) -> Dict[str, Any]:
        for field in ("topology", "scheme", "source", "destination"):
            if not request.get(field):
                raise ExperimentError(f"deliver needs a {field}")
        scheme = self.scheme_for(
            str(request["topology"]),
            str(request["scheme"]),
            request.get("discriminator"),
        )
        failed = _resolve_failed_links(scheme.graph, request.get("failed"))
        source = str(request["source"])
        destination = str(request["destination"])
        outcome = scheme.deliver(source, destination, failed_links=failed)
        delivered = outcome.status.value == "delivered"
        response: Dict[str, Any] = {
            "status": outcome.status.value,
            "delivered": delivered,
            "hops": outcome.hops,
            "cost": outcome.cost,
            "failed_links": list(failed),
            "scheme": scheme.name,
        }
        if outcome.drop_reason:
            response["drop_reason"] = outcome.drop_reason
        engine = engine_for(scheme.graph)
        baseline = engine.distances(destination).get(source)
        response["baseline_cost"] = baseline
        if delivered and baseline:
            response["stretch"] = outcome.cost / baseline
        return response

    def _op_deliver(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._deliver(request)

    def _op_stretch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._deliver(request)

    def _op_query(self, request: Dict[str, Any]) -> Dict[str, Any]:
        results = request.get("results")
        if not results:
            raise ExperimentError("query needs a results store path")
        store = self.store_for(results)
        filt = parse_filter(request.get("filter"))
        # The store connection is shared across request threads; the lock
        # serialises statement execution (sqlite3's shared-connection
        # contract), while other ops proceed between queries.
        with self._lock:
            records = store.query(filt, limit=request.get("limit"))
        response: Dict[str, Any] = {
            "records": len(records),
            "filter": filt.describe(),
        }
        if request.get("aggregate") == "summary":
            from repro.runner import aggregate

            response["summary_rows"] = aggregate.topology_summary_rows(records)
        if request.get("include_records"):
            response["matched"] = records
        return response

    def _op_campaigns(self, request: Dict[str, Any]) -> Dict[str, Any]:
        results = request.get("results")
        if not results:
            raise ExperimentError("campaigns needs a results store path")
        store = self.store_for(results)
        with self._lock:
            return {"campaigns": store.campaigns()}

    def _op_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if request.get("spec"):
            spec = CampaignSpec.from_dict(request["spec"])
        elif request.get("spec_path"):
            spec = CampaignSpec.load(request["spec_path"])
        else:
            raise ExperimentError("submit needs a spec or spec_path")
        policy_dict = request.get("policy")
        policy = ExecutionPolicy.from_dict(policy_dict)  # validated up front
        results = request.get("results")
        if self.jobs is None or request.get("sync"):
            return self._submit_sync(spec, request, policy)
        if not results or not is_store_path(str(results)):
            raise ExperimentError(
                "async submit needs a 'results' SQLite store path"
                " (.sqlite/.sqlite3/.db) so the job can be resumed after a"
                " crash; pass \"sync\": true to run without one"
            )
        campaign_id = spec.spec_hash()
        faults.checkpoint("job-journal", campaign_id)
        if self.jobs.active_count() >= self.max_queued_jobs:
            return {
                "ok": False,
                "error": (
                    f"job queue is full ({self.max_queued_jobs} active jobs);"
                    " retry later"
                ),
                "error_type": "Overloaded",
                "retry_after_s": OVERLOAD_RETRY_AFTER_S,
            }
        job_id = self.jobs.submit(
            campaign_id,
            spec.to_dict(),
            str(results),
            workers=int(request.get("workers", 1)),
            resume=bool(request.get("resume", False)),
            policy_dict=policy_dict,
            cells=spec.cell_count(),
        )
        self.count("serve/jobs_submitted")
        self.ensure_worker()
        return {
            "job_id": job_id,
            "campaign_id": campaign_id,
            "state": "queued",
            "cells": spec.cell_count(),
            "results": str(results),
        }

    def _submit_sync(
        self, spec: CampaignSpec, request: Dict[str, Any], policy: ExecutionPolicy
    ) -> Dict[str, Any]:
        """The legacy blocking submit (journal-less sessions, ``sync: true``)."""
        from repro.runner.executor import run_campaign

        results = request.get("results")
        handle = run_campaign(
            spec,
            workers=int(request.get("workers", 1)),
            cache_dir=self.cache_dir,
            results=results,
            resume=bool(request.get("resume", False)),
            policy=policy,
        )
        return {
            "campaign_id": spec.spec_hash(),
            "executed": handle.executed,
            "skipped": handle.skipped,
            "records": len(handle.records),
            "elapsed_s": handle.elapsed_s,
            "results": str(results) if results else None,
        }

    def _op_job(self, request: Dict[str, Any]) -> Dict[str, Any]:
        queue = self._require_jobs()
        job_id = request.get("job_id")
        if not job_id:
            raise ExperimentError("job needs a job_id")
        wait_s = float(request.get("wait_s") or 0.0)
        deadline = time.monotonic() + wait_s
        job = queue.get(str(job_id))
        while (
            wait_s > 0
            and job["state"] in ACTIVE_STATES
            and time.monotonic() < deadline
        ):
            self.ensure_worker()
            time.sleep(0.05)
            job = queue.get(str(job_id))
        response: Dict[str, Any] = {"job": public_view(job)}
        if request.get("follow") and job["state"] not in ACTIVE_STATES:
            response["final"] = True  # nothing left to stream
        return response

    def _op_jobs(self, request: Dict[str, Any]) -> Dict[str, Any]:
        queue = self._require_jobs()
        rows = queue.list_jobs(state=request.get("state"))
        return {"jobs": [public_view(row) for row in rows], "count": len(rows)}

    def _op_cancel(self, request: Dict[str, Any]) -> Dict[str, Any]:
        queue = self._require_jobs()
        job_id = request.get("job_id")
        if not job_id:
            raise ExperimentError("cancel needs a job_id")
        job = queue.cancel(str(job_id))
        return {"job": public_view(job)}

    def _op_drain(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Block until the journal has no queued/running job (bounded)."""
        queue = self._require_jobs()
        timeout_s = float(request.get("timeout_s") or 60.0)
        deadline = time.monotonic() + timeout_s
        while queue.active_count() and time.monotonic() < deadline:
            self.ensure_worker()
            time.sleep(0.05)
        active = queue.active_count()
        return {
            "drained": active == 0,
            "active": active,
            "jobs": [public_view(row) for row in queue.list_jobs()],
        }

    def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            response = {
                "requests_served": self.requests_served,
                "warm_schemes": sorted("/".join(key) for key in self._schemes),
                "open_stores": sorted(self._stores),
                "engine_counters": engine_counter_totals(),
                "counters": dict(sorted(self.counters.items())),
            }
        if self.jobs is not None:
            by_state: Dict[str, int] = {}
            for row in self.jobs.list_jobs():
                by_state[row["state"]] = by_state.get(row["state"], 0) + 1
            response["jobs"] = {
                "journal": str(self.jobs.path),
                "active": self.jobs.active_count(),
                "by_state": dict(sorted(by_state.items())),
            }
        return response

    def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"shutdown": True}


# ----------------------------------------------------------------------
# socket transport
# ----------------------------------------------------------------------
def socket_alive(socket_path: Union[str, Path], timeout: float = 0.5) -> bool:
    """Whether a live daemon answers a ping on ``socket_path``.

    A stale socket file (its daemon SIGKILLed) refuses the connection and
    returns ``False`` — safe to unlink.  A live peer answers and must not
    be clobbered.
    """
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.settimeout(timeout)
    try:
        client.connect(str(socket_path))
        client.sendall(b'{"op": "ping"}\n')
        return bool(client.recv(4096))
    except OSError:
        return False
    finally:
        client.close()


def _send(conn: socket.socket, response: Dict[str, Any]) -> bool:
    try:
        conn.sendall((json.dumps(response) + "\n").encode("utf-8"))
    except OSError:
        return False
    return True


def _respond(
    line: bytes,
    session: ServeSession,
    inflight: threading.BoundedSemaphore,
    deadline_s: Optional[float],
) -> Tuple[Optional[Dict[str, Any]], Dict[str, Any]]:
    """One request line -> (parsed request or None, response)."""
    try:
        request_obj = json.loads(line)
    except ValueError as exc:  # malformed JSON or invalid UTF-8
        return None, {
            "ok": False,
            "error": f"bad JSON request: {exc}",
            "error_type": "BadRequest",
        }
    if not isinstance(request_obj, dict):
        return None, {
            "ok": False,
            "error": "request must be a JSON object",
            "error_type": "BadRequest",
        }
    op = request_obj.get("op")
    if not inflight.acquire(blocking=False):
        session.count("serve/overloaded")
        return request_obj, {
            "ok": False,
            "error": "server at capacity; retry shortly",
            "error_type": "Overloaded",
            "retry_after_s": OVERLOAD_RETRY_AFTER_S,
        }
    try:
        exempt = op in DEADLINE_EXEMPT_OPS or (
            op == "job"
            and (request_obj.get("wait_s") or request_obj.get("follow"))
        )
        if deadline_s and not exempt:
            try:
                return request_obj, run_with_timeout(
                    lambda: session.handle(request_obj),
                    deadline_s,
                    label=f"request op={op!r}",
                )
            except CellTimeoutError as exc:
                session.count("serve/deadline_exceeded")
                return request_obj, {
                    "ok": False,
                    "error": str(exc),
                    "error_type": "DeadlineExceeded",
                    "deadline_s": deadline_s,
                }
        return request_obj, session.handle(request_obj)
    finally:
        inflight.release()


def _follow_job(
    conn: socket.socket,
    session: ServeSession,
    request_obj: Dict[str, Any],
    first_response: Dict[str, Any],
    stop: threading.Event,
    poll_interval_s: float = 0.05,
) -> None:
    """Stream job snapshots until the job is terminal (``final: true``)."""
    job = first_response.get("job") or {}
    while not stop.is_set() and job.get("state") in ACTIVE_STATES:
        time.sleep(poll_interval_s)
        response = session.handle({"op": "job", "job_id": request_obj.get("job_id")})
        if not response.get("ok"):
            _send(conn, response)
            return
        job = response["job"]
        if job["state"] not in ACTIVE_STATES:
            response["final"] = True
        if not _send(conn, response):
            return


def _serve_connection(
    conn: socket.socket,
    session: ServeSession,
    stop: threading.Event,
    server: socket.socket,
    inflight: threading.BoundedSemaphore,
    deadline_s: Optional[float],
) -> None:
    """One client connection: pipelined request lines, answered in order."""
    with conn:
        conn.settimeout(None)  # sockets from a timed accept inherit its timeout
        buffer = b""
        while not stop.is_set():
            try:
                chunk = conn.recv(65536)
            except OSError:
                return
            if not chunk:
                return  # client left (possibly mid-line); drop quietly
            buffer += chunk
            if b"\n" not in buffer and len(buffer) > MAX_LINE_BYTES:
                session.count("serve/rejected_lines")
                _send(conn, {
                    "ok": False,
                    "error": f"request line exceeds {MAX_LINE_BYTES} bytes",
                    "error_type": "LineTooLong",
                })
                return
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if not line.strip():
                    continue
                if len(line) > MAX_LINE_BYTES:
                    session.count("serve/rejected_lines")
                    _send(conn, {
                        "ok": False,
                        "error": f"request line exceeds {MAX_LINE_BYTES} bytes",
                        "error_type": "LineTooLong",
                    })
                    return
                request_obj, response = _respond(line, session, inflight, deadline_s)
                if not _send(conn, response):
                    return
                if response.get("shutdown"):
                    stop.set()  # the accept loop polls this between accepts
                    return
                if (
                    isinstance(request_obj, dict)
                    and request_obj.get("op") == "job"
                    and request_obj.get("follow")
                    and response.get("ok")
                ):
                    _follow_job(conn, session, request_obj, response, stop)
                    return  # the stream consumes the connection


def serve_forever(
    socket_path: Union[str, Path],
    session: Optional[ServeSession] = None,
    ready: Optional[Any] = None,
    *,
    max_inflight: int = 8,
    deadline_s: Optional[float] = 30.0,
    backlog: int = 16,
) -> int:
    """Serve line-delimited JSON requests on a Unix socket until shutdown.

    Concurrent: one handler thread per connection, at most ``max_inflight``
    requests executing at once (excess requests are shed with an
    ``Overloaded`` response instead of queueing unboundedly), each request
    bounded by ``deadline_s`` (``None`` disables the deadline).  A live
    daemon already bound to ``socket_path`` is detected by pinging it and
    refused — only a genuinely stale socket file is unlinked.

    When the session has a job journal, startup recovers it (orphaned
    ``running`` jobs are re-queued) and starts the supervised job worker.

    ``ready`` (when given) is an object with a ``set()`` method — e.g. a
    :class:`threading.Event` — signalled once the socket is listening.
    Returns the number of requests served.
    """
    socket_path = Path(socket_path)
    if session is None:
        session = ServeSession()
    socket_path.parent.mkdir(parents=True, exist_ok=True)
    if socket_path.exists():
        if socket_alive(socket_path):
            raise ReproError(
                f"another serve daemon is listening on {socket_path};"
                " refusing to clobber its socket (stop it first, or use"
                " a different --socket path)"
            )
        socket_path.unlink()
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    stop = threading.Event()
    inflight = threading.BoundedSemaphore(max_inflight)
    handlers: List[threading.Thread] = []
    try:
        server.bind(str(socket_path))
        server.listen(backlog)
        # A timed accept: closing a socket another thread is blocked
        # accept()ing on does not reliably wake it, so the shutdown op
        # just sets ``stop`` and the loop notices within one interval.
        server.settimeout(0.1)
        session.recover_jobs()
        session.ensure_worker()
        if ready is not None:
            ready.set()
        while not stop.is_set():
            try:
                conn, _ = server.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # server socket closed under us (teardown)
            thread = threading.Thread(
                target=_serve_connection,
                args=(conn, session, stop, server, inflight, deadline_s),
                daemon=True,
                name="repro-serve-conn",
            )
            thread.start()
            handlers.append(thread)
            handlers = [t for t in handlers if t.is_alive()]
    finally:
        stop.set()
        try:
            server.close()
        except OSError:
            pass
        for thread in handlers:
            thread.join(timeout=1.0)
        if socket_path.exists():
            socket_path.unlink()
        session.close()
    return session.requests_served


# ----------------------------------------------------------------------
# client helpers
# ----------------------------------------------------------------------
def _request_once(
    socket_path: Union[str, Path], payload: Dict[str, Any], timeout: float
) -> Dict[str, Any]:
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.settimeout(timeout)
    try:
        client.connect(str(socket_path))
        client.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        # The response may arrive in arbitrarily small recv chunks; keep
        # reading until the terminating newline, however it is framed.
        buffer = b""
        while b"\n" not in buffer:
            chunk = client.recv(65536)
            if not chunk:
                raise ReproError(
                    f"serve loop at {socket_path} closed the connection"
                    " before a full response"
                )
            buffer += chunk
        return json.loads(buffer.split(b"\n", 1)[0])
    except socket.timeout as exc:
        raise ReproError(
            f"serve request timed out after {timeout:g}s at {socket_path}"
        ) from exc
    finally:
        client.close()


def request(
    socket_path: Union[str, Path],
    payload: Dict[str, Any],
    timeout: float = 30.0,
    retries: int = 0,
    retry_delay_s: float = 0.05,
) -> Dict[str, Any]:
    """Send one request to a running serve loop and return its response.

    Socket timeouts surface as :class:`~repro.errors.ReproError` naming the
    socket path.  ``retries`` bounds reconnect attempts when the daemon is
    still starting up (connection refused / socket file not yet created).
    """
    attempt = 0
    while True:
        try:
            return _request_once(socket_path, payload, timeout)
        except (ConnectionRefusedError, FileNotFoundError) as exc:
            attempt += 1
            if attempt > retries:
                raise ReproError(
                    f"cannot reach serve loop at {socket_path}: {exc}"
                ) from exc
            time.sleep(retry_delay_s)


def stream(
    socket_path: Union[str, Path],
    payload: Dict[str, Any],
    timeout: float = 30.0,
):
    """Yield the response lines of a streaming request (e.g. job follow).

    The generator ends after a line carrying ``"final": true``, an error
    response, or the server closing the connection.
    """
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.settimeout(timeout)
    try:
        client.connect(str(socket_path))
        client.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        buffer = b""
        while True:
            while b"\n" not in buffer:
                try:
                    chunk = client.recv(65536)
                except socket.timeout as exc:
                    raise ReproError(
                        f"serve stream timed out after {timeout:g}s"
                        f" at {socket_path}"
                    ) from exc
                if not chunk:
                    return
                buffer += chunk
            line, buffer = buffer.split(b"\n", 1)
            response = json.loads(line)
            yield response
            if response.get("final") or not response.get("ok"):
                return
    finally:
        client.close()
