"""`repro serve` — a resident query loop over warm engines and stores.

One long-lived process keeps the expensive state hot — per-process
shortest-path engines, embeddings, built forwarding schemes and open
:class:`~repro.store.database.CampaignStore` connections — and answers
requests over a Unix-domain socket with a line-delimited JSON protocol
(one JSON request per line, one JSON response per line; stdlib only).

:class:`ServeSession` is the transport-free core: a request dictionary in,
a response dictionary out.  The socket loop (:func:`serve_forever`) and the
warm-query benchmark leg both drive the same session object, so the QPS the
bench reports is the QPS the daemon serves.

Operations (``op`` field):

``ping``
    Liveness check; echoes ``payload``.
``warm``
    Pre-build the engine/embedding/scheme of a topology so later queries
    skip the cold start: ``{"op": "warm", "topology": "abilene",
    "schemes": ["pr", "lfa"]}``.
``deliver`` / ``stretch``
    Ad-hoc forwarding query: ``{"op": "deliver", "topology": "abilene",
    "scheme": "pr", "source": "a", "destination": "b",
    "failed": [[u, v], 3]}`` — failed links as edge ids or endpoint pairs.
    Returns delivery status, hops, cost and (``stretch``/delivered) the
    path stretch against the failure-free shortest path.
``query``
    Filter records out of a results store (kept open across requests):
    ``{"op": "query", "results": "corpus.sqlite", "filter":
    "scheme=pr topology~zoo campaign:last10", "limit": 100}``.
``campaigns``
    List the campaigns of a store.
``submit``
    Run a campaign spec (inline dictionary or path) into a results store;
    the engines it warms stay warm for later queries.
``stats``
    Session cache occupancy (schemes, stores, engine counters).
``shutdown``
    Stop the socket loop after responding.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ExperimentError, ReproError
from repro.graph.multigraph import Graph
from repro.graph.spcache import engine_counter_totals, engine_for
from repro.runner.executor import build_scheme, load_topology
from repro.runner.spec import SCHEME_NAMES, CampaignSpec, EMBEDDING_SCHEMES
from repro.store.database import CampaignStore, is_store_path
from repro.store.query import parse_filter

DEFAULT_SOCKET = ".repro-serve.sock"


def _resolve_failed_links(graph: Graph, failed: Any) -> Tuple[int, ...]:
    """Edge ids from a mixed list of edge ids and ``[u, v]`` endpoint pairs.

    An endpoint pair fails every parallel edge joining the two nodes, which
    is what "the link between u and v went down" means operationally.
    """
    if not failed:
        return ()
    ids: List[int] = []
    for item in failed:
        if isinstance(item, int):
            ids.append(item)
            continue
        if isinstance(item, (list, tuple)) and len(item) == 2:
            u, v = str(item[0]), str(item[1])
            matched = graph.edge_ids_between(u, v)
            if not matched:
                raise ExperimentError(f"no link between {u!r} and {v!r}")
            ids.extend(matched)
            continue
        raise ExperimentError(
            f"bad failed-link entry {item!r}; use an edge id or [u, v]"
        )
    return tuple(sorted(set(ids)))


class ServeSession:
    """The transport-free serve core: warm caches + request dispatch."""

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None) -> None:
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        #: (topology spec, scheme key, discriminator) -> built scheme.
        self._schemes: Dict[Tuple[str, str, str], Any] = {}
        #: results path -> open CampaignStore (warm across queries).
        self._stores: Dict[str, CampaignStore] = {}
        self.requests_served = 0

    # ------------------------------------------------------------------
    # warm state
    # ------------------------------------------------------------------
    def store_for(self, results: Union[str, Path]) -> CampaignStore:
        key = str(Path(results))
        store = self._stores.get(key)
        if store is None:
            if not is_store_path(key):
                raise ExperimentError(
                    f"serve queries need a SQLite store, got {results}"
                    " (migrate JSONL results first: repro migrate)"
                )
            store = CampaignStore(key)
            self._stores[key] = store
        return store

    def scheme_for(
        self, topology: str, scheme: str, discriminator: Optional[str] = None
    ):
        from repro.routing.discriminator import DiscriminatorKind

        if scheme not in SCHEME_NAMES:
            raise ExperimentError(
                f"unknown scheme key {scheme!r}; available: {sorted(SCHEME_NAMES)}"
            )
        kind = discriminator or DiscriminatorKind.HOP_COUNT.value
        key = (topology, scheme, kind)
        built = self._schemes.get(key)
        if built is None:
            graph = load_topology(topology)
            embedding = None
            if scheme in EMBEDDING_SCHEMES:
                from repro.runner.cache import ArtifactCache, cached_embedding

                cache = ArtifactCache(self.cache_dir) if self.cache_dir else None
                embedding = cached_embedding(graph, cache=cache)
            built = build_scheme(scheme, graph, kind, embedding)
            self._schemes[key] = built
        return built

    def close(self) -> None:
        for store in self._stores.values():
            store.close()
        self._stores.clear()
        self._schemes.clear()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one request; errors come back as ``{"ok": false, ...}``."""
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            return {
                "ok": False,
                "error": f"unknown op {op!r}",
                "ops": sorted(
                    name[len("_op_") :]
                    for name in dir(self)
                    if name.startswith("_op_")
                ),
            }
        try:
            response = handler(request)
        except ReproError as exc:
            return {"ok": False, "error": str(exc), "error_type": type(exc).__name__}
        except Exception as exc:  # noqa: BLE001 - a resident loop must not die
            return {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "error_type": type(exc).__name__,
            }
        response.setdefault("ok", True)
        self.requests_served += 1
        return response

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True, "payload": request.get("payload")}

    def _op_warm(self, request: Dict[str, Any]) -> Dict[str, Any]:
        topology = request.get("topology")
        if not topology:
            raise ExperimentError("warm needs a topology")
        graph = load_topology(str(topology))
        engine_for(graph)  # builds + registers the shortest-path engine
        schemes = request.get("schemes") or []
        for scheme in schemes:
            self.scheme_for(str(topology), str(scheme), request.get("discriminator"))
        return {
            "topology": graph.name,
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "schemes_warm": len(schemes),
        }

    def _deliver(self, request: Dict[str, Any]) -> Dict[str, Any]:
        for field in ("topology", "scheme", "source", "destination"):
            if not request.get(field):
                raise ExperimentError(f"deliver needs a {field}")
        scheme = self.scheme_for(
            str(request["topology"]),
            str(request["scheme"]),
            request.get("discriminator"),
        )
        failed = _resolve_failed_links(scheme.graph, request.get("failed"))
        source = str(request["source"])
        destination = str(request["destination"])
        outcome = scheme.deliver(source, destination, failed_links=failed)
        delivered = outcome.status.value == "delivered"
        response: Dict[str, Any] = {
            "status": outcome.status.value,
            "delivered": delivered,
            "hops": outcome.hops,
            "cost": outcome.cost,
            "failed_links": list(failed),
            "scheme": scheme.name,
        }
        if outcome.drop_reason:
            response["drop_reason"] = outcome.drop_reason
        engine = engine_for(scheme.graph)
        baseline = engine.distances(destination).get(source)
        response["baseline_cost"] = baseline
        if delivered and baseline:
            response["stretch"] = outcome.cost / baseline
        return response

    def _op_deliver(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._deliver(request)

    def _op_stretch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._deliver(request)

    def _op_query(self, request: Dict[str, Any]) -> Dict[str, Any]:
        results = request.get("results")
        if not results:
            raise ExperimentError("query needs a results store path")
        store = self.store_for(results)
        filt = parse_filter(request.get("filter"))
        records = store.query(filt, limit=request.get("limit"))
        response: Dict[str, Any] = {
            "records": len(records),
            "filter": filt.describe(),
        }
        if request.get("aggregate") == "summary":
            from repro.runner import aggregate

            response["summary_rows"] = aggregate.topology_summary_rows(records)
        if request.get("include_records"):
            response["matched"] = records
        return response

    def _op_campaigns(self, request: Dict[str, Any]) -> Dict[str, Any]:
        results = request.get("results")
        if not results:
            raise ExperimentError("campaigns needs a results store path")
        return {"campaigns": self.store_for(results).campaigns()}

    def _op_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        from repro.runner.executor import run_campaign

        if request.get("spec"):
            spec = CampaignSpec.from_dict(request["spec"])
        elif request.get("spec_path"):
            spec = CampaignSpec.load(request["spec_path"])
        else:
            raise ExperimentError("submit needs a spec or spec_path")
        results = request.get("results")
        handle = run_campaign(
            spec,
            workers=int(request.get("workers", 1)),
            cache_dir=self.cache_dir,
            results=results,
            resume=bool(request.get("resume", False)),
        )
        return {
            "campaign_id": spec.spec_hash(),
            "executed": handle.executed,
            "skipped": handle.skipped,
            "records": len(handle.records),
            "elapsed_s": handle.elapsed_s,
            "results": str(results) if results else None,
        }

    def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "requests_served": self.requests_served,
            "warm_schemes": sorted("/".join(key) for key in self._schemes),
            "open_stores": sorted(self._stores),
            "engine_counters": engine_counter_totals(),
        }

    def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"shutdown": True}


# ----------------------------------------------------------------------
# socket transport
# ----------------------------------------------------------------------
def serve_forever(
    socket_path: Union[str, Path],
    session: Optional[ServeSession] = None,
    ready: Optional[Any] = None,
) -> int:
    """Serve line-delimited JSON requests on a Unix socket until shutdown.

    ``ready`` (when given) is an object with a ``set()`` method — e.g. a
    :class:`threading.Event` — signalled once the socket is listening.
    Returns the number of requests served.
    """
    socket_path = Path(socket_path)
    if session is None:
        session = ServeSession()
    socket_path.parent.mkdir(parents=True, exist_ok=True)
    if socket_path.exists():
        socket_path.unlink()
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    running = True
    try:
        server.bind(str(socket_path))
        server.listen(8)
        if ready is not None:
            ready.set()
        while running:
            conn, _ = server.accept()
            with conn:
                buffer = b""
                while running:
                    chunk = conn.recv(65536)
                    if not chunk:
                        break
                    buffer += chunk
                    while b"\n" in buffer:
                        line, buffer = buffer.split(b"\n", 1)
                        if not line.strip():
                            continue
                        try:
                            request = json.loads(line)
                        except ValueError as exc:
                            response: Dict[str, Any] = {
                                "ok": False,
                                "error": f"bad JSON request: {exc}",
                            }
                        else:
                            response = session.handle(request)
                        conn.sendall(
                            (json.dumps(response) + "\n").encode("utf-8")
                        )
                        if response.get("shutdown"):
                            running = False
                            break
    finally:
        server.close()
        if socket_path.exists():
            socket_path.unlink()
        session.close()
    return session.requests_served


def request(
    socket_path: Union[str, Path],
    payload: Dict[str, Any],
    timeout: float = 30.0,
) -> Dict[str, Any]:
    """Send one request to a running serve loop and return its response."""
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.settimeout(timeout)
    try:
        client.connect(str(socket_path))
        client.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        buffer = b""
        while b"\n" not in buffer:
            chunk = client.recv(65536)
            if not chunk:
                raise ExperimentError(
                    f"serve loop at {socket_path} closed the connection"
                )
            buffer += chunk
        return json.loads(buffer.split(b"\n", 1)[0])
    finally:
        client.close()
