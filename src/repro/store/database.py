"""The SQLite campaign store — the default results backend.

:class:`CampaignStore` owns one database file (WAL mode, schema managed by
:mod:`repro.store.schema`) holding any number of campaigns.  Each campaign
keeps its identity row (``campaigns``), the grid coordinates of every
finished cell (``cells`` — canonical cell-id, topology, scheme,
scenario-family and seed, all indexed), the full result record as canonical
JSON (``records``), the merged telemetry manifest (``telemetry``) and any
quarantined-cell entries (``quarantine``).  The same schema also carries the
``repro serve`` job journal (``jobs`` — see :mod:`repro.store.jobs`), so a
daemon's journal file is an ordinary store a ``repro query`` can open.

Records are stored as ``json.dumps(record, sort_keys=True)`` — the same
canonical serialisation the checksummed JSONL format uses — so a record
loaded from the store compares equal to the in-memory record that produced
it, and exporting back to JSONL regenerates byte-identical lines.

:class:`BoundCampaign` binds a store to one campaign spec and exposes the
same duck-typed surface the executor drives the JSONL
:class:`~repro.store.jsonl.ResultStore` through (``exists`` / ``load`` /
``truncate`` / ``append`` / ``completed_cell_ids``), which is how
``run_campaign`` streams into either backend through one code path.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.errors import ExperimentError, ResultStoreError
from repro.store import schema
from repro.store.query import Filter, campaign_ids_for, parse_filter

#: File suffixes that select the SQLite backend when a results path is given.
STORE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def is_store_path(path: Union[str, Path, None]) -> bool:
    """Whether a results path names a SQLite store (by suffix)."""
    if path is None:
        return False
    return Path(path).suffix.lower() in STORE_SUFFIXES


def _faults():
    # Lazy: the fault harness lives in the runner package, which imports
    # this module at load time.
    from repro.runner import faults

    return faults


def canonical_json(value: Any) -> str:
    """The canonical serialisation shared with the JSONL format."""
    return json.dumps(value, sort_keys=True)


class CampaignStore:
    """A multi-campaign SQLite results store (see module docstring)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._conn: Optional[sqlite3.Connection] = None

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    @property
    def conn(self) -> sqlite3.Connection:
        if self._conn is None:
            conn = schema.connect(self.path)
            try:
                schema.ensure_schema(conn)
            except BaseException:
                conn.close()
                raise
            self._conn = conn
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # campaign rows
    # ------------------------------------------------------------------
    def campaigns(self) -> List[Dict[str, Any]]:
        """Every campaign row, oldest-first by start sequence."""
        rows = self.conn.execute(
            "SELECT seq, campaign_id, cells, workers, executed, skipped,"
            " elapsed_s, status,"
            " (SELECT COUNT(*) FROM records r WHERE r.campaign_id = c.campaign_id)"
            "   AS records,"
            " (SELECT COUNT(*) FROM quarantine q WHERE q.campaign_id = c.campaign_id)"
            "   AS quarantined"
            " FROM campaigns c ORDER BY seq"
        ).fetchall()
        return [dict(row) for row in rows]

    def campaign_row(self, campaign_id: str) -> Optional[Dict[str, Any]]:
        row = self.conn.execute(
            "SELECT * FROM campaigns WHERE campaign_id = ?", (campaign_id,)
        ).fetchone()
        return dict(row) if row is not None else None

    def spec_dict(self, campaign_id: str) -> Optional[Dict[str, Any]]:
        """The campaign's spec as a plain dictionary, when recorded."""
        row = self.campaign_row(campaign_id)
        if row is None or not row.get("spec_json"):
            return None
        return json.loads(row["spec_json"])

    def ensure_campaign(
        self,
        campaign_id: str,
        spec_dict: Optional[Dict[str, Any]] = None,
        cells: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> None:
        """Make sure a campaign row exists (keeps its seq if it does)."""
        conn = self.conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT seq FROM campaigns WHERE campaign_id = ?", (campaign_id,)
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO campaigns"
                    " (campaign_id, spec_json, cells, workers, status)"
                    " VALUES (?, ?, ?, ?, 'running')",
                    (
                        campaign_id,
                        canonical_json(spec_dict) if spec_dict is not None else None,
                        cells,
                        workers,
                    ),
                )
            elif spec_dict is not None:
                conn.execute(
                    "UPDATE campaigns SET spec_json = ?, cells = ?, workers = ?,"
                    " status = 'running' WHERE campaign_id = ?",
                    (canonical_json(spec_dict), cells, workers, campaign_id),
                )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def begin_campaign(
        self,
        campaign_id: str,
        spec_dict: Optional[Dict[str, Any]] = None,
        cells: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> None:
        """Start a campaign over: drop its rows and give it a fresh seq.

        This is the store-backend analogue of truncating the JSONL file on
        a fresh (non-resume) run: the old records vanish and the campaign
        becomes the most recent one (``campaign:last1``).
        """
        conn = self.conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            self._delete_campaign_rows(conn, campaign_id)
            conn.execute("DELETE FROM campaigns WHERE campaign_id = ?", (campaign_id,))
            conn.execute(
                "INSERT INTO campaigns (campaign_id, spec_json, cells, workers, status)"
                " VALUES (?, ?, ?, ?, 'running')",
                (
                    campaign_id,
                    canonical_json(spec_dict) if spec_dict is not None else None,
                    cells,
                    workers,
                ),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    @staticmethod
    def _delete_campaign_rows(conn: sqlite3.Connection, campaign_id: str) -> None:
        for table in ("records", "cells", "telemetry", "quarantine"):
            conn.execute(f"DELETE FROM {table} WHERE campaign_id = ?", (campaign_id,))

    def delete_campaign(self, campaign_id: str) -> None:
        """Remove a campaign and everything it owns."""
        conn = self.conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            self._delete_campaign_rows(conn, campaign_id)
            conn.execute("DELETE FROM campaigns WHERE campaign_id = ?", (campaign_id,))
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def finish_campaign(
        self,
        campaign_id: str,
        executed: int,
        skipped: int,
        elapsed_s: float,
        status: str = "done",
    ) -> None:
        self.conn.execute(
            "UPDATE campaigns SET executed = ?, skipped = ?, elapsed_s = ?,"
            " status = ? WHERE campaign_id = ?",
            (executed, skipped, elapsed_s, status, campaign_id),
        )

    # ------------------------------------------------------------------
    # records
    # ------------------------------------------------------------------
    def append_record(self, campaign_id: str, record: Dict[str, Any]) -> None:
        """Insert one cell record (cells row + record row, one transaction).

        The grid coordinates come straight off the record, which carries
        them by construction (see ``_run_cell_body``).
        """
        cell_id = record.get("cell_id")
        if not cell_id:
            raise ResultStoreError(
                f"record without a cell_id cannot enter store {self.path}"
            )
        scenario = record.get("scenario")
        conn = self.conn
        faults = _faults()
        spec = faults.checkpoint("store-append", cell_id)
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.execute(
                "INSERT OR REPLACE INTO cells"
                " (campaign_id, cell_id, cell_index, topology, scheme,"
                "  discriminator, scenario_family, scenario_json, seed)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    cell_id,
                    record.get("index", 0),
                    record.get("topology", ""),
                    record.get("scheme", ""),
                    record.get("discriminator"),
                    record.get("scenario_family"),
                    canonical_json(scenario) if scenario is not None else None,
                    record.get("seed"),
                ),
            )
            if spec is not None and spec.kind == "partial-write":
                # The torn-write analogue for the SQLite backend: die with
                # the transaction open.  WAL rolls it back on next open, so
                # crash consistency here means the record simply never
                # happened and the cell re-runs on resume.
                faults.crash_now()
            conn.execute(
                "INSERT OR REPLACE INTO records (campaign_id, cell_id, record_json)"
                " VALUES (?, ?, ?)",
                (campaign_id, cell_id, canonical_json(record)),
            )
            conn.execute("COMMIT")
        except BaseException:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.OperationalError:
                pass
            raise

    def load_records(self, campaign_id: str) -> List[Dict[str, Any]]:
        """Every record of one campaign, in cell order."""
        rows = self.conn.execute(
            "SELECT records.record_json FROM records"
            " JOIN cells ON cells.campaign_id = records.campaign_id"
            "          AND cells.cell_id = records.cell_id"
            " WHERE records.campaign_id = ?"
            " ORDER BY cells.cell_index",
            (campaign_id,),
        ).fetchall()
        return [json.loads(row["record_json"]) for row in rows]

    def completed_cell_ids(self, campaign_id: str) -> Set[str]:
        rows = self.conn.execute(
            "SELECT cell_id FROM records WHERE campaign_id = ?", (campaign_id,)
        ).fetchall()
        return {row["cell_id"] for row in rows}

    def record_count(self, campaign_id: Optional[str] = None) -> int:
        if campaign_id is None:
            return int(self.conn.execute("SELECT COUNT(*) FROM records").fetchone()[0])
        return int(
            self.conn.execute(
                "SELECT COUNT(*) FROM records WHERE campaign_id = ?", (campaign_id,)
            ).fetchone()[0]
        )

    # ------------------------------------------------------------------
    # telemetry + quarantine
    # ------------------------------------------------------------------
    def put_manifest(self, campaign_id: str, manifest: Dict[str, Any]) -> None:
        self.conn.execute(
            "INSERT OR REPLACE INTO telemetry (campaign_id, manifest_json)"
            " VALUES (?, ?)",
            (campaign_id, canonical_json(manifest)),
        )

    def get_manifest(self, campaign_id: str) -> Optional[Dict[str, Any]]:
        row = self.conn.execute(
            "SELECT manifest_json FROM telemetry WHERE campaign_id = ?",
            (campaign_id,),
        ).fetchone()
        return json.loads(row["manifest_json"]) if row is not None else None

    def put_quarantine(
        self, campaign_id: str, entries: Sequence[Dict[str, Any]]
    ) -> None:
        """Replace the campaign's quarantine entries (whole-set rewrite,
        mirroring the JSONL sidecar's truncate-then-append)."""
        conn = self.conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.execute(
                "DELETE FROM quarantine WHERE campaign_id = ?", (campaign_id,)
            )
            for entry in entries:
                conn.execute(
                    "INSERT OR REPLACE INTO quarantine"
                    " (campaign_id, cell_id, cell_index, entry_json)"
                    " VALUES (?, ?, ?, ?)",
                    (
                        campaign_id,
                        entry.get("cell_id", ""),
                        entry.get("index", 0),
                        canonical_json(entry),
                    ),
                )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def load_quarantine(self, campaign_id: str) -> List[Dict[str, Any]]:
        rows = self.conn.execute(
            "SELECT entry_json FROM quarantine WHERE campaign_id = ?"
            " ORDER BY cell_index",
            (campaign_id,),
        ).fetchall()
        return [json.loads(row["entry_json"]) for row in rows]

    # ------------------------------------------------------------------
    # cross-campaign query
    # ------------------------------------------------------------------
    def query(
        self,
        expression: Union[str, Sequence[str], Filter, None] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Records matching a filter expression, across campaigns.

        ``expression`` is the grammar of :mod:`repro.store.query`
        (``scheme=pr topology~zoo campaign:last10``) or an already-parsed
        :class:`Filter`.  Results come back oldest-campaign-first, in cell
        order within each campaign — exactly the shape the aggregation
        functions in :mod:`repro.runner.aggregate` consume.
        """
        filt = (
            expression
            if isinstance(expression, Filter)
            else parse_filter(expression)
        )
        selected = campaign_ids_for(filt.campaign, self.campaigns())
        if selected is not None and not selected:
            if filt.campaign[0] == "id":
                raise ExperimentError(
                    f"no campaign in {self.path} matches"
                    f" 'campaign:{filt.campaign[1]}'"
                )
            return []
        where, params = filt.sql_where()
        sql = (
            "SELECT records.record_json FROM records"
            " JOIN cells ON cells.campaign_id = records.campaign_id"
            "          AND cells.cell_id = records.cell_id"
            " JOIN campaigns ON campaigns.campaign_id = records.campaign_id"
            f" WHERE {where}"
        )
        bound: List[Any] = list(params)
        if selected is not None:
            marks = ", ".join("?" for _ in selected)
            sql += f" AND records.campaign_id IN ({marks})"
            bound.extend(selected)
        sql += " ORDER BY campaigns.seq, cells.cell_index"
        if limit is not None:
            sql += " LIMIT ?"
            bound.append(int(limit))
        rows = self.conn.execute(sql, tuple(bound)).fetchall()
        return [json.loads(row["record_json"]) for row in rows]

    def query_count(
        self, expression: Union[str, Sequence[str], Filter, None] = None
    ) -> int:
        return len(self.query(expression))


class BoundCampaign:
    """One campaign's view of a store, with the executor's backend surface.

    ``run_campaign`` drives its results backend through ``exists()`` /
    ``load()`` / ``truncate()`` / ``append()`` / ``completed_cell_ids()``
    plus the ``path`` and ``torn_records_skipped`` attributes; this adapter
    maps those onto one campaign inside a :class:`CampaignStore`.  A SQLite
    transaction cannot tear, so ``torn_records_skipped`` is always 0.
    """

    def __init__(self, store: CampaignStore, campaign_id: str) -> None:
        self.store = store
        self.campaign_id = campaign_id
        self.torn_records_skipped = 0

    @property
    def path(self) -> Path:
        return self.store.path

    def exists(self) -> bool:
        if not self.store.path.exists():
            return False
        return self.store.campaign_row(self.campaign_id) is not None

    def begin(
        self,
        spec_dict: Optional[Dict[str, Any]] = None,
        cells: Optional[int] = None,
        workers: Optional[int] = None,
        resume: bool = False,
    ) -> None:
        """Open the campaign for writing: keep its rows when resuming,
        start it over (fresh seq) otherwise."""
        if resume:
            self.store.ensure_campaign(self.campaign_id, spec_dict, cells, workers)
        else:
            self.store.begin_campaign(self.campaign_id, spec_dict, cells, workers)

    def truncate(self) -> None:
        self.store.begin_campaign(self.campaign_id)

    def append(self, record: Dict[str, Any]) -> None:
        self.store.append_record(self.campaign_id, record)

    def load(self) -> List[Dict[str, Any]]:
        return self.store.load_records(self.campaign_id)

    def completed_cell_ids(self) -> Set[str]:
        return self.store.completed_cell_ids(self.campaign_id)

    def finalize(
        self,
        executed: int,
        skipped: int,
        elapsed_s: float,
        manifest: Optional[Dict[str, Any]] = None,
        quarantined: Optional[Iterable[Dict[str, Any]]] = None,
        status: str = "done",
    ) -> None:
        """Record the run facts, manifest and quarantine set in one place."""
        if manifest is not None:
            self.store.put_manifest(self.campaign_id, manifest)
        if quarantined is not None:
            self.store.put_quarantine(self.campaign_id, list(quarantined))
        self.store.finish_campaign(
            self.campaign_id, executed, skipped, elapsed_s, status
        )
