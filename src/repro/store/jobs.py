"""The ``repro serve`` job journal: a crash-safe queue in the campaign store.

A submitted campaign becomes a **job row** (the ``jobs`` table of the
versioned SQLite schema, :mod:`repro.store.schema` v2) before anything
executes, and every state transition afterwards is one UPDATE inside the
store's WAL — so the journal is exactly as crash-consistent as the results
it describes.  States::

    queued ──claim──> running ──> done
                         │  └───> failed    (error recorded, attempts kept)
       └────cancel────> cancelled <──┘      (cancel observed between cells)

A daemon SIGKILLed mid-job leaves the row in ``running`` with the dead
process's pid; :meth:`JobQueue.recover` finds those rows on restart,
re-queues them with ``resume`` forced on, and the worker drains them
through the store's existing resume path — which is what makes the drained
campaign byte-identical to an uninterrupted run (the chaos suite's
contract, extended up into the service layer).

Every method takes the queue's lock and runs its statements in one
``BEGIN IMMEDIATE`` transaction, so the journal connection can be shared
by the daemon's request threads and its job worker.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import JobError
from repro.store import schema

#: Job states a row can be in.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States that still need (or are consuming) worker time.
ACTIVE_STATES = ("queued", "running")


def pid_alive(pid: Optional[int]) -> bool:
    """Whether a pid names a live process (signal 0 probe)."""
    if not pid or pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # alive, owned by someone else
        return True
    return True


class JobQueue:
    """The journal behind the daemon's async ``submit`` (see module docstring)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.RLock()
        self._conn: Optional[sqlite3.Connection] = None

    @property
    def conn(self) -> sqlite3.Connection:
        with self._lock:
            if self._conn is None:
                conn = schema.connect(self.path)
                try:
                    schema.ensure_schema(conn)
                except BaseException:
                    conn.close()
                    raise
                self._conn = conn
            return self._conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def _transaction(self, fn):
        with self._lock:
            conn = self.conn
            conn.execute("BEGIN IMMEDIATE")
            try:
                value = fn(conn)
                conn.execute("COMMIT")
                return value
            except BaseException:
                try:
                    conn.execute("ROLLBACK")
                except sqlite3.OperationalError:
                    pass
                raise

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        campaign_id: str,
        spec_dict: Dict[str, Any],
        results: str,
        workers: int = 1,
        resume: bool = False,
        policy_dict: Optional[Dict[str, Any]] = None,
        cells: int = 0,
    ) -> str:
        """Journal one job; returns its ``job_id``.

        The id is ``<campaign_id prefix>-<journal seq>``: stable enough to
        grep logs by campaign, unique across resubmissions of the same spec.
        """

        def _insert(conn: sqlite3.Connection) -> str:
            seq = conn.execute(
                "SELECT COALESCE(MAX(seq), 0) + 1 FROM jobs"
            ).fetchone()[0]
            job_id = f"{campaign_id[:12]}-{int(seq)}"
            conn.execute(
                "INSERT INTO jobs (job_id, campaign_id, spec_json, results,"
                " workers, resume, policy_json, state, submitted_s,"
                " progress_total)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, 'queued', ?, ?)",
                (
                    job_id,
                    campaign_id,
                    json.dumps(spec_dict, sort_keys=True),
                    results,
                    int(workers),
                    int(bool(resume)),
                    json.dumps(policy_dict, sort_keys=True) if policy_dict else None,
                    time.time(),
                    int(cells),
                ),
            )
            return job_id

        return self._transaction(_insert)

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def claim(self, worker_pid: int) -> Optional[Dict[str, Any]]:
        """Atomically move the oldest queued job to ``running`` and return it."""

        def _claim(conn: sqlite3.Connection) -> Optional[Dict[str, Any]]:
            row = conn.execute(
                "SELECT * FROM jobs WHERE state = 'queued' ORDER BY seq LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            conn.execute(
                "UPDATE jobs SET state = 'running', worker_pid = ?,"
                " attempts = attempts + 1, heartbeat_s = ?, phase = 'starting'"
                " WHERE job_id = ?",
                (worker_pid, time.time(), row["job_id"]),
            )
            job = dict(row)
            job["attempts"] += 1
            job["worker_pid"] = worker_pid
            return job

        return self._transaction(_claim)

    def progress(
        self, job_id: str, done: int, total: int, phase: Optional[str] = None
    ) -> None:
        """Heartbeat one running job (cells done/total plus a phase label)."""
        self._transaction(
            lambda conn: conn.execute(
                "UPDATE jobs SET progress_done = ?, progress_total = ?,"
                " phase = COALESCE(?, phase), heartbeat_s = ?"
                " WHERE job_id = ? AND state = 'running'",
                (int(done), int(total), phase, time.time(), job_id),
            )
        )

    def finish(
        self, job_id: str, executed: int, skipped: int, elapsed_s: float
    ) -> None:
        self._transaction(
            lambda conn: conn.execute(
                "UPDATE jobs SET state = 'done', executed = ?, skipped = ?,"
                " elapsed_s = ?, phase = 'done', heartbeat_s = ?,"
                " progress_done = progress_total WHERE job_id = ?",
                (int(executed), int(skipped), float(elapsed_s), time.time(), job_id),
            )
        )

    def fail(self, job_id: str, error: str, cancelled: bool = False) -> None:
        state = "cancelled" if cancelled else "failed"
        self._transaction(
            lambda conn: conn.execute(
                "UPDATE jobs SET state = ?, last_error = ?, phase = ?,"
                " heartbeat_s = ? WHERE job_id = ?",
                (state, error, state, time.time(), job_id),
            )
        )

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Dict[str, Any]:
        with self._lock:
            row = self.conn.execute(
                "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise JobError(f"no job {job_id!r} in journal {self.path}")
        return dict(row)

    def list_jobs(self, state: Optional[str] = None) -> List[Dict[str, Any]]:
        """Every job row, oldest-first, optionally filtered by state."""
        if state is not None and state not in JOB_STATES:
            raise JobError(
                f"unknown job state {state!r}; expected one of {JOB_STATES}"
            )
        with self._lock:
            if state is None:
                rows = self.conn.execute("SELECT * FROM jobs ORDER BY seq").fetchall()
            else:
                rows = self.conn.execute(
                    "SELECT * FROM jobs WHERE state = ? ORDER BY seq", (state,)
                ).fetchall()
        return [dict(row) for row in rows]

    def active_count(self) -> int:
        with self._lock:
            return int(
                self.conn.execute(
                    "SELECT COUNT(*) FROM jobs WHERE state IN ('queued', 'running')"
                ).fetchone()[0]
            )

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a job: immediately when queued, via flag when running.

        A running job's worker observes ``cancel_requested`` between cells
        and aborts; a terminal job is left untouched (the returned row says
        which happened).
        """

        def _cancel(conn: sqlite3.Connection) -> None:
            row = conn.execute(
                "SELECT state FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
            if row is None:
                raise JobError(f"no job {job_id!r} in journal {self.path}")
            if row["state"] == "queued":
                conn.execute(
                    "UPDATE jobs SET state = 'cancelled', phase = 'cancelled',"
                    " cancel_requested = 1, heartbeat_s = ? WHERE job_id = ?",
                    (time.time(), job_id),
                )
            elif row["state"] == "running":
                conn.execute(
                    "UPDATE jobs SET cancel_requested = 1 WHERE job_id = ?",
                    (job_id,),
                )

        self._transaction(_cancel)
        return self.get(job_id)

    def cancel_requested(self, job_id: str) -> bool:
        with self._lock:
            row = self.conn.execute(
                "SELECT cancel_requested FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
        return bool(row and row["cancel_requested"])

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def recover(self) -> List[str]:
        """Re-queue stale ``running`` jobs whose worker pid is dead.

        Called on daemon startup.  Recovery forces ``resume`` on: whatever
        records the dead run flushed are kept, and the store's resume path
        re-runs exactly the missing cells — the byte-identity contract.
        Returns the re-queued job ids.
        """

        def _recover(conn: sqlite3.Connection) -> List[str]:
            rows = conn.execute(
                "SELECT job_id, worker_pid FROM jobs WHERE state = 'running'"
            ).fetchall()
            recovered = []
            for row in rows:
                if pid_alive(row["worker_pid"]) and row["worker_pid"] != os.getpid():
                    continue
                conn.execute(
                    "UPDATE jobs SET state = 'queued', worker_pid = NULL,"
                    " resume = 1, phase = 'recovered', heartbeat_s = ?"
                    " WHERE job_id = ?",
                    (time.time(), row["job_id"]),
                )
                recovered.append(row["job_id"])
            return recovered

        return self._transaction(_recover)


def public_view(job: Dict[str, Any]) -> Dict[str, Any]:
    """The response-shaped view of a job row (stable field set, no seq)."""
    return {
        "job_id": job["job_id"],
        "campaign_id": job["campaign_id"],
        "state": job["state"],
        "results": job["results"],
        "workers": job["workers"],
        "resume": bool(job["resume"]),
        "attempts": job["attempts"],
        "worker_pid": job["worker_pid"],
        "progress": {
            "done": job["progress_done"],
            "total": job["progress_total"],
            "phase": job["phase"],
        },
        "last_error": job["last_error"],
        "executed": job["executed"],
        "skipped": job["skipped"],
        "elapsed_s": job["elapsed_s"],
    }
