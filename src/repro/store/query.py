"""The filter-expression grammar of the results query layer.

A filter expression is a whitespace-separated list of clauses, all of which
must hold (AND semantics)::

    scheme=pr topology~zoo family=srlg seed=12345 campaign:last10

Clause forms:

``field=value``
    Exact match.  ``seed`` compares as an integer; everything else as a
    string.
``field!=value``
    Exact mismatch.
``field~value``
    Case-insensitive substring match.
``campaign:SELECTOR``
    Which campaigns to search: ``all`` (default), ``lastN`` (the N most
    recently started campaigns, e.g. ``last10``), or a campaign-id /
    spec-hash prefix (``campaign:4f21`` matches every campaign whose id
    starts with ``4f21``).

Fields map onto the indexed columns of the store's ``cells`` table —
``topology``, ``scheme``, ``discriminator``, ``family`` (alias
``scenario``), ``seed``, ``cell`` (the canonical cell id) — so a store
query compiles to one indexed SQL scan.  The same :class:`Filter` also
evaluates in memory over plain record dictionaries, which is how JSONL
results and in-process :class:`~repro.runner.executor.CampaignResult`
handles answer the identical expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ExperimentError

#: field name -> ``cells`` column it compiles to.
FIELD_COLUMNS: Dict[str, str] = {
    "topology": "topology",
    "scheme": "scheme",
    "discriminator": "discriminator",
    "family": "scenario_family",
    "scenario": "scenario_family",
    "cell": "cell_id",
    "seed": "seed",
}

_OPS = ("!=", "=", "~")


@dataclass(frozen=True)
class Clause:
    """One ``field OP value`` term of a filter expression."""

    field: str
    op: str  # "=", "!=" or "~"
    value: str

    def matches(self, record: Dict[str, Any]) -> bool:
        actual = _record_field(record, self.field)
        if self.op == "~":
            return self.value.lower() in str(actual).lower()
        if self.field == "seed":
            try:
                equal = int(actual) == int(self.value)
            except (TypeError, ValueError):
                equal = False
        else:
            equal = str(actual) == self.value
        return equal if self.op == "=" else not equal

    def sql(self) -> Tuple[str, Tuple[Any, ...]]:
        column = f"cells.{FIELD_COLUMNS[self.field]}"
        if self.op == "~":
            return f"LOWER({column}) LIKE ?", (f"%{_escape_like(self.value.lower())}%",)
        value: Any = int(self.value) if self.field == "seed" else self.value
        return (f"{column} = ?", (value,)) if self.op == "=" else (
            f"{column} != ?",
            (value,),
        )


def _escape_like(text: str) -> str:
    # SQLite LIKE has no default escape character; '%'/'_' in user values
    # would turn into wildcards.  The compiled clauses add ESCAPE '\'.
    return text.replace("\\", "\\\\").replace("%", "\\%").replace("_", "\\_")


def _record_field(record: Dict[str, Any], name: str) -> Any:
    if name in ("family", "scenario"):
        family = record.get("scenario_family")
        if family:
            return family
        scenario = record.get("scenario", {})
        return scenario.get("model") or scenario.get("kind", "")
    if name == "cell":
        return record.get("cell_id", "")
    return record.get(name, "")


#: Campaign selectors: ("all",), ("last", N) or ("id", prefix).
CampaignSelector = Tuple[Any, ...]


@dataclass(frozen=True)
class Filter:
    """A parsed filter expression: field clauses plus a campaign selector."""

    clauses: Tuple[Clause, ...] = ()
    campaign: CampaignSelector = ("all",)
    #: The original expression text (for error messages and logging).
    text: str = ""
    #: True when the expression spelled out a ``campaign:`` selector; an
    #: explicit selector (even ``campaign:all``) asks for a cross-campaign
    #: query against the backing store.
    campaign_explicit: bool = False

    def matches(self, record: Dict[str, Any]) -> bool:
        """In-memory evaluation over one record (campaign selector ignored:
        a plain record set is one campaign by construction)."""
        return all(clause.matches(record) for clause in self.clauses)

    def filter_records(self, records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
        return [record for record in records if self.matches(record)]

    def sql_where(self) -> Tuple[str, Tuple[Any, ...]]:
        """The WHERE fragment over the ``cells`` table (campaign selector
        excluded — the store resolves that against the ``campaigns`` table)."""
        if not self.clauses:
            return "1", ()
        parts: List[str] = []
        params: List[Any] = []
        for clause in self.clauses:
            fragment, values = clause.sql()
            if clause.op == "~":
                fragment += " ESCAPE '\\'"
            parts.append(fragment)
            params.extend(values)
        return " AND ".join(parts), tuple(params)

    def describe(self) -> str:
        return self.text or "(match everything)"


def parse_filter(
    expression: Union[str, Sequence[str], None],
    default_campaign: CampaignSelector = ("all",),
) -> Filter:
    """Parse a filter expression (string or pre-split token list).

    Raises :class:`~repro.errors.ExperimentError` on unknown fields,
    malformed clauses or bad campaign selectors, naming the offending
    token.
    """
    if expression is None:
        tokens: List[str] = []
    elif isinstance(expression, str):
        tokens = expression.split()
    else:
        tokens = [token for part in expression for token in str(part).split()]
    clauses: List[Clause] = []
    campaign: CampaignSelector = default_campaign
    campaign_explicit = False
    for token in tokens:
        if token.startswith("campaign:"):
            campaign = _parse_campaign_selector(token[len("campaign:") :], token)
            campaign_explicit = True
            continue
        clauses.append(_parse_clause(token))
    return Filter(
        clauses=tuple(clauses),
        campaign=campaign,
        text=" ".join(tokens),
        campaign_explicit=campaign_explicit,
    )


def _parse_clause(token: str) -> Clause:
    for op in _OPS:
        if op in token:
            name, _, value = token.partition(op)
            name = name.strip().lower()
            value = value.strip()
            if name == "campaign":
                # campaign=HASH is accepted as an alias of campaign:HASH
                # but only via the selector path, so rewrite it.
                raise ExperimentError(
                    f"bad filter clause {token!r}: select campaigns with "
                    f"'campaign:{value}' (or campaign:lastN / campaign:all)"
                )
            if name not in FIELD_COLUMNS:
                raise ExperimentError(
                    f"unknown filter field {name!r} in {token!r}; "
                    f"fields: {', '.join(sorted(set(FIELD_COLUMNS)))}"
                )
            if not value:
                raise ExperimentError(f"empty value in filter clause {token!r}")
            if name == "seed" and op != "~":
                try:
                    int(value)
                except ValueError:
                    raise ExperimentError(
                        f"seed clause needs an integer, got {token!r}"
                    )
            return Clause(field=name, op=op, value=value)
    raise ExperimentError(
        f"cannot parse filter clause {token!r}; expected field=value, "
        f"field!=value, field~value or campaign:SELECTOR"
    )


def _parse_campaign_selector(selector: str, token: str) -> CampaignSelector:
    selector = selector.strip()
    if not selector:
        raise ExperimentError(f"empty campaign selector in {token!r}")
    lowered = selector.lower()
    if lowered == "all":
        return ("all",)
    if lowered.startswith("last"):
        suffix = lowered[len("last") :]
        try:
            count = int(suffix) if suffix else 1
        except ValueError:
            raise ExperimentError(
                f"bad campaign selector {token!r}; use campaign:lastN with integer N"
            )
        if count < 1:
            raise ExperimentError(f"campaign:lastN needs N >= 1, got {token!r}")
        return ("last", count)
    return ("id", selector)


def campaign_ids_for(
    selector: CampaignSelector, campaigns: Sequence[Dict[str, Any]]
) -> Optional[List[str]]:
    """Resolve a selector against campaign rows (oldest-first by ``seq``).

    Returns the selected campaign ids in store order, or ``None`` for the
    ``all`` selector (meaning: no campaign restriction at all).
    """
    if selector[0] == "all":
        return None
    if selector[0] == "last":
        count = selector[1]
        return [row["campaign_id"] for row in campaigns[-count:]]
    prefix = selector[1]
    return [
        row["campaign_id"]
        for row in campaigns
        if str(row["campaign_id"]).startswith(prefix)
    ]


# Re-exported dataclass field to keep ruff happy about unused import in
# modules that subclass Filter configurations.
__all__ = [
    "Clause",
    "Filter",
    "FIELD_COLUMNS",
    "campaign_ids_for",
    "parse_filter",
]

_ = field  # pragma: no cover - silence unused-import style checkers
