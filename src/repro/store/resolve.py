"""Shared results-path resolution for every results-consuming entry point.

``sweep``/``report``/``query``/``migrate`` all take one results argument
that may name a SQLite store (``.sqlite``/``.sqlite3``/``.db``), a
checksummed JSONL file (``.jsonl``) or a telemetry manifest
(``*.telemetry.json``).  :func:`resolve_results` classifies the path once
and returns a :class:`ResolvedResults` that answers the two questions every
consumer asks — *give me matching records* and *give me the telemetry
manifest* — the same way regardless of backend, which is what lets the CLI
keep exactly one resolution helper instead of a per-subcommand copy.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import ExperimentError
from repro.store.database import CampaignStore, is_store_path
from repro.store.jsonl import ResultStore
from repro.store.query import Filter, parse_filter
from repro.telemetry import merge as telemetry_merge


class ResolvedResults:
    """One results argument, classified and ready to answer queries.

    ``kind`` is ``"store"`` (SQLite), ``"jsonl"`` (checksummed JSONL) or
    ``"manifest"`` (a telemetry manifest file, which holds no records).
    """

    def __init__(self, path: Path, kind: str) -> None:
        self.path = path
        self.kind = kind
        self._store: Optional[CampaignStore] = None

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return f"ResolvedResults(path={str(self.path)!r}, kind={self.kind!r})"

    @property
    def store(self) -> CampaignStore:
        if self.kind != "store":
            raise ExperimentError(f"{self.path} is not a SQLite results store")
        if self._store is None:
            self._store = CampaignStore(self.path)
        return self._store

    def close(self) -> None:
        if self._store is not None:
            self._store.close()
            self._store = None

    def __enter__(self) -> "ResolvedResults":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # records
    # ------------------------------------------------------------------
    def records(
        self,
        expression: Union[str, Sequence[str], Filter, None] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Records matching a filter expression (all records when ``None``).

        A store answers through its indexed SQL query layer; a JSONL file
        evaluates the same :class:`~repro.store.query.Filter` in memory.
        """
        if self.kind == "manifest":
            raise ExperimentError(
                f"{self.path} is a telemetry manifest and holds no records"
            )
        if self.kind == "store":
            return self.store.query(expression, limit=limit)
        filt = (
            expression
            if isinstance(expression, Filter)
            else parse_filter(expression)
        )
        records = filt.filter_records(ResultStore(self.path).load())
        return records[:limit] if limit is not None else records

    def campaigns(self) -> List[Dict[str, Any]]:
        """Campaign rows (a JSONL file is one anonymous campaign)."""
        if self.kind == "store":
            return self.store.campaigns()
        if self.kind == "jsonl":
            records = ResultStore(self.path).load()
            return [
                {
                    "campaign_id": self.path.stem,
                    "records": len(records),
                    "status": "jsonl",
                }
            ]
        return []

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def manifest(self) -> Dict[str, Any]:
        """The telemetry manifest this argument leads to.

        * manifest file — loaded directly;
        * JSONL — the ``.telemetry.json`` sidecar when present, else
          re-merged from the records;
        * store — the stored manifest of the most recent campaign, else
          re-merged from that campaign's records.
        """
        if self.kind == "manifest":
            try:
                return telemetry_merge.load_manifest(self.path)
            except (json.JSONDecodeError, OSError) as exc:
                raise ExperimentError(f"cannot read manifest {self.path}: {exc}")
        if self.kind == "jsonl":
            sidecar = telemetry_merge.manifest_path_for(self.path)
            if sidecar.exists():
                return telemetry_merge.load_manifest(sidecar)
            records = ResultStore(self.path).load()
            if not records:
                raise ExperimentError(f"{self.path} holds no complete records")
            return telemetry_merge.build_manifest(records)
        campaigns = self.store.campaigns()
        if not campaigns:
            raise ExperimentError(f"store {self.path} holds no campaigns")
        campaign_id = campaigns[-1]["campaign_id"]
        manifest = self.store.get_manifest(campaign_id)
        if manifest is not None:
            return manifest
        records = self.store.load_records(campaign_id)
        if not records:
            raise ExperimentError(
                f"campaign {campaign_id} in {self.path} holds no records"
            )
        return telemetry_merge.build_manifest(records)


def classify_results_path(path: Union[str, Path]) -> str:
    """``"store"``, ``"jsonl"`` or ``"manifest"`` for a results path."""
    path = Path(path)
    if is_store_path(path):
        return "store"
    if path.name.endswith(".telemetry.json") or path.suffix == ".json":
        return "manifest"
    return "jsonl"


def resolve_results(
    path_arg: Union[str, Path], must_exist: bool = True
) -> ResolvedResults:
    """Classify a results argument (see module docstring)."""
    path = Path(path_arg)
    if must_exist and not path.exists():
        raise ExperimentError(f"no such results file: {path}")
    return ResolvedResults(path, classify_results_path(path))
