"""JSONL ↔ SQLite conversion — ``repro migrate``.

The checksummed JSONL format (:mod:`repro.store.jsonl`) is the store's
import/export shape; these functions convert a campaign either direction
and round-trip **byte-identical** files.  That works because both backends
keep every record in the same canonical serialisation
(``json.dumps(record, sort_keys=True)``): importing strips nothing but the
line checksums (which are pure functions of the canonical bytes), and
exporting regenerates them, so ``jsonl -> sqlite -> jsonl`` reproduces the
original file exactly (modulo a repaired torn tail, which by definition was
never a trusted record).

Sidecars ride along: the ``.telemetry.json`` manifest lands in the store's
``telemetry`` table and the ``.quarantine.jsonl`` entries in its
``quarantine`` table, and both come back out on export.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import ExperimentError
from repro.store.database import CampaignStore, is_store_path
from repro.store.jsonl import ResultStore
from repro.telemetry import merge as telemetry_merge


def _quarantine_path_for(results_path: Path) -> Path:
    # Same pairing rule as repro.runner.policy.quarantine_path_for,
    # restated here so the store package does not import the runner.
    if results_path.suffix == ".jsonl":
        return results_path.with_name(results_path.stem + ".quarantine.jsonl")
    return results_path.with_name(results_path.name + ".quarantine.jsonl")


def derive_campaign_id(
    records: list, manifest: Optional[Dict[str, Any]] = None
) -> str:
    """The campaign id of an imported JSONL file.

    The telemetry manifest records the real spec hash; without one the id
    is derived deterministically from the cell ids, so re-importing the
    same file lands on the same campaign.
    """
    if manifest is not None:
        spec_hash = manifest.get("campaign", {}).get("spec_hash")
        if spec_hash:
            return str(spec_hash)
    digest = hashlib.sha256()
    for record in records:
        digest.update(str(record.get("cell_id", "")).encode("utf-8"))
        digest.update(b"\n")
    return "import-" + digest.hexdigest()[:16]


def import_jsonl(
    jsonl_path: Union[str, Path],
    store_path: Union[str, Path],
    campaign_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Import a JSONL campaign (plus sidecars) into a SQLite store.

    Returns a summary dictionary (``campaign_id``, ``records``,
    ``manifest``, ``quarantined``).  The campaign replaces any existing
    campaign with the same id in the store.
    """
    jsonl_path = Path(jsonl_path)
    if not jsonl_path.exists():
        raise ExperimentError(f"no results file at {jsonl_path}")
    source = ResultStore(jsonl_path)
    records = source.load()

    manifest: Optional[Dict[str, Any]] = None
    manifest_path = telemetry_merge.manifest_path_for(jsonl_path)
    if manifest_path.exists():
        manifest = telemetry_merge.load_manifest(manifest_path)

    quarantined: list = []
    quarantine_path = _quarantine_path_for(jsonl_path)
    if quarantine_path.exists():
        quarantined = ResultStore(quarantine_path).load()

    if campaign_id is None:
        campaign_id = derive_campaign_id(records, manifest)

    run = (manifest or {}).get("run", {})
    with CampaignStore(store_path) as store:
        store.begin_campaign(
            campaign_id,
            cells=(manifest or {}).get("campaign", {}).get("cells", len(records)),
            workers=run.get("workers"),
        )
        for record in records:
            store.append_record(campaign_id, record)
        if manifest is not None:
            store.put_manifest(campaign_id, manifest)
        if quarantined:
            store.put_quarantine(campaign_id, quarantined)
        store.finish_campaign(
            campaign_id,
            executed=run.get("executed", len(records)),
            skipped=run.get("skipped", 0),
            elapsed_s=run.get("elapsed_s", 0.0),
            status="imported",
        )
    return {
        "direction": "jsonl->sqlite",
        "campaign_id": campaign_id,
        "records": len(records),
        "manifest": manifest is not None,
        "quarantined": len(quarantined),
        "torn_records_skipped": source.torn_records_skipped,
    }


def export_jsonl(
    store_path: Union[str, Path],
    jsonl_path: Union[str, Path],
    campaign_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Export one campaign of a store back to checksummed JSONL (+sidecars).

    ``campaign_id`` may be a full id or a unique prefix; ``None`` exports
    the most recently started campaign.
    """
    store_path = Path(store_path)
    if not store_path.exists():
        raise ExperimentError(f"no results store at {store_path}")
    jsonl_path = Path(jsonl_path)
    with CampaignStore(store_path) as store:
        campaigns = store.campaigns()
        if not campaigns:
            raise ExperimentError(f"store {store_path} holds no campaigns")
        if campaign_id is None:
            resolved = campaigns[-1]["campaign_id"]
        else:
            matches = [
                row["campaign_id"]
                for row in campaigns
                if str(row["campaign_id"]).startswith(campaign_id)
            ]
            if not matches:
                raise ExperimentError(
                    f"no campaign in {store_path} matches {campaign_id!r}"
                )
            if len(matches) > 1:
                raise ExperimentError(
                    f"campaign prefix {campaign_id!r} is ambiguous in"
                    f" {store_path}: {', '.join(matches)}"
                )
            resolved = matches[0]
        records = store.load_records(resolved)
        manifest = store.get_manifest(resolved)
        quarantined = store.load_quarantine(resolved)

    target = ResultStore(jsonl_path)
    target.truncate()
    for record in records:
        target.append(record)
    manifest_written = None
    if manifest is not None:
        manifest_written = telemetry_merge.write_manifest(
            manifest, telemetry_merge.manifest_path_for(jsonl_path)
        )
    quarantine_written = None
    if quarantined:
        quarantine_store = ResultStore(_quarantine_path_for(jsonl_path))
        quarantine_store.truncate()
        for entry in quarantined:
            quarantine_store.append(entry)
        quarantine_written = quarantine_store.path
    return {
        "direction": "sqlite->jsonl",
        "campaign_id": resolved,
        "records": len(records),
        "manifest": str(manifest_written) if manifest_written else None,
        "quarantine": str(quarantine_written) if quarantine_written else None,
    }


def migrate(
    source: Union[str, Path],
    destination: Union[str, Path],
    campaign_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Convert results between backends, direction inferred from suffixes."""
    src_is_store = is_store_path(source)
    dst_is_store = is_store_path(destination)
    if src_is_store and not dst_is_store:
        return export_jsonl(source, destination, campaign_id)
    if dst_is_store and not src_is_store:
        return import_jsonl(source, destination, campaign_id)
    raise ExperimentError(
        "migrate needs exactly one SQLite side (suffix .sqlite/.sqlite3/.db)"
        f" and one JSONL side; got {source} -> {destination}"
    )
