"""The campaign results store: SQLite backend, JSONL interchange, queries.

* :mod:`repro.store.schema` — the SQLite schema and its append-only
  migration list (WAL mode, indexed cross-campaign columns).
* :mod:`repro.store.database` — :class:`CampaignStore` (the default results
  backend) and :class:`BoundCampaign` (one campaign's executor-facing view).
* :mod:`repro.store.jsonl` — the checksummed JSONL :class:`ResultStore`,
  demoted to the import/export format.
* :mod:`repro.store.query` — the filter-expression grammar
  (``scheme=pr topology~zoo campaign:last10``) evaluated over SQL or plain
  record lists.
* :mod:`repro.store.migrate` — byte-identical JSONL ↔ SQLite conversion.
* :mod:`repro.store.resolve` — shared results-path resolution for the CLI.
* :mod:`repro.store.serve` — the resident query loop (imported on demand:
  ``from repro.store import serve``; it pulls in the runner package).
"""

from repro.store.database import (
    STORE_SUFFIXES,
    BoundCampaign,
    CampaignStore,
    is_store_path,
)
from repro.store.jsonl import ResultStore
from repro.store.migrate import export_jsonl, import_jsonl, migrate
from repro.store.query import FIELD_COLUMNS, Filter, parse_filter
from repro.store.resolve import ResolvedResults, classify_results_path, resolve_results
from repro.store.schema import SCHEMA_VERSION

__all__ = [
    "BoundCampaign",
    "CampaignStore",
    "FIELD_COLUMNS",
    "Filter",
    "ResolvedResults",
    "ResultStore",
    "SCHEMA_VERSION",
    "STORE_SUFFIXES",
    "classify_results_path",
    "export_jsonl",
    "import_jsonl",
    "is_store_path",
    "migrate",
    "parse_filter",
    "resolve_results",
]
