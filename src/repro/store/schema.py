"""SQLite schema and migrations for the campaign results store.

The store keeps every table the results pipeline produces in one database
file: campaign identity (``campaigns``), the grid coordinates of every cell
(``cells``, with the canonical cell-id, topology, scheme, scenario-family
and seed columns indexed for cross-campaign queries), the full result
records (``records``, canonical JSON — the byte-stable payloads the JSONL
store used to hold), the merged telemetry manifest (``telemetry``), the
quarantine sidecar entries (``quarantine``) and the ``repro serve`` job
journal (``jobs`` — one row per submitted campaign job, the crash-safe
queue the daemon recovers on restart; see :mod:`repro.store.jobs`).

Migrations are append-only: :data:`MIGRATIONS` is an ordered list of SQL
scripts, and the applied prefix is recorded in ``schema_migrations``.
Opening a store created by an older version applies exactly the missing
suffix; opening one created by a *newer* version fails loudly instead of
guessing.  Every connection runs in WAL mode with a busy timeout, so
concurrent writers (campaigns appending from different processes) serialise
on the SQLite write lock instead of corrupting each other.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Union

from repro.errors import ResultStoreError

#: Current schema version == ``len(MIGRATIONS)``.
SCHEMA_VERSION = 2

#: Ordered migration scripts; index ``i`` brings a store at version ``i`` to
#: version ``i + 1``.  Never edit an entry in place — append a new one.
MIGRATIONS = (
    """
    CREATE TABLE campaigns (
        seq          INTEGER PRIMARY KEY AUTOINCREMENT,
        campaign_id  TEXT NOT NULL UNIQUE,
        spec_json    TEXT,
        cells        INTEGER,
        workers      INTEGER,
        executed     INTEGER NOT NULL DEFAULT 0,
        skipped      INTEGER NOT NULL DEFAULT 0,
        elapsed_s    REAL NOT NULL DEFAULT 0.0,
        status       TEXT NOT NULL DEFAULT 'running'
    );

    CREATE TABLE cells (
        campaign_id     TEXT NOT NULL,
        cell_id         TEXT NOT NULL,
        cell_index      INTEGER NOT NULL,
        topology        TEXT NOT NULL,
        scheme          TEXT NOT NULL,
        discriminator   TEXT,
        scenario_family TEXT,
        scenario_json   TEXT,
        seed            INTEGER,
        PRIMARY KEY (campaign_id, cell_id)
    );
    CREATE INDEX idx_cells_topology ON cells (topology);
    CREATE INDEX idx_cells_scheme ON cells (scheme);
    CREATE INDEX idx_cells_family ON cells (scenario_family);
    CREATE INDEX idx_cells_seed ON cells (seed);
    CREATE INDEX idx_cells_order ON cells (campaign_id, cell_index);

    CREATE TABLE records (
        campaign_id TEXT NOT NULL,
        cell_id     TEXT NOT NULL,
        record_json TEXT NOT NULL,
        PRIMARY KEY (campaign_id, cell_id)
    );

    CREATE TABLE telemetry (
        campaign_id   TEXT NOT NULL PRIMARY KEY,
        manifest_json TEXT NOT NULL
    );

    CREATE TABLE quarantine (
        campaign_id TEXT NOT NULL,
        cell_id     TEXT NOT NULL,
        cell_index  INTEGER NOT NULL,
        entry_json  TEXT NOT NULL,
        PRIMARY KEY (campaign_id, cell_id)
    );
    """,
    # v2: the ``repro serve`` job journal.  A submitted campaign becomes a
    # row here *before* anything executes; state transitions (queued ->
    # running -> done/failed/cancelled) are single UPDATE statements, so a
    # SIGKILL at any instant leaves a row whose state tells the restarted
    # daemon exactly what to recover (``running`` + dead pid -> re-queued
    # with resume forced).
    """
    CREATE TABLE jobs (
        seq              INTEGER PRIMARY KEY AUTOINCREMENT,
        job_id           TEXT NOT NULL UNIQUE,
        campaign_id      TEXT NOT NULL,
        spec_json        TEXT NOT NULL,
        results          TEXT,
        workers          INTEGER NOT NULL DEFAULT 1,
        resume           INTEGER NOT NULL DEFAULT 0,
        policy_json      TEXT,
        state            TEXT NOT NULL DEFAULT 'queued',
        attempts         INTEGER NOT NULL DEFAULT 0,
        cancel_requested INTEGER NOT NULL DEFAULT 0,
        worker_pid       INTEGER,
        submitted_s      REAL,
        heartbeat_s      REAL,
        progress_done    INTEGER NOT NULL DEFAULT 0,
        progress_total   INTEGER NOT NULL DEFAULT 0,
        phase            TEXT,
        last_error       TEXT,
        executed         INTEGER,
        skipped          INTEGER,
        elapsed_s        REAL
    );
    CREATE INDEX idx_jobs_state ON jobs (state);
    CREATE INDEX idx_jobs_campaign ON jobs (campaign_id);
    """,
)

assert len(MIGRATIONS) == SCHEMA_VERSION


def connect(path: Union[str, Path]) -> sqlite3.Connection:
    """Open a store connection with the pragmas every writer relies on.

    ``isolation_level=None`` puts the connection in autocommit mode so
    transactions are explicit (``BEGIN IMMEDIATE`` ... ``COMMIT``), which is
    the only way to get predictable lock acquisition under concurrency.

    ``check_same_thread=False`` lets the resident ``repro serve`` daemon
    share one warm connection across its request threads; every writer in
    this package serialises access (the session lock, the job queue lock,
    or single-threaded use), which is the contract sqlite3 documents for
    shared connections.
    """
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    conn = sqlite3.connect(
        str(path), timeout=30.0, isolation_level=None, check_same_thread=False
    )
    conn.row_factory = sqlite3.Row
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA synchronous=NORMAL")
    conn.execute("PRAGMA busy_timeout=30000")
    conn.execute("PRAGMA foreign_keys=ON")
    return conn


def applied_version(conn: sqlite3.Connection) -> int:
    """The schema version of an open store (0 for a fresh database)."""
    row = conn.execute(
        "SELECT name FROM sqlite_master WHERE type='table' AND name='schema_migrations'"
    ).fetchone()
    if row is None:
        return 0
    version = conn.execute("SELECT MAX(version) FROM schema_migrations").fetchone()[0]
    return int(version or 0)


def ensure_schema(conn: sqlite3.Connection) -> int:
    """Apply every pending migration; returns the resulting version.

    Raises :class:`~repro.errors.ResultStoreError` when the store was
    written by a newer schema than this code knows about.
    """
    conn.execute(
        "CREATE TABLE IF NOT EXISTS schema_migrations ("
        " version INTEGER PRIMARY KEY, script_sha TEXT)"
    )
    version = applied_version(conn)
    if version > SCHEMA_VERSION:
        raise ResultStoreError(
            f"store schema version {version} is newer than this code's "
            f"{SCHEMA_VERSION}; upgrade the repro package to read it"
        )
    for index in range(version, SCHEMA_VERSION):
        # ``executescript`` manages its own transaction, so the migration
        # race between two concurrent openers is resolved by re-checking
        # the version after a failed DDL statement: whoever lost the race
        # sees the winner's tables already present.
        try:
            conn.executescript(MIGRATIONS[index])
        except sqlite3.OperationalError:
            if applied_version(conn) > index:
                continue
            raise
        conn.execute(
            "INSERT OR IGNORE INTO schema_migrations (version) VALUES (?)",
            (index + 1,),
        )
    return SCHEMA_VERSION
