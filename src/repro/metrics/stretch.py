"""Path-length stretch (the paper's Figure 2 metric).

"Consistently with prior work, we define the stretch of a path as the ratio
between the total path cost while cycle following and the path cost of the
normal shortest path."  The denominator is the failure-free shortest path
cost between the same pair; the numerator is the cost of whatever path the
scheme actually produced under the failure scenario.  Undelivered packets
have no stretch — they are reported separately as losses.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.forwarding.engine import ForwardingOutcome
from repro.forwarding.scheme import ForwardingScheme
from repro.graph.multigraph import Graph
from repro.routing.tables import RoutingTables, cached_routing_tables


class StretchSample:
    """One (scheme, scenario, source, destination) stretch measurement.

    A plain slotted class rather than a frozen dataclass: a campaign creates
    (and the aggregation layer re-creates) one sample per measured packet,
    so construction cost matters at sweep scale.
    """

    __slots__ = (
        "scheme",
        "source",
        "destination",
        "failed_links",
        "stretch",
        "delivered",
        "hops",
        "cost",
        "baseline_cost",
    )

    def __init__(
        self,
        scheme: str,
        source: str,
        destination: str,
        failed_links: Tuple[int, ...],
        stretch: Optional[float],
        delivered: bool,
        hops: int,
        cost: float,
        baseline_cost: float,
    ) -> None:
        self.scheme = scheme
        self.source = source
        self.destination = destination
        self.failed_links = failed_links
        self.stretch = stretch
        self.delivered = delivered
        self.hops = hops
        self.cost = cost
        self.baseline_cost = baseline_cost

    def _key(self) -> tuple:
        return (
            self.scheme,
            self.source,
            self.destination,
            self.failed_links,
            self.stretch,
            self.delivered,
            self.hops,
            self.cost,
            self.baseline_cost,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StretchSample):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return (
            f"StretchSample({self.scheme}: {self.source}->{self.destination}, "
            f"stretch={self.stretch}, delivered={self.delivered})"
        )

    @property
    def lost(self) -> bool:
        """Whether the packet was not delivered (no stretch value exists)."""
        return not self.delivered


def stretch_of_outcome(
    outcome: ForwardingOutcome,
    baseline_cost: float,
) -> Optional[float]:
    """Stretch of one delivered outcome, or ``None`` if it was not delivered."""
    if not outcome.delivered or baseline_cost <= 0:
        return None
    return outcome.cost / baseline_cost


def collect_stretch_samples(
    scheme: ForwardingScheme,
    scenarios: Iterable[Sequence[int]],
    pairs_per_scenario: Dict[Tuple[int, ...], List[Tuple[str, str]]],
    baseline_tables: Optional[RoutingTables] = None,
) -> List[StretchSample]:
    """Stretch samples of ``scheme`` over (scenario, pair) combinations.

    ``pairs_per_scenario`` maps each (sorted) failure tuple to the pairs to
    measure for it — typically the pairs whose failure-free path is affected
    and which remain connected (see :mod:`repro.experiments.stretch`).
    """
    graph: Graph = scheme.graph
    if baseline_tables is None:
        baseline_tables = cached_routing_tables(graph)
    samples: List[StretchSample] = []
    for scenario in scenarios:
        key = tuple(sorted(scenario))
        pairs = pairs_per_scenario.get(key, [])
        if not pairs:
            continue
        outcomes = scheme.deliver_many(pairs, failed_links=key)
        for (source, destination), outcome in outcomes.items():
            baseline_cost = baseline_tables.cost(source, destination)
            samples.append(
                StretchSample(
                    scheme=scheme.name,
                    source=source,
                    destination=destination,
                    failed_links=key,
                    stretch=stretch_of_outcome(outcome, baseline_cost),
                    delivered=outcome.delivered,
                    hops=outcome.hops,
                    cost=outcome.cost,
                    baseline_cost=baseline_cost,
                )
            )
    return samples


def stretch_values(samples: Iterable[StretchSample]) -> List[float]:
    """The stretch values of the delivered samples only."""
    return [sample.stretch for sample in samples if sample.stretch is not None]


def loss_fraction(samples: Sequence[StretchSample]) -> float:
    """Fraction of samples that were not delivered."""
    if not samples:
        return 0.0
    lost = sum(1 for sample in samples if sample.lost)
    return lost / len(samples)


def max_stretch(samples: Iterable[StretchSample]) -> float:
    """Largest observed stretch (0 when nothing was delivered)."""
    values = stretch_values(samples)
    return max(values) if values else 0.0
