"""Overhead comparison between schemes (the qualitative part of Section 6).

The paper compares PR, FCP and re-convergence along three axes: packet
header bits, router memory, and on-line computation when a failure occurs.
:func:`overhead_comparison` fills one row per scheme with concrete numbers
for a given topology so the argument ("PR needs 1 + log2(d) header bits and
no real-time computation") can be checked quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.forwarding.headers import link_identifier_bits
from repro.forwarding.scheme import ForwardingScheme
from repro.graph.multigraph import Graph
from repro.graph.spcache import cached_diameter


@dataclass(frozen=True)
class OverheadRow:
    """Overhead figures of one scheme on one topology."""

    scheme: str
    header_bits: int
    header_bits_note: str
    memory_entries: int
    online_computation: int

    def as_tuple(self) -> tuple:
        return (
            self.scheme,
            self.header_bits,
            self.header_bits_note,
            self.memory_entries,
            self.online_computation,
        )


def overhead_comparison(
    graph: Graph,
    schemes: Sequence[ForwardingScheme],
    worst_case_failures: Optional[int] = None,
) -> List[OverheadRow]:
    """One :class:`OverheadRow` per scheme.

    ``worst_case_failures`` sizes FCP's header for a packet that has to carry
    that many failed links; the default is the number that keeps the network
    barely connected in the worst case (|E| - |V| + 1, the cycle rank), which
    is the honest worst case for "any non-disconnecting combination".
    """
    if worst_case_failures is None:
        worst_case_failures = max(
            1, graph.number_of_edges() - graph.number_of_nodes() + 1
        )
    hop_diameter = int(cached_diameter(graph, hop_count=True))
    rows: List[OverheadRow] = []
    for scheme in schemes:
        if hasattr(scheme, "dd_bits"):
            bits = scheme.header_overhead_bits()
            if bits == 1:
                note = "1 PR bit only (single-failure variant, no DD bits)"
            else:
                note = f"1 PR bit + {scheme.dd_bits()} DD bits (diameter {hop_diameter})"
        elif scheme.name.startswith("Failure-Carrying"):
            per_link = link_identifier_bits(graph.number_of_edges())
            bits = scheme.header_overhead_bits(worst_case_failures)  # type: ignore[call-arg]
            note = (
                f"{worst_case_failures} failures x {per_link} bits/link id "
                f"(worst non-disconnecting case)"
            )
        else:
            bits = scheme.header_overhead_bits()
            note = "no extra header fields"
        rows.append(
            OverheadRow(
                scheme=scheme.name,
                header_bits=bits,
                header_bits_note=note,
                memory_entries=scheme.router_memory_entries(),
                online_computation=scheme.online_computation_per_failure()
                if hasattr(scheme, "online_computation_per_failure")
                else 0,
            )
        )
    return rows


def render_overhead_table(topology_name: str, rows: Iterable[OverheadRow]) -> str:
    """Format the overhead comparison as a fixed-width text table."""
    header = (
        f"Overhead comparison on {topology_name}\n"
        f"{'Scheme':<28} {'Header bits':>12} {'Memory entries':>15} {'SPF/ failure':>13}  Notes"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.scheme:<28} {row.header_bits:>12} {row.memory_entries:>15} "
            f"{row.online_computation:>13}  {row.header_bits_note}"
        )
    return "\n".join(lines)
