"""Complementary CDFs and distribution summaries.

Figure 2 plots ``P(Stretch > x | path)`` for ``x`` between 1 and 15; these
helpers turn a bag of stretch values into exactly that curve, plus the usual
summary statistics used in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple


def ccdf(values: Sequence[float], threshold: float) -> float:
    """Empirical ``P(X > threshold)`` of the sample ``values``."""
    if not values:
        return 0.0
    exceeding = sum(1 for value in values if value > threshold)
    return exceeding / len(values)


def ccdf_curve(values: Sequence[float], thresholds: Iterable[float]) -> List[Tuple[float, float]]:
    """The CCDF evaluated at each threshold, as ``(x, P(X > x))`` pairs."""
    ordered = sorted(values)
    curve: List[Tuple[float, float]] = []
    total = len(ordered)
    for threshold in thresholds:
        if total == 0:
            curve.append((threshold, 0.0))
            continue
        # Binary search for the first value strictly greater than the threshold.
        low, high = 0, total
        while low < high:
            middle = (low + high) // 2
            if ordered[middle] <= threshold:
                low = middle + 1
            else:
                high = middle
        curve.append((threshold, (total - low) / total))
    return curve


def _percentile_of_sorted(ordered: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of an already-sorted sample."""
    if not ordered:
        raise ValueError("cannot compute a percentile of an empty sample")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must lie in [0, 1]")
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile (``fraction`` in [0, 1]) of ``values``."""
    return _percentile_of_sorted(sorted(values), fraction)


def distribution_summary(values: Sequence[float]) -> Dict[str, float]:
    """Mean, median, p90, p99 and max of a sample (empty sample → zeros).

    The sample is sorted once and shared by every percentile (a sweep calls
    this per cell over thousands of stretch values).
    """
    if not values:
        return {"count": 0, "mean": 0.0, "median": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
    ordered = sorted(values)
    return {
        "count": float(len(ordered)),
        # Summed in the caller's order (not sorted order): float addition is
        # not associative and the summary must stay bit-identical.
        "mean": sum(values) / len(values),
        "median": _percentile_of_sorted(ordered, 0.5),
        "p90": _percentile_of_sorted(ordered, 0.9),
        "p99": _percentile_of_sorted(ordered, 0.99),
        "max": ordered[-1],
    }


def default_stretch_thresholds() -> List[float]:
    """The x-axis grid of Figure 2: stretch 1 to 15."""
    return [float(value) for value in range(1, 16)]
