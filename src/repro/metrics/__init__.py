"""Evaluation metrics: path stretch, CCDFs and overhead accounting.

Section 6 defines "the stretch of a path as the ratio between the total path
cost while cycle following and the path cost of the normal shortest path" and
plots its complementary CDF; it also compares the schemes on packet-header
overhead, router memory and per-failure computation.  This package computes
all of those quantities from forwarding outcomes.
"""

from repro.metrics.stretch import StretchSample, collect_stretch_samples, stretch_of_outcome
from repro.metrics.ccdf import ccdf, ccdf_curve, distribution_summary, percentile
from repro.metrics.overhead import OverheadRow, overhead_comparison, render_overhead_table

__all__ = [
    "StretchSample",
    "collect_stretch_samples",
    "stretch_of_outcome",
    "ccdf",
    "ccdf_curve",
    "distribution_summary",
    "percentile",
    "OverheadRow",
    "overhead_comparison",
    "render_overhead_table",
]
