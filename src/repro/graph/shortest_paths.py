"""Shortest-path computations over the multigraph substrate.

Everything in the reproduction that needs a route — the failure-free routing
tables, the re-convergence baseline, FCP's per-hop recomputation, the
distance discriminators of Section 4.3 — goes through the functions in this
module.  All of them accept an ``excluded_edges`` set so that failed links
can be pruned without copying the graph.

Tie-breaking is deterministic: when two paths have equal cost the one whose
next hop (and, recursively, whose node sequence) sorts first lexicographically
wins.  Determinism matters because the paper's protocol relies on every
router computing the *same* shortest-path tree.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import NodeNotFound, NoPathExists
from repro.graph.multigraph import Graph

#: Distances are floats; equality comparisons use an absolute tolerance to be
#: robust against summation order differences.
_COST_EPSILON = 1e-9


def _check_node(graph: Graph, node: str) -> None:
    if not graph.has_node(node):
        raise NodeNotFound(node)


def dijkstra(
    graph: Graph,
    source: str,
    excluded_edges: Optional[Iterable[int]] = None,
) -> Tuple[Dict[str, float], Dict[str, Tuple[str, int]]]:
    """Single-source shortest paths from ``source``.

    Returns ``(dist, parent)`` where ``dist[v]`` is the cost of the shortest
    path from ``source`` to ``v`` and ``parent[v] = (u, edge_id)`` is the
    predecessor of ``v`` on that path (absent for the source and for
    unreachable nodes).

    ``excluded_edges`` is the set of failed link ids to ignore.
    """
    _check_node(graph, source)
    excluded: FrozenSet[int] = frozenset(excluded_edges or ())
    dist: Dict[str, float] = {source: 0.0}
    parent: Dict[str, Tuple[str, int]] = {}
    # Heap entries carry the node name as a tie-breaker so that equal-cost
    # paths are resolved deterministically by lexicographic order.
    heap: List[Tuple[float, str]] = [(0.0, source)]
    finalized: set[str] = set()
    while heap:
        cost, node = heapq.heappop(heap)
        if node in finalized:
            continue
        finalized.add(node)
        for neighbor, edge_id, weight in graph.iter_adjacent(node, excluded):
            if neighbor in finalized:
                continue
            candidate = cost + weight
            current = dist.get(neighbor)
            better = current is None or candidate < current - _COST_EPSILON
            tie = (
                current is not None
                and abs(candidate - current) <= _COST_EPSILON
                and (node, edge_id) < parent.get(neighbor, (node, edge_id))
            )
            if better or tie:
                dist[neighbor] = candidate
                parent[neighbor] = (node, edge_id)
                heapq.heappush(heap, (candidate, neighbor))
    return dist, parent


def shortest_path(
    graph: Graph,
    source: str,
    destination: str,
    excluded_edges: Optional[Iterable[int]] = None,
) -> List[str]:
    """Node sequence of the shortest path from ``source`` to ``destination``.

    Raises :class:`~repro.errors.NoPathExists` when the destination is
    unreachable once ``excluded_edges`` are pruned.
    """
    _check_node(graph, destination)
    dist, parent = dijkstra(graph, source, excluded_edges)
    if destination not in dist:
        raise NoPathExists(source, destination)
    path = [destination]
    node = destination
    while node != source:
        node, _edge_id = parent[node]
        path.append(node)
    path.reverse()
    return path


def shortest_path_cost(
    graph: Graph,
    source: str,
    destination: str,
    excluded_edges: Optional[Iterable[int]] = None,
) -> float:
    """Cost of the shortest path from ``source`` to ``destination``."""
    _check_node(graph, destination)
    dist, _parent = dijkstra(graph, source, excluded_edges)
    if destination not in dist:
        raise NoPathExists(source, destination)
    return dist[destination]


def path_cost(graph: Graph, path: Sequence[str], hop_count: bool = False) -> float:
    """Cost of a node sequence, using the cheapest parallel edge per hop.

    With ``hop_count=True`` the cost is simply the number of hops, which is
    one of the two distance-discriminator functions suggested by the paper.
    """
    if len(path) < 2:
        return 0.0
    if hop_count:
        return float(len(path) - 1)
    total = 0.0
    for u, v in zip(path, path[1:]):
        edge_ids = graph.edge_ids_between(u, v)
        if not edge_ids:
            raise NoPathExists(u, v)
        total += min(graph.weight(edge_id) for edge_id in edge_ids)
    return total


def shortest_path_tree_to(
    graph: Graph,
    destination: str,
    excluded_edges: Optional[Iterable[int]] = None,
) -> Dict[str, Tuple[str, int]]:
    """Next hops towards ``destination`` for every node that can reach it.

    Returns a mapping ``node -> (next_hop, edge_id)`` describing the
    shortest-path tree rooted at ``destination`` (the paper's Figure 1(a)
    "shortest path tree from all other nodes to F").  The destination itself
    is not present in the mapping.

    Because the graph is undirected with symmetric weights, the tree is
    obtained by running Dijkstra from the destination and reversing the
    parent pointers.
    """
    _check_node(graph, destination)
    _dist, parent = dijkstra(graph, destination, excluded_edges)
    next_hops: Dict[str, Tuple[str, int]] = {}
    for node, (towards, edge_id) in parent.items():
        # ``towards`` is one hop closer to the destination than ``node``.
        next_hops[node] = (towards, edge_id)
    return next_hops


def shortest_path_dag(
    graph: Graph,
    destination: str,
    excluded_edges: Optional[Iterable[int]] = None,
) -> Dict[str, List[Tuple[str, int]]]:
    """All equal-cost next hops towards ``destination`` for every node.

    Unlike :func:`shortest_path_tree_to`, which keeps a single deterministic
    next hop, this returns every neighbor that lies on *some* shortest path,
    which is what ECMP-aware schemes (and the LFA baseline) need.
    """
    _check_node(graph, destination)
    dist, _parent = dijkstra(graph, destination, excluded_edges)
    excluded_set = frozenset(excluded_edges or ())
    dag: Dict[str, List[Tuple[str, int]]] = {}
    for node in graph.nodes():
        if node == destination or node not in dist:
            continue
        options: List[Tuple[str, int]] = []
        for neighbor, edge_id, weight in graph.iter_adjacent(node, excluded_set):
            if neighbor not in dist:
                continue
            if abs(dist[neighbor] + weight - dist[node]) <= _COST_EPSILON:
                options.append((neighbor, edge_id))
        options.sort()
        dag[node] = options
    return dag


def all_pairs_shortest_costs(
    graph: Graph,
    excluded_edges: Optional[Iterable[int]] = None,
) -> Dict[str, Dict[str, float]]:
    """All-pairs shortest path costs (one Dijkstra per node)."""
    return {node: dijkstra(graph, node, excluded_edges)[0] for node in graph.nodes()}


def eccentricity(
    graph: Graph,
    node: str,
    hop_count: bool = True,
) -> float:
    """Eccentricity of ``node``: distance to the farthest reachable node.

    With ``hop_count=True`` distances are counted in hops regardless of edge
    weights, which is the quantity the paper's ``log2(d)`` DD-bit bound uses.
    """
    if hop_count:
        unit = graph.copy()
        for edge in unit.edges():
            edge.weight = 1.0
        dist, _parent = dijkstra(unit, node)
    else:
        dist, _parent = dijkstra(graph, node)
    return max(dist.values()) if dist else 0.0


def diameter(graph: Graph, hop_count: bool = True) -> float:
    """Diameter of the graph (maximum eccentricity over all nodes)."""
    if graph.number_of_nodes() == 0:
        return 0.0
    return max(eccentricity(graph, node, hop_count) for node in graph.nodes())
