"""Breadth- and depth-first traversals and spanning trees.

These helpers back the topology generators (which need spanning structures to
guarantee connectivity) and several embedding heuristics.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import NodeNotFound
from repro.graph.multigraph import Graph


def bfs_order(
    graph: Graph,
    source: str,
    excluded_edges: Optional[Iterable[int]] = None,
) -> List[str]:
    """Nodes reachable from ``source`` in breadth-first order."""
    if not graph.has_node(source):
        raise NodeNotFound(source)
    excluded: FrozenSet[int] = frozenset(excluded_edges or ())
    order = [source]
    seen = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor, _edge_id, _weight in graph.iter_adjacent(node, excluded):
            if neighbor not in seen:
                seen.add(neighbor)
                order.append(neighbor)
                queue.append(neighbor)
    return order


def bfs_tree(
    graph: Graph,
    source: str,
    excluded_edges: Optional[Iterable[int]] = None,
) -> Dict[str, Tuple[str, int]]:
    """Breadth-first tree: ``node -> (parent, edge_id)`` for reachable nodes."""
    if not graph.has_node(source):
        raise NodeNotFound(source)
    excluded: FrozenSet[int] = frozenset(excluded_edges or ())
    parent: Dict[str, Tuple[str, int]] = {}
    seen = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor, edge_id, _weight in graph.iter_adjacent(node, excluded):
            if neighbor not in seen:
                seen.add(neighbor)
                parent[neighbor] = (node, edge_id)
                queue.append(neighbor)
    return parent


def dfs_order(
    graph: Graph,
    source: str,
    excluded_edges: Optional[Iterable[int]] = None,
) -> List[str]:
    """Nodes reachable from ``source`` in depth-first (pre-)order."""
    if not graph.has_node(source):
        raise NodeNotFound(source)
    excluded: FrozenSet[int] = frozenset(excluded_edges or ())
    order: List[str] = []
    seen = set()
    stack = [source]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        order.append(node)
        neighbors = [
            neighbor
            for neighbor, _edge_id, _weight in graph.iter_adjacent(node, excluded)
        ]
        # Reverse so that the lexicographically-first neighbor is visited first.
        for neighbor in sorted(set(neighbors), reverse=True):
            if neighbor not in seen:
                stack.append(neighbor)
    return order


def spanning_tree_edges(
    graph: Graph,
    root: Optional[str] = None,
) -> List[int]:
    """Edge ids of a breadth-first spanning tree of the component of ``root``.

    If ``root`` is omitted the first node of the graph is used.  The result
    contains ``len(component) - 1`` edges.
    """
    nodes = graph.nodes()
    if not nodes:
        return []
    start = root if root is not None else nodes[0]
    tree = bfs_tree(graph, start)
    return sorted(edge_id for _parent, edge_id in tree.values())


def find_cycle(graph: Graph) -> Optional[List[int]]:
    """Return the edge ids of some simple cycle, or ``None`` if the graph is a forest.

    The planar embedding algorithm (DMP) seeds its embedding with an
    arbitrary cycle; this helper finds one via DFS back-edge detection.
    Parallel edges form a 2-cycle and are returned as such.
    """
    # Parallel edges: a cycle of length two.
    seen_pairs: Dict[Tuple[str, str], int] = {}
    for edge in graph.edges():
        key = tuple(sorted((edge.u, edge.v)))
        if key in seen_pairs:
            return [seen_pairs[key], edge.edge_id]
        seen_pairs[key] = edge.edge_id

    visited: Dict[str, Tuple[Optional[str], Optional[int]]] = {}
    for root in graph.nodes():
        if root in visited:
            continue
        visited[root] = (None, None)
        stack: List[Tuple[str, Optional[int]]] = [(root, None)]
        while stack:
            node, parent_edge = stack.pop()
            for neighbor, edge_id, _weight in graph.iter_adjacent(node):
                if edge_id == parent_edge:
                    continue
                if neighbor not in visited:
                    visited[neighbor] = (node, edge_id)
                    stack.append((neighbor, edge_id))
                else:
                    # Back edge found: reconstruct the cycle through the tree.
                    cycle_edges = [edge_id]
                    walk = node
                    ancestry = set()
                    probe = neighbor
                    while probe is not None:
                        ancestry.add(probe)
                        probe = visited[probe][0]
                    while walk not in ancestry:
                        parent, tree_edge = visited[walk]
                        if parent is None or tree_edge is None:
                            break
                        cycle_edges.append(tree_edge)
                        walk = parent
                    meet = walk
                    walk = neighbor
                    while walk != meet:
                        parent, tree_edge = visited[walk]
                        if parent is None or tree_edge is None:
                            break
                        cycle_edges.append(tree_edge)
                        walk = parent
                    return cycle_edges
    return None
