"""Undirected weighted multigraph with stable edge identifiers and darts.

This is the single graph type used across the reproduction.  Design goals:

* **Stable edge identifiers** — the Packet Re-cycling data plane refers to
  individual physical links (e.g. "edge 7 has failed").  Edge ids are small
  integers allocated sequentially and never reused, so failure sets remain
  valid across copies.
* **Multigraph support** — ISP backbones routinely run parallel links
  between the same pair of PoPs; the embedding machinery handles parallel
  edges naturally, so the graph type must too.
* **Explicit darts** — the embedding, the cycle-following tables and the
  forwarding engine all operate on directed half-edges
  (:class:`~repro.graph.darts.Dart`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import DuplicateNode, EdgeNotFound, GraphError, NodeNotFound
from repro.graph.darts import Dart


class Edge:
    """One undirected physical link of the network.

    Attributes
    ----------
    edge_id:
        Stable integer identifier of the edge.
    u, v:
        The two endpoint nodes.  The order carries no meaning.
    weight:
        Positive routing cost of the link (IGP metric, latency, ...).
    """

    __slots__ = ("edge_id", "u", "v", "weight")

    def __init__(self, edge_id: int, u: str, v: str, weight: float) -> None:
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight!r}")
        self.edge_id = edge_id
        self.u = u
        self.v = v
        self.weight = float(weight)

    @property
    def endpoints(self) -> Tuple[str, str]:
        """The ``(u, v)`` endpoint pair in insertion order."""
        return (self.u, self.v)

    def other(self, node: str) -> str:
        """Return the endpoint that is not ``node``.

        Raises :class:`~repro.errors.GraphError` if ``node`` is not an
        endpoint of this edge.
        """
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise GraphError(f"node {node!r} is not an endpoint of edge {self.edge_id}")

    def dart_from(self, tail: str) -> Dart:
        """Return the dart of this edge that leaves ``tail``."""
        return Dart(self.edge_id, tail, self.other(tail))

    def darts(self) -> Tuple[Dart, Dart]:
        """Return both darts of this edge."""
        return (Dart(self.edge_id, self.u, self.v), Dart(self.edge_id, self.v, self.u))

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return f"Edge({self.edge_id}: {self.u}--{self.v}, w={self.weight})"


class Graph:
    """Undirected weighted multigraph.

    Nodes are identified by strings (router names); edges by stable integer
    ids.  The class intentionally exposes a small, explicit API rather than
    mirroring a full-blown graph library: everything the protocol needs and
    nothing more.
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._adjacency: Dict[str, List[int]] = {}
        self._edges: Dict[int, Edge] = {}
        self._next_edge_id = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: str) -> str:
        """Add a node, raising :class:`DuplicateNode` if it already exists."""
        if node in self._adjacency:
            raise DuplicateNode(node)
        self._adjacency[node] = []
        return node

    def ensure_node(self, node: str) -> str:
        """Add a node if it is not present; never raises."""
        if node not in self._adjacency:
            self._adjacency[node] = []
        return node

    def add_edge(self, u: str, v: str, weight: float = 1.0) -> int:
        """Add an undirected edge between ``u`` and ``v`` and return its id.

        Both endpoints are created on demand.  Self-loops are rejected
        because they are meaningless for a router-level topology.
        """
        if u == v:
            raise GraphError(f"self-loop on node {u!r} is not allowed")
        self.ensure_node(u)
        self.ensure_node(v)
        edge_id = self._next_edge_id
        self._next_edge_id += 1
        edge = Edge(edge_id, u, v, weight)
        self._edges[edge_id] = edge
        self._adjacency[u].append(edge_id)
        self._adjacency[v].append(edge_id)
        return edge_id

    def add_edge_with_id(self, edge_id: int, u: str, v: str, weight: float = 1.0) -> int:
        """Add an edge with a caller-chosen id (used to mirror another graph).

        The id must not already be in use.  Subsequent automatically
        allocated ids continue above the largest id ever used.
        """
        if u == v:
            raise GraphError(f"self-loop on node {u!r} is not allowed")
        if edge_id in self._edges:
            raise GraphError(f"edge id {edge_id} is already in use")
        self.ensure_node(u)
        self.ensure_node(v)
        edge = Edge(edge_id, u, v, weight)
        self._edges[edge_id] = edge
        self._adjacency[u].append(edge_id)
        self._adjacency[v].append(edge_id)
        self._next_edge_id = max(self._next_edge_id, edge_id + 1)
        return edge_id

    def remove_edge(self, edge_id: int) -> Edge:
        """Remove an edge by id and return it."""
        edge = self.edge(edge_id)
        self._adjacency[edge.u].remove(edge_id)
        self._adjacency[edge.v].remove(edge_id)
        del self._edges[edge_id]
        return edge

    def remove_node(self, node: str) -> List[Edge]:
        """Remove a node and all incident edges; return the removed edges."""
        if node not in self._adjacency:
            raise NodeNotFound(node)
        removed = [self.remove_edge(edge_id) for edge_id in list(self._adjacency[node])]
        del self._adjacency[node]
        return removed

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __contains__(self, node: str) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def nodes(self) -> List[str]:
        """All node names, in insertion order."""
        return list(self._adjacency)

    def edges(self) -> List[Edge]:
        """All edges, in insertion (edge id) order."""
        return [self._edges[edge_id] for edge_id in sorted(self._edges)]

    def edge_ids(self) -> List[int]:
        """All edge ids in increasing order."""
        return sorted(self._edges)

    def edge(self, edge_id: int) -> Edge:
        """Look an edge up by id, raising :class:`EdgeNotFound` if absent."""
        try:
            return self._edges[edge_id]
        except KeyError:
            raise EdgeNotFound(edge_id) from None

    def has_node(self, node: str) -> bool:
        """Whether ``node`` exists in the graph."""
        return node in self._adjacency

    def has_edge_between(self, u: str, v: str) -> bool:
        """Whether at least one edge joins ``u`` and ``v``."""
        return bool(self.edge_ids_between(u, v))

    def edge_ids_between(self, u: str, v: str) -> List[int]:
        """All edge ids joining ``u`` and ``v`` (possibly several in a multigraph)."""
        if u not in self._adjacency or v not in self._adjacency:
            return []
        return [
            edge_id
            for edge_id in self._adjacency[u]
            if self._edges[edge_id].other(u) == v
        ]

    def number_of_nodes(self) -> int:
        """Number of nodes."""
        return len(self._adjacency)

    def number_of_edges(self) -> int:
        """Number of undirected edges (parallel edges counted individually)."""
        return len(self._edges)

    def degree(self, node: str) -> int:
        """Number of incident edges of ``node``."""
        return len(self.incident_edge_ids(node))

    def incident_edge_ids(self, node: str) -> List[int]:
        """Edge ids incident to ``node`` in insertion order."""
        try:
            return list(self._adjacency[node])
        except KeyError:
            raise NodeNotFound(node) from None

    def incident_edges(self, node: str) -> List[Edge]:
        """Edges incident to ``node`` in insertion order."""
        return [self._edges[edge_id] for edge_id in self.incident_edge_ids(node)]

    def neighbors(self, node: str) -> List[str]:
        """Adjacent nodes of ``node`` (duplicates removed, order preserved)."""
        seen: Dict[str, None] = {}
        for edge in self.incident_edges(node):
            seen.setdefault(edge.other(node), None)
        return list(seen)

    def darts_out(self, node: str) -> List[Dart]:
        """Darts leaving ``node``, one per incident edge, in insertion order."""
        return [edge.dart_from(node) for edge in self.incident_edges(node)]

    def darts(self) -> List[Dart]:
        """All darts of the graph (two per edge)."""
        result: List[Dart] = []
        for edge in self.edges():
            result.extend(edge.darts())
        return result

    def dart(self, edge_id: int, tail: str) -> Dart:
        """The dart of edge ``edge_id`` leaving ``tail``."""
        return self.edge(edge_id).dart_from(tail)

    def weight(self, edge_id: int) -> float:
        """Weight of the edge with id ``edge_id``."""
        return self.edge(edge_id).weight

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(edge.weight for edge in self._edges.values())

    def iter_adjacent(
        self, node: str, excluded_edges: Optional[Iterable[int]] = None
    ) -> Iterator[Tuple[str, int, float]]:
        """Yield ``(neighbor, edge_id, weight)`` triples for ``node``.

        ``excluded_edges`` models failed links: those edges are skipped, which
        is how every routing computation in the package prunes failures.
        """
        excluded = frozenset(excluded_edges or ())
        for edge_id in self.incident_edge_ids(node):
            if edge_id in excluded:
                continue
            edge = self._edges[edge_id]
            yield edge.other(node), edge_id, edge.weight

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Graph":
        """Deep copy preserving node order, edge ids and weights."""
        clone = Graph(name or self.name)
        for node in self._adjacency:
            clone._adjacency[node] = list(self._adjacency[node])
        clone._edges = {
            edge_id: Edge(edge.edge_id, edge.u, edge.v, edge.weight)
            for edge_id, edge in self._edges.items()
        }
        clone._next_edge_id = self._next_edge_id
        return clone

    def without_edges(self, edge_ids: Iterable[int], name: Optional[str] = None) -> "Graph":
        """Copy of the graph with the given edges removed (edge ids preserved)."""
        clone = self.copy(name or f"{self.name}-pruned")
        for edge_id in set(edge_ids):
            if edge_id in clone._edges:
                clone.remove_edge(edge_id)
        return clone

    def edge_subgraph(self, edge_ids: Iterable[int], name: Optional[str] = None) -> "Graph":
        """Copy containing every node but only the given edges (ids preserved)."""
        keep = set(edge_ids)
        clone = Graph(name or f"{self.name}-edges")
        for node in self._adjacency:
            clone.ensure_node(node)
        for edge_id in sorted(keep):
            edge = self.edge(edge_id)
            clone.add_edge_with_id(edge_id, edge.u, edge.v, edge.weight)
        clone._next_edge_id = max(clone._next_edge_id, self._next_edge_id)
        return clone

    def subgraph(self, nodes: Iterable[str], name: Optional[str] = None) -> "Graph":
        """Copy containing only ``nodes`` and the edges among them (ids preserved)."""
        keep = set(nodes)
        clone = Graph(name or f"{self.name}-sub")
        for node in self._adjacency:
            if node in keep:
                clone._adjacency[node] = []
        for edge_id in sorted(self._edges):
            edge = self._edges[edge_id]
            if edge.u in keep and edge.v in keep:
                clone._edges[edge_id] = Edge(edge.edge_id, edge.u, edge.v, edge.weight)
                clone._adjacency[edge.u].append(edge_id)
                clone._adjacency[edge.v].append(edge_id)
        clone._next_edge_id = self._next_edge_id
        return clone

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(
        cls,
        edges: Sequence[Tuple[str, str]] | Sequence[Tuple[str, str, float]],
        name: str = "network",
    ) -> "Graph":
        """Build a graph from ``(u, v)`` or ``(u, v, weight)`` tuples."""
        graph = cls(name)
        for item in edges:
            if len(item) == 2:
                u, v = item  # type: ignore[misc]
                graph.add_edge(u, v, 1.0)
            else:
                u, v, weight = item  # type: ignore[misc]
                graph.add_edge(u, v, weight)
        return graph

    def to_edge_list(self) -> List[Tuple[str, str, float]]:
        """Export the graph as ``(u, v, weight)`` tuples in edge-id order."""
        return [(edge.u, edge.v, edge.weight) for edge in self.edges()]

    def adjacency_mapping(self) -> Mapping[str, List[str]]:
        """Read-only style adjacency mapping ``node -> [neighbors]`` (with duplicates)."""
        return {
            node: [self._edges[edge_id].other(node) for edge_id in edge_ids]
            for node, edge_ids in self._adjacency.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return (
            f"Graph({self.name!r}, nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )
